(** Out-of-line semantics for names and declarations (principal AG).

    The central function is {!classify}: it consults the ENV attribute — the
    applicative symbol table — to turn an identifier into classified LEF
    tokens, which is where "very different phrase structure can be built for
    two identical pieces of source text". *)

open Pval

(* ------------------------------------------------------------------ *)
(* Name classification *)

let classify_denots ~line ~name (denots : Denot.t list) : Lef.tok list * Diag.t list =
  let tok kind = { Lef.l_kind = kind; l_line = line } in
  match denots with
  | [] -> ([ tok (Lef.Kident name) ], [])
  | _ ->
    let enums =
      List.filter_map
        (function
          | Denot.Denum_lit { ty; pos; image } -> Some (ty, pos, image)
          | _ -> None)
        denots
    in
    let subprogs =
      List.filter_map (function Denot.Dsubprog s -> Some s | _ -> None) denots
    in
    if enums <> [] then ([ tok (Lef.Kenum enums) ], [])
    else if subprogs <> [] then begin
      List.iter Session.register_subprog subprogs;
      let functions = List.filter (fun s -> s.Denot.ss_kind = `Function) subprogs in
      if functions <> [] then ([ tok (Lef.Kfunc functions) ], [])
      else ([ tok (Lef.Kproc subprogs) ], [])
    end
    else begin
      match List.hd denots with
      | Denot.Dobject { cls; ty; mode; slot; name } -> (
        match (cls, slot) with
        | _, Denot.Sl_static value -> ([ tok (Lef.Kconst_val { name; ty; value }) ], [])
        | _, Denot.Sl_unit_const name -> ([ tok (Lef.Kunitconst { name; ty }) ], [])
        | Denot.Csignal, Denot.Sl_signal sref -> ([ tok (Lef.Ksig { name; ty; sref; mode }) ], [])
        | _, Denot.Sl_signal sref -> ([ tok (Lef.Ksig { name; ty; sref; mode }) ], [])
        | _, Denot.Sl_frame { level; index } ->
          ([ tok (Lef.Kvar { name; ty; level; index }) ], [])
        | _, Denot.Sl_generic index -> ([ tok (Lef.Kgeneric { name; ty; index }) ], []))
      | Denot.Dtype ty | Denot.Dsubtype ty -> ([ tok (Lef.Ktype ty) ], [])
      | Denot.Dlibrary l -> ([ tok (Lef.Kscope (Lef.Slib l)) ], [])
      | Denot.Dunit { library; unit_name } ->
        ([ tok (Lef.Kscope (Lef.Sunit { library; unit_name })) ], [])
      | Denot.Dattr_value { value; ty; _ } -> ([ tok (Lef.Kattrval { value; ty }) ], [])
      | Denot.Dphys_unit _ | Denot.Dcomponent _ | Denot.Dattr_decl _ | Denot.Dlabel _
      | Denot.Denum_lit _ | Denot.Dsubprog _ ->
        ([ tok (Lef.Kident name) ], [])
    end

(** Classify an operator occurrence: plain token, or — when a string
    designator like [function "+"] is visible — a token carrying the user
    overload candidates (paper §4.1's token-value mechanism). *)
let classify_op ~env ~line op : Lef.tok =
  match
    List.filter_map
      (function Denot.Dsubprog s -> Some s | _ -> None)
      (Env.lookup env (Lef.operator_key op))
  with
  | [] -> Lef.op ~line op
  | cands -> { Lef.l_kind = Lef.Kop_user { op; cands }; l_line = line }

(** Classify a plain identifier through the environment. *)
let classify ~env ~line name : Lef.tok list * Diag.t list =
  classify_denots ~line ~name (Env.lookup env name)

(** Load a compiled unit, returning its info. *)
let foreign_unit ~line ~library ~key : (Unit_info.compiled_unit option * Diag.t list) =
  match Session.find_unit ~library ~key with
  | Some u -> (Some u, [])
  | None -> (None, [ Diag.error ~line "unit %s not found in library %s" key library ])

(** Selected name [prefix . id]: package item, library unit, or record
    field.  [prefix_lef] is the prefix's LEF. *)
let classify_selected ~env ~line prefix_lef id : Lef.tok list * Diag.t list =
  ignore env;
  match prefix_lef with
  | [ { Lef.l_kind = Lef.Kscope (Lef.Slib library); _ } ] -> (
    match Session.find_unit ~library ~key:("package:" ^ id) with
    | Some _ ->
      ([ { Lef.l_kind = Lef.Kscope (Lef.Sunit { library; unit_name = id }); l_line = line } ], [])
    | None -> (
      match Session.find_unit ~library ~key:("entity:" ^ id) with
      | Some _ ->
        ( [ { Lef.l_kind = Lef.Kscope (Lef.Sunit { library; unit_name = id }); l_line = line } ],
          [] )
      | None ->
        ( [ { Lef.l_kind = Lef.Kident id; l_line = line } ],
          [ Diag.error ~line "no unit %s in library %s" id library ] )))
  | [ { Lef.l_kind = Lef.Kscope (Lef.Sunit { library; unit_name }); _ } ] -> (
    match Session.find_unit ~library ~key:("package:" ^ unit_name) with
    | Some { Unit_info.u_info = Unit_info.Upackage pk; _ } -> (
      let denots =
        List.filter_map
          (fun (n, d) -> if String.equal n id then Some d else None)
          pk.Unit_info.pk_exports
      in
      match denots with
      | [] ->
        ( [ { Lef.l_kind = Lef.Kident id; l_line = line } ],
          [ Diag.error ~line "package %s has no declaration named %s" unit_name id ] )
      | _ -> classify_denots ~line ~name:id denots)
    | _ ->
      ( [ { Lef.l_kind = Lef.Kident id; l_line = line } ],
        [ Diag.error ~line "%s is not a package" unit_name ] ))
  | _ ->
    (* record field selection: resolved by the expression AG *)
    (prefix_lef @ [ Lef.punct ~line "."; { Lef.l_kind = Lef.Kident id; l_line = line } ], [])

(** Attribute mark [prefix ' id]: a user-defined attribute value wins over
    the predefined attribute of the same name (the paper's
    X'REVERSE_RANGE discussion). *)
let classify_attribute ~env ~line ~base prefix_lef id : Lef.tok list * Diag.t list =
  let key = base ^ "'" ^ id in
  match Env.lookup env key with
  | Denot.Dattr_value { value; ty; _ } :: _ ->
    ([ { Lef.l_kind = Lef.Kattrval { value; ty }; l_line = line } ], [])
  | _ -> (prefix_lef @ [ Lef.punct ~line "'"; { Lef.l_kind = Lef.Kattr id; l_line = line } ], [])

(** Physical literal [n unit] / [x unit]. *)
let classify_physical ~env ~line ~abstract unit_name : Lef.tok list * Diag.t list =
  match Env.lookup env unit_name with
  | Denot.Dphys_unit { ty; scale; _ } :: _ ->
    let value =
      match abstract with
      | `Int n -> n * scale
      | `Real x -> int_of_float (x *. float_of_int scale)
    in
    ([ { Lef.l_kind = Lef.Kphys { value; ty }; l_line = line } ], [])
  | _ ->
    ( [ { Lef.l_kind = Lef.Kident unit_name; l_line = line } ],
      [ Diag.error ~line "%s is not a physical unit" unit_name ] )

(* ------------------------------------------------------------------ *)
(* Subtype indications *)

(** Split a LEF list at top-level [to]/[downto]. *)
let split_range lef =
  let rec go depth acc = function
    | [] -> None
    | ({ Lef.l_kind = Lef.Kpunct "("; _ } as t) :: rest -> go (depth + 1) (t :: acc) rest
    | ({ Lef.l_kind = Lef.Kpunct ")"; _ } as t) :: rest -> go (depth - 1) (t :: acc) rest
    | { Lef.l_kind = Lef.Kpunct (("to" | "downto") as d); _ } :: rest when depth = 0 ->
      let dir = if d = "to" then Types.To else Types.Downto in
      Some (List.rev acc, dir, rest)
    | t :: rest -> go depth (t :: acc) rest
  in
  go 0 [] lef

type resolved_subtype = {
  rs_ty : Types.t;
  rs_resolution : Denot.subprog_sig option;
  rs_msgs : Diag.t list;
}

let static_int_of ~level ~line ~expected lef : (int, Diag.t) result =
  let r = Expr_eval.eval ~expected ~level ~line lef in
  match r.x_static with
  | Some v -> Ok (Value.as_int v)
  | None -> (
    match r.x_msgs with
    | d :: _ -> Error d
    | [] -> Error (Diag.error ~line "bound is not static"))

(** Resolve a subtype indication given as (resolution?, type-mark LEF with
    optional parenthesized constraint). *)
let resolve_subtype ~level ~line (lef : Lef.tok list) : resolved_subtype =
  let fail msg =
    { rs_ty = Expr_sem.error_ty; rs_resolution = None; rs_msgs = [ Diag.error ~line "%s" msg ] }
  in
  let resolution, rest =
    match lef with
    | { Lef.l_kind = Lef.Kfunc (s :: _); _ } :: (_ :: _ as rest) -> (Some s, rest)
    | _ -> (None, lef)
  in
  match rest with
  | [ { Lef.l_kind = Lef.Ktype ty; _ } ] -> { rs_ty = ty; rs_resolution = resolution; rs_msgs = [] }
  | { Lef.l_kind = Lef.Ktype ty; _ }
    :: { Lef.l_kind = Lef.Kpunct "("; _ }
    :: inner_and_close
    when inner_and_close <> [] -> (
    (* index constraint: strip the final ')' *)
    let inner = List.filteri (fun i _ -> i < List.length inner_and_close - 1) inner_and_close in
    match ty.Types.kind with
    | Types.Karray { index; _ } -> (
      match split_range inner with
      | Some (lo_lef, dir, hi_lef) -> (
        let expected = { index with Types.constr = None } in
        match
          (static_int_of ~level ~line ~expected lo_lef, static_int_of ~level ~line ~expected hi_lef)
        with
        | Ok lo, Ok hi ->
          {
            rs_ty = Types.subtype ty ~constr:(Types.Crange (lo, dir, hi));
            rs_resolution = resolution;
            rs_msgs = [];
          }
        | Error d, _ | _, Error d ->
          { rs_ty = ty; rs_resolution = resolution; rs_msgs = [ d ] })
      | None -> (
        (* attribute range: X'RANGE *)
        let (lo, dir, hi), _, msgs = Expr_eval.eval_range ~level ~line inner in
        match (Const_eval.eval_opt Const_eval.empty lo, Const_eval.eval_opt Const_eval.empty hi) with
        | Some l, Some h ->
          {
            rs_ty = Types.subtype ty ~constr:(Types.Crange (Value.as_int l, dir, Value.as_int h));
            rs_resolution = resolution;
            rs_msgs = msgs;
          }
        | _ ->
          {
            rs_ty = ty;
            rs_resolution = resolution;
            rs_msgs = msgs @ [ Diag.error ~line "index constraint must be static" ];
          }))
    | _ -> fail "only array types take index constraints")
  | _ -> fail "invalid subtype indication"

(** Scalar range constraint: [type-mark range l dir r]. *)
let resolve_range_subtype ~level ~line (mark_lef : Lef.tok list) (lo_lef : Lef.tok list)
    (dir : Types.dir) (hi_lef : Lef.tok list) : resolved_subtype =
  let base = resolve_subtype ~level ~line mark_lef in
  if base.rs_msgs <> [] then base
  else begin
    let ty = base.rs_ty in
    match ty.Types.kind with
    | Types.Kfloat -> (
      let ev lef = Expr_eval.eval ~expected:{ ty with Types.constr = None } ~level ~line lef in
      let l = ev lo_lef and h = ev hi_lef in
      match (l.x_static, h.x_static) with
      | Some lv, Some hv ->
        {
          base with
          rs_ty =
            Types.subtype ty
              ~constr:(Types.Cfloat_range (Value.as_float lv, dir, Value.as_float hv));
        }
      | _ -> { base with rs_msgs = [ Diag.error ~line "range bounds must be static" ] })
    | _ -> (
      let expected = { ty with Types.constr = None } in
      match
        (static_int_of ~level ~line ~expected lo_lef, static_int_of ~level ~line ~expected hi_lef)
      with
      | Ok lo, Ok hi ->
        { base with rs_ty = Types.subtype ty ~constr:(Types.Crange (lo, dir, hi)) }
      | Error d, _ | _, Error d -> { base with rs_msgs = [ d ] })
  end

(* ------------------------------------------------------------------ *)
(* Type declarations *)

let qualify ~unit_name name = unit_name ^ "." ^ name

(** Enumeration type definition: returns the Tydef closure. *)
let enum_type_def ~unit_name (literals : (string * int) list) =
  Tydef
    (fun name ->
      let ty =
        {
          Types.base = qualify ~unit_name name;
          kind = Types.Kenum (Array.of_list (List.map fst literals));
          constr = None;
        }
      in
      let binds =
        List.mapi
          (fun pos (image, _line) -> (image, Denot.Denum_lit { ty; pos; image }))
          literals
      in
      (ty, binds))

let integer_type_def ~unit_name ~level ~line lo_lef dir hi_lef =
  Tydef
    (fun name ->
      let bounds =
        match
          ( static_int_of ~level ~line ~expected:Std.integer lo_lef,
            static_int_of ~level ~line ~expected:Std.integer hi_lef )
        with
        | Ok lo, Ok hi -> (lo, dir, hi)
        | _ -> (0, Types.To, 0)
      in
      let ty =
        {
          Types.base = qualify ~unit_name name;
          kind = Types.Kint;
          constr = Some (Types.Crange ((fun (a, _, _) -> a) bounds, dir, (fun (_, _, c) -> c) bounds));
        }
      in
      (ty, []))

let array_type_def ~unit_name ~(index_ty : Types.t) ~(elem_ty : Types.t)
    ~(constr : (int * Types.dir * int) option) =
  Tydef
    (fun name ->
      let ty =
        {
          Types.base = qualify ~unit_name name;
          kind = Types.Karray { index = index_ty; elem = elem_ty };
          constr = Option.map (fun (l, d, r) -> Types.Crange (l, d, r)) constr;
        }
      in
      (ty, []))

let record_type_def ~unit_name ~(fields : (string * Types.t) list) =
  Tydef
    (fun name ->
      let ty =
        { Types.base = qualify ~unit_name name; kind = Types.Krecord fields; constr = None }
      in
      (ty, []))

(* ------------------------------------------------------------------ *)
(* Object declarations *)

type object_context = {
  oc_env : Env.t;
  oc_level : int;
  oc_unit : string; (* qualified unit name, for mangling *)
  oc_kind : [ `Package of string | `Architecture | `Process | `Subprogram | `Entity | `Block ];
  oc_slot_base : int; (* next frame slot *)
  oc_sig_base : int; (* next signal index *)
}

let eval_default ~level ~line ~ty lef =
  match lef with
  | [] -> (None, [])
  | _ ->
    let r = Expr_eval.eval ~expected:ty ~level ~line lef in
    (Some r.x_code, r.x_msgs)

(** Constant declarations. *)
let constant_decl (oc : object_context) ~line (names : (string * int) list) (ty : Types.t)
    (init_lef : Lef.tok list) : decl_out * Diag.t list =
  let init, msgs = eval_default ~level:oc.oc_level ~line ~ty init_lef in
  match init with
  | None -> (
    match oc.oc_kind with
    | `Package pkg ->
      (* deferred constant (LRM 4.3.1.1): the package body supplies the
         value; references late-bind through the unit-constant slot *)
      let binds =
        List.map
          (fun (name, _) ->
            ( name,
              Denot.Dobject
                {
                  name;
                  cls = Denot.Cconstant;
                  ty;
                  mode = None;
                  slot = Denot.Sl_unit_const (pkg ^ "." ^ name);
                } ))
          names
      in
      ({ out_empty with o_binds = binds }, msgs)
    | _ ->
      (out_empty, msgs @ [ Diag.error ~line "constant declaration requires an initial value" ]))
  | Some code -> (
    match Const_eval.eval_opt Const_eval.empty code with
    | Some value ->
      let binds =
        List.map
          (fun (name, _) ->
            ( name,
              Denot.Dobject
                {
                  name;
                  cls = Denot.Cconstant;
                  ty;
                  mode = None;
                  slot = Denot.Sl_static value;
                } ))
          names
      in
      let deferred =
        (* in a package (declaration or body) also publish the qualified
           value, so a body's full declaration completes a deferred one *)
        match oc.oc_kind with
        | `Package pkg -> List.map (fun (name, _) -> (pkg ^ "." ^ name, value)) names
        | _ -> []
      in
      ({ out_empty with o_binds = binds; o_deferred = deferred }, msgs)
    | None -> (
      match oc.oc_kind with
      | `Process | `Subprogram ->
        (* frame-allocated constant *)
        let locals, binds, _ =
          List.fold_left
            (fun (locals, binds, idx) (name, _) ->
              ( { Kir.l_name = name; l_ty = ty; l_init = Some code } :: locals,
                ( name,
                  Denot.Dobject
                    {
                      name;
                      cls = Denot.Cconstant;
                      ty;
                      mode = None;
                      slot = Denot.Sl_frame { level = oc.oc_level; index = idx };
                    } )
                :: binds,
                idx + 1 ))
            ([], [], oc.oc_slot_base) names
        in
        ({ out_empty with o_locals = List.rev locals; o_binds = List.rev binds }, msgs)
      | `Architecture | `Block ->
        (* elaboration-time constant (depends on generics) *)
        let binds =
          List.map
            (fun (name, _) ->
              ( name,
                Denot.Dobject
                  {
                    name;
                    cls = Denot.Cconstant;
                    ty;
                    mode = None;
                    slot = Denot.Sl_unit_const name;
                  } ))
            names
        in
        (* ride the initializer through o_locals with a marker type: the
           architecture rule moves these into ar_constants *)
        let locals =
          List.map (fun (name, _) -> { Kir.l_name = name; l_ty = ty; l_init = Some code }) names
        in
        ({ out_empty with o_binds = binds; o_locals = locals }, msgs)
      | `Package _ | `Entity ->
        (out_empty, msgs @ [ Diag.error ~line "constant in this context must be static" ])))

(** Disconnection specification (LRM 5.3):
    [disconnect s1, s2 : type after 5 ns;] sets the delay before a guarded
    disconnect of these signals' drivers takes effect. *)
let disconnect_spec ~level ~line (name_lefs : Lef.tok list list)
    (after_lef : Lef.tok list) : decl_out * Diag.t list =
  let delay = Expr_eval.eval ~expected:Std.time ~level ~line after_lef in
  let entries, msgs =
    List.fold_left
      (fun (entries, msgs) lef ->
        match lef with
        | [ { Lef.l_kind = Lef.Ksig { name; _ }; _ } ] ->
          ((name, delay.x_code) :: entries, msgs)
        | _ ->
          ( entries,
            msgs @ [ Diag.error ~line "disconnect specification requires signal names" ] ))
      ([], []) name_lefs
  in
  ({ out_empty with o_disconnects = List.rev entries }, delay.x_msgs @ msgs)

(** Signal declarations. *)
let signal_decl (oc : object_context) ~line (names : (string * int) list) (rs : resolved_subtype)
    ~(kind : [ `Plain | `Bus | `Register ]) (init_lef : Lef.tok list) : decl_out * Diag.t list =
  let ty = rs.rs_ty in
  let init, msgs = eval_default ~level:oc.oc_level ~line ~ty init_lef in
  let resolution = Option.map (fun s -> Kir.F_user s.Denot.ss_mangled) rs.rs_resolution in
  (match rs.rs_resolution with
  | Some s -> Session.register_subprog s
  | None -> ());
  match oc.oc_kind with
  | `Process | `Subprogram ->
    (out_empty, msgs @ [ Diag.error ~line "signals may not be declared here" ])
  | `Package pkg_name ->
    let signals, binds =
      List.split
        (List.map
           (fun (name, _) ->
             ( {
                 Kir.sd_name = name;
                 sd_ty = ty;
                 sd_init = init;
                 sd_resolution = resolution;
                 sd_kind = kind;
                 sd_disconnect = None;
               },
               ( name,
                 Denot.Dobject
                   {
                     name;
                     cls = Denot.Csignal;
                     ty;
                     mode = None;
                     slot =
                       Denot.Sl_signal (Kir.Sig_global { package = pkg_name; name });
                   } ) ))
           names)
    in
    ({ out_empty with o_signals = signals; o_binds = binds }, msgs)
  | `Architecture | `Block | `Entity ->
    let signals, binds, _ =
      List.fold_left
        (fun (sigs, binds, idx) (name, _) ->
          ( {
              Kir.sd_name = name;
              sd_ty = ty;
              sd_init = init;
              sd_resolution = resolution;
              sd_kind = kind;
              sd_disconnect = None;
            }
            :: sigs,
            ( name,
              Denot.Dobject
                {
                  name;
                  cls = Denot.Csignal;
                  ty;
                  mode = None;
                  slot = Denot.Sl_signal (Kir.Sig_local idx);
                } )
            :: binds,
            idx + 1 ))
        ([], [], oc.oc_sig_base) names
    in
    ({ out_empty with o_signals = List.rev signals; o_binds = List.rev binds }, msgs)

(** Variable declarations. *)
let variable_decl (oc : object_context) ~line (names : (string * int) list) (ty : Types.t)
    (init_lef : Lef.tok list) : decl_out * Diag.t list =
  match oc.oc_kind with
  | `Process | `Subprogram ->
    let init, msgs = eval_default ~level:oc.oc_level ~line ~ty init_lef in
    let locals, binds, _ =
      List.fold_left
        (fun (locals, binds, idx) (name, _) ->
          ( { Kir.l_name = name; l_ty = ty; l_init = init } :: locals,
            ( name,
              Denot.Dobject
                {
                  name;
                  cls = Denot.Cvariable;
                  ty;
                  mode = None;
                  slot = Denot.Sl_frame { level = oc.oc_level; index = idx };
                } )
            :: binds,
            idx + 1 ))
        ([], [], oc.oc_slot_base) names
    in
    ({ out_empty with o_locals = List.rev locals; o_binds = List.rev binds }, msgs)
  | `Package _ | `Architecture | `Block | `Entity ->
    ( out_empty,
      [ Diag.error ~line "variables may only be declared in processes and subprograms" ] )

(* ------------------------------------------------------------------ *)
(* Interfaces and subprograms *)

let mangle ~unit_name ~name ?ret (params : iface list) =
  let sigs =
    List.concat_map
      (fun p -> List.map (fun _ -> Types.short_name p.if_ty) p.if_names)
      params
  in
  (* the profile includes the result type (LRM 2.3: functions may be
     overloaded on the result alone) *)
  let ret_part =
    match ret with
    | Some (ty : Types.t) -> "->" ^ Types.short_name ty
    | None -> ""
  in
  Printf.sprintf "%s:%s/%s%s" unit_name name (String.concat "," sigs) ret_part

let iface_params (ifaces : iface list) : Denot.param list =
  List.concat_map
    (fun i ->
      List.map
        (fun (name, _) ->
          {
            Denot.p_name = name;
            p_mode = Option.value i.if_mode ~default:Kir.Arg_in;
            p_class =
              (match i.if_class with
              | Some c -> c
              | None -> (
                match i.if_mode with
                | Some Kir.Arg_in | None -> Denot.Cconstant
                | Some (Kir.Arg_out | Kir.Arg_inout) -> Denot.Cvariable));
            p_ty = i.if_ty;
            p_default = i.if_default;
          })
        i.if_names)
    ifaces

(** Build the signature denotation of a subprogram spec. *)
let subprog_sig ~unit_name (spec : subprog_spec) : Denot.subprog_sig =
  let s =
    {
      Denot.ss_name = spec.sp_name;
      ss_mangled = mangle ~unit_name ~name:spec.sp_name ?ret:spec.sp_ret spec.sp_params;
      ss_kind = spec.sp_kind;
      ss_params = iface_params spec.sp_params;
      ss_ret = spec.sp_ret;
      ss_builtin = false;
    }
  in
  Session.register_subprog s;
  s

(** LRM 2.1: the parameters of a function must all be of mode [in]. *)
let validate_spec ~line (s : Denot.subprog_sig) : Diag.t list =
  match s.Denot.ss_kind with
  | `Procedure -> []
  | `Function ->
    List.filter_map
      (fun (p : Denot.param) ->
        if p.Denot.p_mode <> Kir.Arg_in then
          Some
            (Diag.error ~line "parameter %s of function %s must be of mode in"
               p.Denot.p_name s.Denot.ss_name)
        else None)
      s.Denot.ss_params

(** Environment bindings for a subprogram's parameters (frame slots 0..). *)
let param_binds ~level (s : Denot.subprog_sig) =
  List.mapi
    (fun idx (p : Denot.param) ->
      ( p.Denot.p_name,
        Denot.Dobject
          {
            name = p.Denot.p_name;
            cls = p.Denot.p_class;
            ty = p.Denot.p_ty;
            mode = Some p.Denot.p_mode;
            slot =
              (* signal-class parameters are signals, not frame values: the
                 actual is bound at each call (LRM 2.1.1.2) *)
              (if p.Denot.p_class = Denot.Csignal then
                 Denot.Sl_signal (Kir.Sig_param idx)
               else Denot.Sl_frame { level; index = idx });
          } ))
    s.Denot.ss_params

(* ------------------------------------------------------------------ *)
(* Context clauses *)

(** Resolve a USE clause path. *)
let resolve_use ~line (parts : string list) ~(all : bool) : decl_out * Diag.t list =
  match parts with
  | [ lib; "STANDARD" ] when lib = "STD" && all ->
    ({ out_empty with o_binds = Env.bindings (Std.env ()) |> List.rev }, [])
  | lib :: pkg :: rest when rest = [] || List.length rest = 1 -> (
    if not (Session.known_library lib) then
      (out_empty, [ Diag.error ~line "library %s is not visible (missing library clause?)" lib ])
    else
      match Session.find_unit ~library:lib ~key:("package:" ^ pkg) with
      | Some { Unit_info.u_info = Unit_info.Upackage pk; _ } ->
        let deps = [ (lib, "package:" ^ pkg) ] in
        let binds =
          match (rest, all) with
          | [], true -> pk.Unit_info.pk_exports
          | [], false -> [ (pkg, Denot.Dunit { library = lib; unit_name = pkg }) ]
          | [ item ], _ ->
            List.filter (fun (n, _) -> String.equal n item) pk.Unit_info.pk_exports
          | _ -> []
        in
        let msgs =
          match (rest, binds) with
          | [ item ], [] -> [ Diag.error ~line "package %s has no declaration named %s" pkg item ]
          | _ -> []
        in
        ({ out_empty with o_binds = binds; o_deps = deps }, msgs)
      | Some _ -> (out_empty, [ Diag.error ~line "%s is not a package" pkg ])
      | None -> (out_empty, [ Diag.error ~line "no package %s in library %s" pkg lib ]))
  | _ -> (out_empty, [ Diag.error ~line "unsupported use clause" ])

(** LIBRARY clause. *)
let resolve_library ~line names : decl_out * Diag.t list =
  let binds, msgs =
    List.fold_left
      (fun (binds, msgs) (name, _) ->
        if Session.known_library name then ((name, Denot.Dlibrary name) :: binds, msgs)
        else
          ( (name, Denot.Dlibrary name) :: binds,
            msgs @ [ Diag.warning ~line "library %s is not known; treating as empty" name ] ))
      ([], []) names
  in
  ({ out_empty with o_binds = List.rev binds }, msgs)

(** The implicit context of every design unit: LIBRARY WORK, STD;
    USE STD.STANDARD.ALL. *)
let initial_env () =
  let std = Std.env () in
  Env.extend_many std
    [ ("WORK", Denot.Dlibrary (Session.work ())); ("STD", Denot.Dlibrary "STD") ]

(* ------------------------------------------------------------------ *)
(* Miscellaneous declarations *)

let attribute_decl ~line ~name (ty_lef : Lef.tok list) ~level : decl_out * Diag.t list =
  let rs = resolve_subtype ~level ~line ty_lef in
  ( { out_empty with o_binds = [ (name, Denot.Dattr_decl { name; ty = rs.rs_ty }) ] },
    rs.rs_msgs )

let attribute_spec ~env ~line ~attr ~of_name (value_lef : Lef.tok list) ~level :
    decl_out * Diag.t list =
  match Env.lookup env attr with
  | Denot.Dattr_decl { ty; _ } :: _ -> (
    let r = Expr_eval.eval ~expected:ty ~level ~line value_lef in
    match r.x_static with
    | Some value ->
      ( {
          out_empty with
          o_binds =
            [ (of_name ^ "'" ^ attr, Denot.Dattr_value { of_name; attr; value; ty }) ];
        },
        r.x_msgs )
    | None -> (out_empty, r.x_msgs @ [ Diag.error ~line "attribute value must be static" ]))
  | _ -> (out_empty, [ Diag.error ~line "%s is not a declared attribute" attr ])

let alias_decl ~env ~line ~name ~target ~(target_lef : Lef.tok list) :
    decl_out * Diag.t list =
  (* only whole-object aliases: a slice or element target would silently
     alias the base object, so reject it instead *)
  if List.length target_lef > 1 then
    ( out_empty,
      [
        Diag.error ~line
          "alias target must be a whole object (slices and elements are not \
           supported)";
      ] )
  else
    match Env.lookup env target with
    | d :: _ -> ({ out_empty with o_binds = [ (name, d) ] }, [])
    | [] -> (out_empty, [ Diag.error ~line "alias target %s is not declared" target ])

let component_decl ~line ~name ~(generics : iface list) ~(ports : iface list) :
    decl_out * Diag.t list =
  ignore line;
  let generic_decls =
    List.concat_map
      (fun i ->
        List.map
          (fun (n, _) -> { Kir.gd_name = n; gd_ty = i.if_ty; gd_default = i.if_default })
          i.if_names)
      generics
  in
  let port_decls =
    List.concat_map
      (fun i ->
        List.map
          (fun (n, _) ->
            {
              Kir.pd_name = n;
              pd_mode = Option.value i.if_mode ~default:Kir.Arg_in;
              pd_ty = i.if_ty;
              pd_default = i.if_default;
            })
          i.if_names)
      ports
  in
  ( {
      out_empty with
      o_binds = [ (name, Denot.Dcomponent { name; generics = generic_decls; ports = port_decls }) ];
      o_components = [ (name, generic_decls, port_decls) ];
    },
    [] )
