(** [exprEval] — the cascade point between the two AGs (paper §4.1).

    "The out-of-line function exprEval is itself a parser and attribute
    evaluator generated from the expression AG...  The expression evaluator
    is fed tokens by a trivial scanner that just takes the next LEF token
    off the front of the list."

    The expression grammar and its parse tables are built once, lazily, just
    as Linguist generates its evaluator once. *)

type t = {
  grammar : Pval.t Grammar.t;
  parser_ : Pval.t Parsing.t;
}

let instance = lazy (
  let grammar = Expr_grammar.build () in
  let parser_ = Parsing.create ~name:"expression AG" grammar ~eof:"LEOF" in
  { grammar; parser_ })

let grammar () = (Lazy.force instance).grammar
let parser_ () = (Lazy.force instance).parser_

module Tm = Vhdl_telemetry.Telemetry
module Timer = Vhdl_util.Phase_timer

let m_evaluations = Tm.counter "cascade.evaluations"
let m_lef_tokens = Tm.counter "cascade.lef_tokens"
let m_reparses = Tm.counter "cascade.reparses"
let m_parse_errors = Tm.counter "cascade.parse_errors"
let m_expr_lef_tokens = Tm.histogram "cascade.expr_lef_tokens"

(* Time spent here is charged to its own phase of the ambient compile timer
   — the nested-frame accounting in Phase_timer carves it out of "attribute
   evaluation" (its dynamically enclosing phase) without the mutable-global
   subtraction this module used to maintain. *)
let cascade_phase = "expression evaluation (cascade)"

let timed f = Timer.time_ambient cascade_phase f

(* The ambient provenance recorder (armed by the compiler around attribute
   evaluation): with one in force, the expression evaluator records into it
   too, so its instances nest under the principal-AG attribute whose rule
   invoked the cascade — the explain chain crosses the AG boundary. *)
let provenance_hook () =
  Option.map (fun r -> (r, "expr", Pval.summary)) (Provenance.ambient ())

let driver_tokens t lef =
  Tm.add m_lef_tokens (List.length lef);
  Tm.observe m_expr_lef_tokens (float_of_int (List.length lef));
  List.map
    (fun tok ->
      {
        Vhdl_lalr.Driver.t_sym = Grammar.find_symbol t.grammar (Lef.terminal_name tok);
        t_value = Pval.Ltok tok;
        t_line = tok.Lef.l_line;
      })
    lef

(** Evaluate one maximal expression.

    @param expected the type required by context, if known
    @param level subprogram nesting level of the occurrence
    @param line source line, for diagnostics *)
let eval ?expected ~level ~line (lef : Lef.tok list) : Pval.xres =
  let t = Lazy.force instance in
  Tm.incr m_evaluations;
  timed @@ fun () ->
  if lef = [] then
    {
      Pval.x_ty = Expr_sem.error_ty;
      x_code = Kir.Elit (Value.Vint 0);
      x_static = None;
      x_msgs = [ Diag.error ~line "missing expression" ];
    }
  else begin
    let tokens = driver_tokens t lef in
    Tm.incr m_reparses;
    match Parsing.parse_list t.parser_ ~eof_value:Pval.Unit tokens with
    | exception Vhdl_lalr.Driver.Syntax_error { line = eline; found; _ } ->
      Tm.incr m_parse_errors;
      {
        Pval.x_ty = Expr_sem.error_ty;
        x_code = Kir.Elit (Value.Vint 0);
        x_static = None;
        x_msgs =
          [
            Diag.error ~line:(if eline = 0 then line else eline)
              "cannot parse expression (unexpected %s)"
              (match
                 List.find_opt
                   (fun tok -> Lef.terminal_name tok = found)
                   lef
               with
              | Some tok -> Lef.describe tok
              | None -> found);
          ];
      }
    | tree ->
      let ev =
        Evaluator.create t.grammar
          ~token_line:(fun n -> Pval.Int n)
          ?provenance:(provenance_hook ())
          ~root_inherited:[ ("XLEVEL", Pval.Int level) ]
          tree
      in
      let cands = Pval.as_cands (Evaluator.goal ev "CANDS") in
      let msgs = Pval.as_msgs (Evaluator.goal ev "MSGS") in
      Expr_sem.select ~line ~expected cands msgs
  end

(** Evaluate a discrete range (for loops, type ranges, slices written as
    ranges).  Accepts either an explicit [l to r] LEF sequence (the caller
    splits it) or an attribute range. *)
let eval_range ~level ~line (lef : Lef.tok list) :
    (Kir.expr * Types.dir * Kir.expr) * Types.t option * Diag.t list =
  let t = Lazy.force instance in
  Tm.incr m_evaluations;
  timed @@ fun () ->
  let tokens = driver_tokens t lef in
  Tm.incr m_reparses;
  match Parsing.parse_list t.parser_ ~eof_value:Pval.Unit tokens with
  | exception Vhdl_lalr.Driver.Syntax_error _ ->
    Tm.incr m_parse_errors;
    ( (Kir.Elit (Value.Vint 0), Types.To, Kir.Elit (Value.Vint 0)),
      None,
      [ Diag.error ~line "cannot parse range" ] )
  | tree ->
    let ev =
      Evaluator.create t.grammar
        ~token_line:(fun n -> Pval.Int n)
        ?provenance:(provenance_hook ())
        ~root_inherited:[ ("XLEVEL", Pval.Int level) ]
        tree
    in
    let cands = Pval.as_cands (Evaluator.goal ev "CANDS") in
    let msgs = Pval.as_msgs (Evaluator.goal ev "MSGS") in
    Expr_sem.select_range ~line cands msgs
