(** [exprEval] — the cascade point between the two AGs (paper §4.1).

    "The out-of-line function exprEval is itself a parser and attribute
    evaluator generated from the expression AG...  The expression evaluator
    is fed tokens by a trivial scanner that just takes the next LEF token
    off the front of the list."

    The expression grammar and its parse tables are built once, lazily, just
    as Linguist generates its evaluator once. *)

type t = {
  grammar : Pval.t Grammar.t;
  parser_ : Pval.t Parsing.t;
}

let instance = lazy (
  let grammar = Expr_grammar.build () in
  let parser_ = Parsing.create ~name:"expression AG" grammar ~eof:"LEOF" in
  { grammar; parser_ })

let grammar () = (Lazy.force instance).grammar
let parser_ () = (Lazy.force instance).parser_

module Tm = Vhdl_telemetry.Telemetry
module Timer = Vhdl_util.Phase_timer

let m_evaluations = Tm.counter "cascade.evaluations"
let m_lef_tokens = Tm.counter "cascade.lef_tokens"
let m_reparses = Tm.counter "cascade.reparses"
let m_parse_errors = Tm.counter "cascade.parse_errors"
let m_memo_hits = Tm.counter "cascade.memo_hits"
let m_memo_misses = Tm.counter "cascade.memo_misses"
let m_memo_evictions = Tm.counter "cascade.memo_evictions"
let m_expr_lef_tokens = Tm.histogram "cascade.expr_lef_tokens"

(* ------------------------------------------------------------------ *)
(* The LEF→parse-tree memo cache.

   Telemetry used to show cascade.reparses == cascade.evaluations: every
   maximal expression re-ran the LALR parser on its token list at every
   evaluation, although designs repeat the same expressions constantly
   (clock edges, enable terms, loop bounds).  The parse tree is a pure
   function of the token list — context ([?expected], [~level]) enters
   only at attribute-evaluation and selection time, and [Evaluator.create]
   re-attaches fresh mutable nodes around the immutable [Tree.t] on every
   use — so the tree can be cached under a structural content key
   ({!Lef.content_key}: terminal kinds + payloads + lines; [eval] and
   [eval_range] get distinct keyspaces so the two entry points never
   alias).

   The cache is process-global, like the grammar and parse tables it
   derives from.  Eviction is generational: past [memo_limit] distinct
   expressions the whole table is dropped (counted by
   cascade.memo_evictions) — bounded memory, no LRU bookkeeping on the hot
   path.  Parse failures are never cached.  [with_cold_cascade] bypasses
   the cache (and copy elision in the expression AG) dynamically: the
   differential oracle's reference side must not share cached artifacts
   with the fast path it is checking. *)

let memo_limit = 512
let memo : (string, Pval.t Tree.t) Hashtbl.t = Hashtbl.create 256
let memo_size () = Hashtbl.length memo
let clear_memo () = Hashtbl.reset memo

let cascade_warm = ref true

let with_cold_cascade f =
  let saved = !cascade_warm in
  cascade_warm := false;
  Fun.protect ~finally:(fun () -> cascade_warm := saved) f

(* Time spent here is charged to its own phase of the ambient compile timer
   — the nested-frame accounting in Phase_timer carves it out of "attribute
   evaluation" (its dynamically enclosing phase) without the mutable-global
   subtraction this module used to maintain. *)
let cascade_phase = "expression evaluation (cascade)"

let timed f = Timer.time_ambient cascade_phase f

(* The ambient provenance recorder (armed by the compiler around attribute
   evaluation): with one in force, the expression evaluator records into it
   too, so its instances nest under the principal-AG attribute whose rule
   invoked the cascade — the explain chain crosses the AG boundary. *)
let provenance_hook () =
  Option.map (fun r -> (r, "expr", Pval.summary)) (Provenance.ambient ())

let driver_tokens t lef =
  List.map
    (fun tok ->
      {
        Vhdl_lalr.Driver.t_sym = Grammar.find_symbol t.grammar (Lef.terminal_name tok);
        t_value = Pval.Ltok tok;
        t_line = tok.Lef.l_line;
      })
    lef

type parse_outcome =
  | Parsed of Pval.t Tree.t
  | Syntax of { eline : int; found : string }

(* Parse [lef] through the memo cache: a hit returns the cached immutable
   tree without touching the parser; a miss parses, and caches successes. *)
let parse_cached t ~keyspace lef =
  let n = List.length lef in
  Tm.add m_lef_tokens n;
  Tm.observe m_expr_lef_tokens (float_of_int n);
  let key =
    if !cascade_warm then Lef.content_key ~keyspace lef else None
  in
  match Option.bind key (Hashtbl.find_opt memo) with
  | Some tree ->
    Tm.incr m_memo_hits;
    Parsed tree
  | None -> (
    if key <> None then Tm.incr m_memo_misses;
    let tokens = driver_tokens t lef in
    Tm.incr m_reparses;
    match Parsing.parse_list t.parser_ ~eof_value:Pval.Unit tokens with
    | exception Vhdl_lalr.Driver.Syntax_error { line = eline; found; _ } ->
      Tm.incr m_parse_errors;
      Syntax { eline; found }
    | tree ->
      (match key with
      | Some k ->
        if Hashtbl.length memo >= memo_limit then begin
          Hashtbl.reset memo;
          Tm.incr m_memo_evictions
        end;
        Hashtbl.replace memo k tree
      | None -> ());
      Parsed tree)

(* Attribute-evaluate a (possibly cached) tree: [Evaluator.create] attaches
   fresh mutable nodes with empty per-node attribute caches around the
   immutable tree, so evaluation context never leaks between uses of one
   cached artifact.  Copy elision follows the cascade mode: off on the
   oracle's cold path. *)
let goals t ~level tree =
  let ev =
    Evaluator.create t.grammar
      ~token_line:(fun n -> Pval.Int n)
      ?provenance:(provenance_hook ())
      ~copy_elide:!cascade_warm
      ~root_inherited:[ ("XLEVEL", Pval.Int level) ]
      tree
  in
  let cands = Pval.as_cands (Evaluator.goal ev "CANDS") in
  let msgs = Pval.as_msgs (Evaluator.goal ev "MSGS") in
  (cands, msgs)

(** Evaluate one maximal expression.

    @param expected the type required by context, if known
    @param level subprogram nesting level of the occurrence
    @param line source line, for diagnostics *)
let eval ?expected ~level ~line (lef : Lef.tok list) : Pval.xres =
  let t = Lazy.force instance in
  Tm.incr m_evaluations;
  timed @@ fun () ->
  if lef = [] then
    {
      Pval.x_ty = Expr_sem.error_ty;
      x_code = Kir.Elit (Value.Vint 0);
      x_static = None;
      x_msgs = [ Diag.error ~line "missing expression" ];
    }
  else
    match parse_cached t ~keyspace:"E" lef with
    | Syntax { eline; found } ->
      {
        Pval.x_ty = Expr_sem.error_ty;
        x_code = Kir.Elit (Value.Vint 0);
        x_static = None;
        x_msgs =
          [
            Diag.error ~line:(if eline = 0 then line else eline)
              "cannot parse expression (unexpected %s)"
              (match
                 List.find_opt
                   (fun tok -> Lef.terminal_name tok = found)
                   lef
               with
              | Some tok -> Lef.describe tok
              | None -> found);
          ];
      }
    | Parsed tree ->
      (* selection happens per call: [?expected] and [~line] are context,
         deliberately outside the cached artifact *)
      let cands, msgs = goals t ~level tree in
      Expr_sem.select ~line ~expected cands msgs

(** Evaluate a discrete range (for loops, type ranges, slices written as
    ranges).  Accepts either an explicit [l to r] LEF sequence (the caller
    splits it) or an attribute range. *)
let eval_range ~level ~line (lef : Lef.tok list) :
    (Kir.expr * Types.dir * Kir.expr) * Types.t option * Diag.t list =
  let t = Lazy.force instance in
  Tm.incr m_evaluations;
  timed @@ fun () ->
  if lef = [] then
    (* same guard as [eval]: an empty token list (a dangling "for i in" or
       an empty slice) must produce a diagnostic, not reach the parser *)
    ( (Kir.Elit (Value.Vint 0), Types.To, Kir.Elit (Value.Vint 0)),
      None,
      [ Diag.error ~line "missing range" ] )
  else
    match parse_cached t ~keyspace:"R" lef with
    | Syntax _ ->
      ( (Kir.Elit (Value.Vint 0), Types.To, Kir.Elit (Value.Vint 0)),
        None,
        [ Diag.error ~line "cannot parse range" ] )
    | Parsed tree ->
      let cands, msgs = goals t ~level tree in
      Expr_sem.select_range ~line cands msgs
