(** The analyzer: source text -> compiled design units.

    Drives scanner, LALR parser, and the demand attribute evaluator of the
    principal AG, then extracts the goal attributes (UNITS and MSGS) — the
    paper's "results of the translation". *)

type result = {
  r_units : Unit_info.compiled_unit list;
  r_msgs : Diag.t list;
  r_source_lines : int;
  r_tree_size : int;
  r_rule_applications : int;
}

exception Analysis_error of Diag.t list

let tokens_of_source src =
  let toks = Lexer.tokenize src in
  let grammar = Main_grammar.grammar () in
  List.map
    (fun (tok, line) ->
      {
        Vhdl_lalr.Driver.t_sym = Grammar.find_symbol grammar (Token.terminal_name tok);
        t_value = Pval.Tok tok;
        t_line = line;
      })
    toks

(** Analyze a source text within [session].  Parse errors and lexical errors
    raise {!Analysis_error}; semantic diagnostics are returned in
    [r_msgs]. *)
let analyze ~(session : Session.t) (src : string) : result =
  Session.with_session session (fun () ->
      let grammar = Main_grammar.grammar () in
      let parser_ = Main_grammar.parser_ () in
      let source_lines = Lexer.source_lines src in
      let tokens =
        try tokens_of_source src
        with Lexer.Lex_error { line; msg } ->
          raise (Analysis_error [ Diag.error ~line "%s" msg ])
      in
      let tree =
        try Parsing.parse_list parser_ ~eof_value:Pval.Unit tokens
        with Vhdl_lalr.Driver.Syntax_error { line; found; expected } ->
          raise
            (Analysis_error
               [
                 Diag.error ~line "syntax error: unexpected %s%s" found
                   (if List.length expected <= 8 then
                      " (expected " ^ String.concat ", " expected ^ ")"
                    else "");
               ])
      in
      let ev =
        Evaluator.create ~token_line:(fun n -> Pval.Int n) grammar
          ~root_inherited:
            [
              ("ENV", Pval.Env Env.empty);
              ("LEVEL", Pval.Int (-1));
              ("UNITNAME", Pval.Str (session.Session.work_library ^ ".%FILE%"));
              ("CTX", Pval.Str "arch");
              ("SLOTBASE", Pval.Int 0);
              ("SIGBASE", Pval.Int 0);
              ("LOOPDEPTH", Pval.Int 0);
              ("RETTY", Pval.Opt None);
              ("CTXOUT", Pval.Out Pval.out_empty);
              ("NLINES", Pval.Int source_lines);
            ]
          tree
      in
      let units = Pval.as_units (Evaluator.goal ev "UNITS") in
      let msgs = Pval.as_msgs (Evaluator.goal ev "MSGS") in
      (* NLINES reaches each unit as the whole file's count; apportion it *)
      let n = max 1 (List.length units) in
      let units =
        List.map
          (fun (u : Unit_info.compiled_unit) ->
            { u with Unit_info.u_source_lines = u.Unit_info.u_source_lines / n })
          units
      in
      {
        r_units = units;
        r_msgs = msgs;
        r_source_lines = source_lines;
        r_tree_size = Tree.size tree;
        r_rule_applications = Evaluator.rule_applications ev;
      })
