(** Principal AG, design units and concurrent statements. *)

open Pval
open Gram_util
module B = Grammar.Builder

let nonterminals =
  [
    "design_file"; "design_units"; "design_unit"; "context_items"; "context_item";
    "library_clause"; "library_unit"; "entity_decl"; "arch_body"; "package_decl";
    "package_body_u"; "config_decl"; "config_items"; "concs"; "conc";
    "process_head"; "sens_opt"; "guard_opt"; "gmap_opt"; "pmap_opt"; "assoc_list";
    "assoc"; "cond_waves"; "selected_waves"; "guarded_opt";
  ]

(* environment of a design unit: the implicit context plus its explicit
   context clauses *)
let unit_env context_out =
  Env.extend_many (Decl_sem.initial_env ()) (as_out context_out).o_binds

let std_ctx_rules ~env_rule ~ctx ~unitname_deps ~unitname pos =
  (* common inherited setup for a unit's inner regions *)
  [
    rule ~target:(pos, "ENV") ~deps:(fst env_rule) (snd env_rule);
    rule ~target:(pos, "CTX") ~deps:[] (fun _ -> Str ctx);
    rule ~target:(pos, "UNITNAME") ~deps:unitname_deps unitname;
    rule ~target:(pos, "LEVEL") ~deps:[] (fun _ -> Int (-1));
    rule ~target:(pos, "SLOTBASE") ~deps:[] (fun _ -> Int 0);
  ]

let add b =
  List.iter (fun n -> ignore (B.nonterminal b n)) nonterminals;
  let prod = B.production b in

  (* ---- file structure ---- *)
  prod ~name:"design_file" ~lhs:"design_file" ~rhs:[ "design_units" ] ~rules:[];
  prod ~name:"design_units_one" ~lhs:"design_units" ~rhs:[ "design_unit" ] ~rules:[];
  prod ~name:"design_units_more" ~lhs:"design_units" ~rhs:[ "design_units"; "design_unit" ]
    ~rules:[];
  prod ~name:"design_unit_ctx" ~lhs:"design_unit" ~rhs:[ "context_items"; "library_unit" ]
    ~rules:
      [
        rule ~target:(2, "CTXOUT") ~deps:[ (1, "OUT") ] (function
          | [ out ] -> out
          | _ -> internal "design_unit ctx");
      ];
  prod ~name:"design_unit_plain" ~lhs:"design_unit" ~rhs:[ "library_unit" ]
    ~rules:[ rule ~target:(1, "CTXOUT") ~deps:[] (fun _ -> Out out_empty) ];
  prod ~name:"context_items_one" ~lhs:"context_items" ~rhs:[ "context_item" ] ~rules:[];
  prod ~name:"context_items_more" ~lhs:"context_items"
    ~rhs:[ "context_items"; "context_item" ]
    ~rules:[];
  prod ~name:"context_item_library" ~lhs:"context_item" ~rhs:[ "library_clause" ] ~rules:[];
  prod ~name:"context_item_use" ~lhs:"context_item" ~rhs:[ "use_clause" ] ~rules:[];
  prod ~name:"library_clause" ~lhs:"library_clause" ~rhs:[ "library"; "id_list"; ";" ]
    ~rules:
      (out_rules ~deps:[ (1, "LINE"); (2, "IDS") ] ~msg_deps:[] (function
        | [ line; ids ] -> Decl_sem.resolve_library ~line:(as_int line) (as_ids ids)
        | _ -> internal "library_clause"));

  (* context clauses resolve against the session, not the lexical ENV: give
     them a harmless environment *)
  prod ~name:"library_unit_entity" ~lhs:"library_unit" ~rhs:[ "entity_decl" ] ~rules:[];
  prod ~name:"library_unit_arch" ~lhs:"library_unit" ~rhs:[ "arch_body" ] ~rules:[];
  prod ~name:"library_unit_package" ~lhs:"library_unit" ~rhs:[ "package_decl" ] ~rules:[];
  prod ~name:"library_unit_body" ~lhs:"library_unit" ~rhs:[ "package_body_u" ] ~rules:[];
  prod ~name:"library_unit_config" ~lhs:"library_unit" ~rhs:[ "config_decl" ] ~rules:[];

  (* ---- entity ---- *)
  prod ~name:"entity_decl" ~lhs:"entity_decl"
    ~rhs:
      [
        "entity"; "ID"; "is"; "generic_clause_opt"; "port_clause_opt"; "decl_items";
        "end"; "opt_id"; ";";
      ]
    ~rules:
      (std_ctx_rules
         ~env_rule:
           ( [ (0, "CTXOUT") ],
             function
             | [ ctxout ] -> Env (unit_env ctxout)
             | _ -> internal "entity env" )
         ~ctx:"entity"
         ~unitname_deps:[ (2, "VAL") ]
         ~unitname:(function
           | [ v ] -> Str (Session.work () ^ "." ^ tok_id v)
           | _ -> internal "entity unitname")
         4
      @ std_ctx_rules
          ~env_rule:
            ( [ (0, "CTXOUT") ],
              function
              | [ ctxout ] -> Env (unit_env ctxout)
              | _ -> internal "entity env2" )
          ~ctx:"entity"
          ~unitname_deps:[ (2, "VAL") ]
          ~unitname:(function
            | [ v ] -> Str (Session.work () ^ "." ^ tok_id v)
            | _ -> internal "entity unitname2")
          5
      @ [
          (* the entity declarative part: its types/constants are visible in
             every architecture body (through the same channel as the
             entity's context clause) *)
          rule ~target:(6, "ENV")
            ~deps:[ (0, "CTXOUT"); (4, "IFACES") ]
            (function
              | [ ctxout; generics ] ->
                (* generics are visible to the entity's declarations, at
                   their flat slot positions *)
                let binds, _ =
                  List.fold_left
                    (fun (acc, idx) i ->
                      List.fold_left
                        (fun (acc, idx) (n, _) ->
                          ( ( n,
                              Denot.Dobject
                                {
                                  name = n;
                                  cls = Denot.Cconstant;
                                  ty = i.if_ty;
                                  mode = None;
                                  slot = Denot.Sl_generic idx;
                                } )
                            :: acc,
                            idx + 1 ))
                        (acc, idx) i.if_names)
                    ([], 0) (as_ifaces generics)
                in
                Env (Env.extend_many (unit_env ctxout) (List.rev binds))
              | _ -> internal "entity decl env");
          rule ~target:(6, "CTX") ~deps:[] (fun _ -> Str "entity");
          rule ~target:(6, "UNITNAME") ~deps:[ (2, "VAL") ] (function
            | [ v ] -> Str (Session.work () ^ "." ^ tok_id v)
            | _ -> internal "entity decl unitname");
          rule ~target:(0, "UNITS")
            ~deps:
              [
                (2, "VAL"); (0, "CTXOUT"); (4, "IFACES"); (5, "IFACES"); (6, "OUT");
                (0, "NLINES");
              ]
            (function
              | [ v; ctxout; generics; ports; decls; nlines ] ->
                let u =
                  Unit_sem.entity ~name:(tok_id v) ~generics:(as_ifaces generics)
                    ~ports:(as_ifaces ports)
                    ~source_lines:(as_int nlines)
                    ~context:((as_out ctxout).o_binds @ (as_out decls).o_binds)
                    ~deps:((as_out ctxout).o_deps @ (as_out decls).o_deps)
                in
                Session.insert_unit u;
                Units [ u ]
              | _ -> internal "entity units");
          rule ~target:(0, "MSGS")
            ~deps:
              [
                (0, "CTXOUT"); (2, "VAL"); (2, "LINE"); (4, "MSGS"); (5, "MSGS");
                (6, "MSGS"); (6, "OUT"); (8, "OID");
              ]
            (function
              | [ _; v; line; m1; m2; m3; decls; oid ] ->
                let endname =
                  match as_opt oid with
                  | Some (Str s) -> Some s
                  | _ -> None
                in
                let decl_out = as_out decls in
                let unsupported =
                  (if decl_out.o_subprograms <> [] then
                     [
                       Diag.error ~line:(as_int line)
                         "subprogram bodies in entity declarative parts are not supported";
                     ]
                   else [])
                  @
                  if decl_out.o_signals <> [] then
                    [
                      Diag.error ~line:(as_int line)
                        "signals in entity declarative parts are not supported";
                    ]
                  else []
                in
                Msgs
                  (as_msgs m1 @ as_msgs m2 @ as_msgs m3 @ unsupported
                  @ Unit_sem.check_end_name ~line:(as_int line) ~kind:"entity"
                      ~expected:(tok_id v) endname)
              | _ -> internal "entity msgs");
        ]);

  (* ---- architecture ---- *)
  prod ~name:"arch_body" ~lhs:"arch_body"
    ~rhs:
      [
        "architecture"; "ID"; "of"; "ID"; "is"; "decl_items"; "begin"; "concs"; "end";
        "opt_id"; ";";
      ]
    ~rules:
      [
        (* declarative part environment: context + entity interface *)
        rule ~target:(6, "ENV") ~deps:[ (0, "CTXOUT"); (4, "VAL"); (4, "LINE") ] (function
          | [ ctxout; ent_v; line ] ->
            let env = unit_env ctxout in
            let entity, _ = Unit_sem.find_entity ~line:(as_int line) (tok_id ent_v) in
            let env =
              match entity with
              | Some en ->
                (* the entity's own context clause is visible in the body *)
                let env = Env.extend_many env en.Unit_info.en_context in
                Env.extend_many env (Unit_sem.entity_interface_binds en)
              | None -> env
            in
            Env env
          | _ -> internal "arch env");
        rule ~target:(6, "CTX") ~deps:[] (fun _ -> Str "arch");
        rule ~target:(6, "LEVEL") ~deps:[] (fun _ -> Int (-1));
        rule ~target:(6, "SLOTBASE") ~deps:[] (fun _ -> Int 0);
        rule ~target:(6, "UNITNAME") ~deps:[ (2, "VAL"); (4, "VAL") ] (function
          | [ a; e ] -> Str (Printf.sprintf "%s.%s(%s)" (Session.work ()) (tok_id e) (tok_id a))
          | _ -> internal "arch unitname");
        (* signal indices continue after the entity ports *)
        rule ~target:(6, "SIGBASE") ~deps:[ (4, "VAL"); (4, "LINE") ] (function
          | [ ent_v; line ] -> (
            match Unit_sem.find_entity ~line:(as_int line) (tok_id ent_v) with
            | Some en, _ -> Int (List.length en.Unit_info.en_ports)
            | None, _ -> Int 0)
          | _ -> internal "arch sigbase");
        (* concurrent part *)
        rule ~target:(8, "ENV") ~deps:[ (6, "ENV"); (6, "OUT") ] (function
          | [ env; out ] -> Env (Env.extend_many (as_env env) (as_out out).o_binds)
          | _ -> internal "arch concs env");
        rule ~target:(8, "CTX") ~deps:[] (fun _ -> Str "arch");
        rule ~target:(8, "LEVEL") ~deps:[] (fun _ -> Int (-1));
        rule ~target:(8, "SLOTBASE") ~deps:[] (fun _ -> Int 0);
        rule ~target:(8, "UNITNAME") ~deps:[ (2, "VAL"); (4, "VAL") ] (function
          | [ a; e ] -> Str (Printf.sprintf "%s.%s(%s)" (Session.work ()) (tok_id e) (tok_id a))
          | _ -> internal "arch concs unitname");
        rule ~target:(8, "SIGBASE") ~deps:[ (6, "SIGBASE"); (6, "OUT") ] (function
          | [ base; out ] -> Int (as_int base + List.length (as_out out).o_signals)
          | _ -> internal "arch concs sigbase");
        rule ~target:(0, "UNITS")
          ~deps:
            [
              (2, "VAL"); (4, "VAL"); (4, "LINE"); (0, "CTXOUT"); (6, "OUT"); (8, "OUT");
              (8, "CONCS"); (0, "NLINES");
            ]
          (function
            | [ arch_v; ent_v; line; ctxout; decl_out; conc_out; concs; nlines ] ->
              let entity, _ = Unit_sem.find_entity ~line:(as_int line) (tok_id ent_v) in
              let out =
                out_append (as_out ctxout) (out_append (as_out decl_out) (as_out conc_out))
              in
              let u =
                Unit_sem.architecture ~name:(tok_id arch_v) ~entity_name:(tok_id ent_v)
                  ~entity ~out ~body:(as_concs concs)
                  ~source_lines:(as_int nlines)
              in
              Session.insert_unit u;
              Units [ u ]
            | _ -> internal "arch units");
        rule ~target:(0, "MSGS")
          ~deps:
            [
              (2, "VAL"); (2, "LINE"); (4, "VAL"); (4, "LINE"); (6, "MSGS"); (8, "MSGS");
              (10, "OID");
            ]
          (function
            | [ arch_v; line; ent_v; eline; m1; m2; oid ] ->
              let _, emsgs = Unit_sem.find_entity ~line:(as_int eline) (tok_id ent_v) in
              let endname =
                match as_opt oid with
                | Some (Str s) -> Some s
                | _ -> None
              in
              Msgs
                (emsgs @ as_msgs m1 @ as_msgs m2
                @ Unit_sem.check_end_name ~line:(as_int line) ~kind:"architecture"
                    ~expected:(tok_id arch_v) endname)
            | _ -> internal "arch msgs");
      ];

  (* ---- package / package body ---- *)
  prod ~name:"package_decl" ~lhs:"package_decl"
    ~rhs:[ "package"; "ID"; "is"; "decl_items"; "end"; "opt_id"; ";" ]
    ~rules:
      [
        rule ~target:(4, "ENV") ~deps:[ (0, "CTXOUT") ] (function
          | [ ctxout ] -> Env (unit_env ctxout)
          | _ -> internal "package env");
        rule ~target:(4, "CTX") ~deps:[ (2, "VAL") ] (function
          | [ v ] -> Str ("package:" ^ tok_id v)
          | _ -> internal "package ctx");
        rule ~target:(4, "LEVEL") ~deps:[] (fun _ -> Int (-1));
        rule ~target:(4, "SLOTBASE") ~deps:[] (fun _ -> Int 0);
        rule ~target:(4, "SIGBASE") ~deps:[] (fun _ -> Int 0);
        rule ~target:(4, "UNITNAME") ~deps:[ (2, "VAL") ] (function
          | [ v ] -> Str (Session.work () ^ "." ^ tok_id v)
          | _ -> internal "package unitname");
        rule ~target:(0, "UNITS")
          ~deps:[ (2, "VAL"); (0, "CTXOUT"); (4, "OUT"); (0, "NLINES") ]
          (function
            | [ v; ctxout; out; nlines ] ->
              let out = out_append (as_out ctxout) (as_out out) in
              let specs =
                List.filter_map
                  (fun (_, d) ->
                    match d with
                    | Denot.Dsubprog s -> Some s
                    | _ -> None)
                  out.o_binds
              in
              let u =
                Unit_sem.package ~name:(tok_id v) ~out ~specs
                  ~source_lines:(as_int nlines)
              in
              Session.insert_unit u;
              Units [ u ]
            | _ -> internal "package units");
        rule ~target:(0, "MSGS") ~deps:[ (2, "VAL"); (2, "LINE"); (4, "MSGS"); (6, "OID") ]
          (function
            | [ v; line; m; oid ] ->
              let endname =
                match as_opt oid with
                | Some (Str s) -> Some s
                | _ -> None
              in
              Msgs
                (as_msgs m
                @ Unit_sem.check_end_name ~line:(as_int line) ~kind:"package"
                    ~expected:(tok_id v) endname)
            | _ -> internal "package msgs");
      ];
  prod ~name:"package_body_u" ~lhs:"package_body_u"
    ~rhs:[ "package"; "body"; "ID"; "is"; "decl_items"; "end"; "opt_id"; ";" ]
    ~rules:
      [
        rule ~target:(5, "ENV") ~deps:[ (0, "CTXOUT"); (3, "VAL"); (3, "LINE") ] (function
          | [ ctxout; v; line ] ->
            let spec_binds, _ =
              Unit_sem.package_spec_env ~line:(as_int line) (tok_id v)
            in
            Env (Env.extend_many (unit_env ctxout) spec_binds)
          | _ -> internal "pkg body env");
        (* body items share the package object context, so full declarations
           of deferred constants publish their qualified values *)
        rule ~target:(5, "CTX") ~deps:[ (3, "VAL") ] (function
          | [ v ] -> Str ("package:" ^ tok_id v)
          | _ -> internal "pkg body ctx");
        rule ~target:(5, "LEVEL") ~deps:[] (fun _ -> Int (-1));
        rule ~target:(5, "SLOTBASE") ~deps:[] (fun _ -> Int 0);
        rule ~target:(5, "SIGBASE") ~deps:[] (fun _ -> Int 0);
        rule ~target:(5, "UNITNAME") ~deps:[ (3, "VAL") ] (function
          | [ v ] -> Str (Session.work () ^ "." ^ tok_id v)
          | _ -> internal "pkg body unitname");
        rule ~target:(0, "UNITS")
          ~deps:[ (3, "VAL"); (0, "CTXOUT"); (5, "OUT"); (0, "NLINES") ]
          (function
            | [ v; ctxout; out; nlines ] ->
              let out = out_append (as_out ctxout) (as_out out) in
              let u =
                Unit_sem.package_body ~name:(tok_id v) ~out ~source_lines:(as_int nlines)
              in
              Session.insert_unit u;
              Units [ u ]
            | _ -> internal "pkg body units");
        rule ~target:(0, "MSGS") ~deps:[ (3, "VAL"); (3, "LINE"); (5, "MSGS"); (7, "OID") ]
          (function
            | [ v; line; m; oid ] ->
              let name = tok_id v in
              let _, emsgs = Unit_sem.package_spec_env ~line:(as_int line) name in
              let endname =
                match as_opt oid with
                | Some (Str s) -> Some s
                | _ -> None
              in
              Msgs
                (emsgs @ as_msgs m
                @ Unit_sem.check_end_name ~line:(as_int line) ~kind:"package body"
                    ~expected:name endname)
            | _ -> internal "pkg body msgs");
      ];

  (* ---- configuration ---- *)
  prod ~name:"config_decl" ~lhs:"config_decl"
    ~rhs:
      [
        "configuration"; "ID"; "of"; "ID"; "is"; "for"; "ID"; "config_items"; "end"; "for";
        ";"; "end"; "opt_id"; ";";
      ]
    ~rules:
      [
        rule ~target:(8, "ENV") ~deps:[ (0, "CTXOUT") ] (function
          | [ ctxout ] -> Env (unit_env ctxout)
          | _ -> internal "config env");
        rule ~target:(8, "CTX") ~deps:[] (fun _ -> Str "arch");
        rule ~target:(8, "LEVEL") ~deps:[] (fun _ -> Int (-1));
        rule ~target:(8, "SLOTBASE") ~deps:[] (fun _ -> Int 0);
        rule ~target:(8, "SIGBASE") ~deps:[] (fun _ -> Int 0);
        rule ~target:(8, "UNITNAME") ~deps:[ (2, "VAL") ] (function
          | [ v ] -> Str (Session.work () ^ "." ^ tok_id v)
          | _ -> internal "config unitname");
        rule ~target:(0, "SRES")
          ~deps:[ (2, "VAL"); (4, "VAL"); (4, "LINE"); (7, "VAL"); (8, "OUT"); (0, "NLINES") ]
          (function
            | [ name_v; ent_v; line; arch_v; out; nlines ] ->
              let u, msgs =
                Unit_sem.configuration ~name:(tok_id name_v) ~entity_name:(tok_id ent_v)
                  ~arch_name:(tok_id arch_v)
                  ~specs:(as_out out).o_config_specs
                  ~source_lines:(as_int nlines) ~line:(as_int line)
              in
              Session.insert_unit u;
              Pair (Units [ u ], Msgs msgs)
            | _ -> internal "config sres");
        rule ~target:(0, "UNITS") ~deps:[ (0, "SRES") ] fst_of;
        rule ~target:(0, "MSGS") ~deps:[ (0, "SRES"); (8, "MSGS") ] snd_plus_msgs;
      ];
  prod ~name:"config_items_empty" ~lhs:"config_items" ~rhs:[] ~rules:[];
  (* component configuration: the spec plus its mandatory "end for;" *)
  prod ~name:"config_items_more" ~lhs:"config_items"
    ~rhs:[ "config_items"; "config_spec1"; "end"; "for"; ";" ]
    ~rules:[];

  (* ---- concurrent statements ---- *)
  prod ~name:"concs_empty" ~lhs:"concs" ~rhs:[] ~rules:[];
  prod ~name:"concs_more" ~lhs:"concs" ~rhs:[ "concs"; "conc" ]
    ~rules:
      [
        rule ~target:(2, "SIGBASE") ~deps:[ (0, "SIGBASE"); (1, "OUT") ] (function
          | [ base; out ] -> Int (as_int base + List.length (as_out out).o_signals)
          | _ -> internal "concs sigbase");
      ];

  (* process *)
  prod ~name:"conc_process" ~lhs:"conc"
    ~rhs:[ "process_head"; "decl_items"; "begin"; "stmts"; "end"; "process"; "opt_id"; ";" ]
    ~rules:
      ([
         rule ~target:(2, "CTX") ~deps:[] (fun _ -> Str "process");
         rule ~target:(2, "LEVEL") ~deps:[] (fun _ -> Int 0);
         rule ~target:(2, "SLOTBASE") ~deps:[] (fun _ -> Int 0);
         rule ~target:(4, "ENV") ~deps:[ (0, "ENV"); (2, "OUT") ] (function
           | [ env; out ] -> Env (Env.extend_many (as_env env) (as_out out).o_binds)
           | _ -> internal "process stmts env");
         rule ~target:(4, "CTX") ~deps:[] (fun _ -> Str "process");
         rule ~target:(4, "LEVEL") ~deps:[] (fun _ -> Int 0);
         rule ~target:(4, "LOOPDEPTH") ~deps:[] (fun _ -> Int 0);
         rule ~target:(4, "RETTY") ~deps:[] (fun _ -> Opt None);
       ]
      @ conc_rules
          ~deps:[ (1, "LBL"); (1, "SENS"); (1, "LINE1"); (2, "OUT"); (4, "CODE") ]
          ~msg_deps:[ 1; 2; 4 ]
          (function
            | [ lbl; sens; line; out; code ] ->
              let label =
                match as_opt lbl with
                | Some (Str s) -> Some s
                | _ -> None
              in
              let (concs, out), msgs =
                Conc_sem.process_stmt ~label ~sensitivity:(as_lefs sens)
                  ~line:(as_int line) ~out:(as_out out) ~body:(as_stmts code)
              in
              (concs, out, msgs)
            | _ -> internal "conc_process"));
  prod ~name:"process_head_plain" ~lhs:"process_head" ~rhs:[ "process"; "sens_opt" ]
    ~rules:
      [
        rule ~target:(0, "LBL") ~deps:[] (fun _ -> Opt None);
        rule ~target:(0, "SENS") ~deps:[ (2, "LEFS") ] (function
          | [ s ] -> s
          | _ -> internal "process sens");
        rule ~target:(0, "LINE1") ~deps:[ (1, "LINE") ] (function
          | [ l ] -> l
          | _ -> internal "process line");
      ];
  prod ~name:"process_head_labeled" ~lhs:"process_head"
    ~rhs:[ "ID"; ":"; "process"; "sens_opt" ]
    ~rules:
      [
        rule ~target:(0, "LBL") ~deps:[ (1, "VAL") ] (function
          | [ v ] -> Opt (Some (Str (tok_id v)))
          | _ -> internal "process lbl");
        rule ~target:(0, "SENS") ~deps:[ (4, "LEFS") ] (function
          | [ s ] -> s
          | _ -> internal "process sens");
        rule ~target:(0, "LINE1") ~deps:[ (1, "LINE") ] (function
          | [ l ] -> l
          | _ -> internal "process line");
      ];
  prod ~name:"sens_none" ~lhs:"sens_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "LEFS") ~deps:[] (fun _ -> Lefs []) ];
  prod ~name:"sens_some" ~lhs:"sens_opt" ~rhs:[ "("; "name_list"; ")" ] ~rules:[];

  (* concurrent assignments *)
  prod ~name:"conc_assign" ~lhs:"conc"
    ~rhs:[ "name"; "<="; "guarded_opt"; "transport_opt"; "cond_waves"; ";" ]
    ~rules:
      (conc_rules
         ~deps:
           [
             (0, "LEVEL"); (1, "LEF"); (2, "LINE"); (3, "BOOLV"); (4, "BOOLV"); (5, "CWAVES");
           ]
         ~msg_deps:[ 1; 5 ]
         (function
           | [ level; target; line; guarded; transport; cwaves ] ->
             let level = as_int level and line = as_int line in
             let guarded = as_bool guarded and transport = as_bool transport in
             let concs, msgs =
               match as_cwaves cwaves with
               | [ (waves, None) ] ->
                 Conc_sem.concurrent_assign ~level ~line ~label:None ~transport ~guarded
                   (as_lef target) waves
               | arms ->
                 let conds, final =
                   List.partition (fun (_, c) -> c <> None) arms
                 in
                 Conc_sem.conditional_assign ~level ~line ~label:None ~transport ~guarded
                   (as_lef target)
                   (List.map (fun (w, c) -> (w, Option.get c)) conds)
                   (match final with
                   | [ (w, None) ] -> Some w
                   | _ -> None)
             in
             (concs, out_empty, msgs)
           | _ -> internal "conc_assign"));
  prod ~name:"conc_assign_labeled" ~lhs:"conc"
    ~rhs:[ "ID"; ":"; "name"; "<="; "guarded_opt"; "transport_opt"; "cond_waves"; ";" ]
    ~rules:
      (conc_rules
         ~deps:
           [
             (0, "LEVEL"); (1, "VAL"); (3, "LEF"); (4, "LINE"); (5, "BOOLV"); (6, "BOOLV");
             (7, "CWAVES");
           ]
         ~msg_deps:[ 3; 7 ]
         (function
           | [ level; lbl; target; line; guarded; transport; cwaves ] ->
             let level = as_int level and line = as_int line in
             let guarded = as_bool guarded and transport = as_bool transport in
             let label = Some (tok_id lbl) in
             let concs, msgs =
               match as_cwaves cwaves with
               | [ (waves, None) ] ->
                 Conc_sem.concurrent_assign ~level ~line ~label ~transport ~guarded
                   (as_lef target) waves
               | arms ->
                 let conds, final = List.partition (fun (_, c) -> c <> None) arms in
                 Conc_sem.conditional_assign ~level ~line ~label ~transport ~guarded
                   (as_lef target)
                   (List.map (fun (w, c) -> (w, Option.get c)) conds)
                   (match final with
                   | [ (w, None) ] -> Some w
                   | _ -> None)
             in
             (concs, out_empty, msgs)
           | _ -> internal "conc_assign_labeled"));
  prod ~name:"cond_waves_plain" ~lhs:"cond_waves" ~rhs:[ "waveform" ]
    ~rules:
      [
        rule ~target:(0, "CWAVES") ~deps:[ (1, "WAVES") ] (function
          | [ w ] -> Cwaves [ (as_waves w, None) ]
          | _ -> internal "cond_waves_plain");
      ];
  prod ~name:"cond_waves_when" ~lhs:"cond_waves"
    ~rhs:[ "waveform"; "when"; "expr"; "else"; "cond_waves" ]
    ~rules:
      [
        rule ~target:(0, "CWAVES") ~deps:[ (1, "WAVES"); (3, "LEF"); (5, "CWAVES") ] (function
          | [ w; c; rest ] -> Cwaves ((as_waves w, Some (as_lef c)) :: as_cwaves rest)
          | _ -> internal "cond_waves_when");
      ];
  prod ~name:"guarded_none" ~lhs:"guarded_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "BOOLV") ~deps:[] (fun _ -> Bool false) ];
  prod ~name:"guarded_some" ~lhs:"guarded_opt" ~rhs:[ "guarded" ]
    ~rules:[ rule ~target:(0, "BOOLV") ~deps:[] (fun _ -> Bool true) ];

  (* selected assignment *)
  let selected ~name ~rhs ~lbl_dep ~sel_pos ~target_pos ~guarded_pos ~transport_pos ~waves_pos =
    prod ~name ~lhs:"conc" ~rhs
      ~rules:
        (conc_rules
           ~deps:
             ((0, "LEVEL")
             :: (lbl_dep
                @ [
                    (sel_pos, "LEF"); (target_pos, "LEF"); (guarded_pos, "BOOLV");
                    (transport_pos, "BOOLV"); (waves_pos, "SWAVES"); (1, "LINE");
                  ]))
           ~msg_deps:[ sel_pos; target_pos; waves_pos ]
           (fun vs ->
             match vs with
             | level :: rest ->
               let label, rest =
                 if lbl_dep = [] then (None, rest)
                 else
                   match rest with
                   | l :: r -> (Some (tok_id l), r)
                   | [] -> internal "selected lbl"
               in
               (match rest with
               | [ sel; target; guarded; transport; swaves; line ] ->
                 let concs, msgs =
                   Conc_sem.selected_assign ~level:(as_int level) ~line:(as_int line)
                     ~label ~transport:(as_bool transport) ~guarded:(as_bool guarded)
                     (as_lef sel) (as_lef target)
                     (as_swaves swaves)
                 in
                 (concs, out_empty, msgs)
               | _ -> internal "selected args")
             | [] -> internal "selected"))
  in
  selected ~name:"conc_selected"
    ~rhs:[ "with"; "expr"; "select"; "name"; "<="; "guarded_opt"; "transport_opt"; "selected_waves"; ";" ]
    ~lbl_dep:[] ~sel_pos:2 ~target_pos:4 ~guarded_pos:6 ~transport_pos:7 ~waves_pos:8;
  selected ~name:"conc_selected_labeled"
    ~rhs:
      [
        "ID"; ":"; "with"; "expr"; "select"; "name"; "<="; "guarded_opt";
        "transport_opt"; "selected_waves"; ";";
      ]
    ~lbl_dep:[ (1, "VAL") ] ~sel_pos:4 ~target_pos:6 ~guarded_pos:8 ~transport_pos:9
    ~waves_pos:10;
  prod ~name:"selected_waves_one" ~lhs:"selected_waves"
    ~rhs:[ "waveform"; "when"; "chlist" ]
    ~rules:
      [
        rule ~target:(0, "SWAVES") ~deps:[ (1, "WAVES"); (3, "CHS") ] (function
          | [ w; chs ] -> Swaves [ (as_waves w, as_choices chs) ]
          | _ -> internal "selected_waves_one");
      ];
  prod ~name:"selected_waves_more" ~lhs:"selected_waves"
    ~rhs:[ "selected_waves"; ","; "waveform"; "when"; "chlist" ]
    ~rules:
      [
        rule ~target:(0, "SWAVES") ~deps:[ (1, "SWAVES"); (3, "WAVES"); (5, "CHS") ] (function
          | [ prev; w; chs ] -> Swaves (as_swaves prev @ [ (as_waves w, as_choices chs) ])
          | _ -> internal "selected_waves_more");
      ];

  (* concurrent assertion *)
  let conc_assert_prod ~name ~rhs ~shift ~label_of =
    prod ~name ~lhs:"conc" ~rhs
      ~rules:
        (conc_rules
           ~deps:
             ([ (0, "LEVEL") ]
             @ List.map
                 (fun (p, a) -> (p + shift, a))
                 [ (1, "LINE"); (2, "LEF"); (3, "OLEF"); (4, "OLEF") ]
             @ if shift > 0 then [ (1, "VAL") ] else [])
           ~msg_deps:[ 2 + shift; 3 + shift; 4 + shift ]
           (fun vs ->
             match vs with
             | level :: line :: cond :: report :: severity :: rest ->
               let stmts, msgs =
                 Stmt_sem.build_assert ~level:(as_int level) ~line:(as_int line)
                   ~cond:(as_lef cond)
                   ~report:(Option.map as_lef (as_opt report))
                   ~severity:(Option.map as_lef (as_opt severity))
               in
               (* a concurrent assertion is a process sensitive to its signals *)
               let sens =
                 match stmts with
                 | [ Kir.Sassert { cond; _ } ] -> Kir_util.signals_read_expr cond
                 | _ -> []
               in
               ( [
                   Kir.C_process
                     {
                       Kir.proc_label = label_of rest;
                       proc_sensitivity = sens;
                       proc_locals = [];
                       proc_body = stmts;
                       proc_postponed_wait = true;
                     };
                 ],
                 out_empty,
                 msgs )
             | _ -> internal "conc_assert"))
  in
  conc_assert_prod ~name:"conc_assert"
    ~rhs:[ "assert"; "expr"; "report_opt"; "severity_opt"; ";" ]
    ~shift:0
    ~label_of:(fun _ -> Conc_sem.fresh_label "assert");
  conc_assert_prod ~name:"conc_assert_labeled"
    ~rhs:[ "ID"; ":"; "assert"; "expr"; "report_opt"; "severity_opt"; ";" ]
    ~shift:2
    ~label_of:(fun rest ->
      match rest with
      | [ v ] -> tok_id v
      | _ -> Conc_sem.fresh_label "assert");

  (* component instantiation *)
  prod ~name:"conc_instance" ~lhs:"conc"
    ~rhs:[ "ID"; ":"; "ID"; "gmap_opt"; "pmap_opt"; ";" ]
    ~rules:
      (conc_rules
         ~deps:
           [
             (0, "ENV"); (0, "LEVEL"); (1, "VAL"); (1, "LINE"); (3, "VAL"); (4, "ASSOCS");
             (5, "ASSOCS");
           ]
         ~msg_deps:[ 4; 5 ]
         (function
           | [ env; level; lbl; line; comp; gmap; pmap ] ->
             let concs, msgs =
               Conc_sem.instance ~env:(as_env env) ~level:(as_int level)
                 ~line:(as_int line) ~label:(tok_id lbl) ~component_name:(tok_id comp)
                 ~generic_map:(as_assocs gmap) ~port_map:(as_assocs pmap)
             in
             (concs, out_empty, msgs)
           | _ -> internal "conc_instance"));
  prod ~name:"gmap_none" ~lhs:"gmap_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "ASSOCS") ~deps:[] (fun _ -> Assocs []) ];
  prod ~name:"gmap_some" ~lhs:"gmap_opt" ~rhs:[ "generic"; "map"; "("; "assoc_list"; ")" ]
    ~rules:[];
  prod ~name:"pmap_none" ~lhs:"pmap_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "ASSOCS") ~deps:[] (fun _ -> Assocs []) ];
  prod ~name:"pmap_some" ~lhs:"pmap_opt" ~rhs:[ "port"; "map"; "("; "assoc_list"; ")" ]
    ~rules:[];
  prod ~name:"assoc_list_one" ~lhs:"assoc_list" ~rhs:[ "assoc" ] ~rules:[];
  prod ~name:"assoc_list_more" ~lhs:"assoc_list" ~rhs:[ "assoc_list"; ","; "assoc" ]
    ~rules:
      [
        rule ~target:(0, "ASSOCS") ~deps:[ (1, "ASSOCS"); (3, "ASSOCS") ] (function
          | [ a; c ] -> Assocs (as_assocs a @ as_assocs c)
          | _ -> internal "assoc_list_more");
      ];
  prod ~name:"assoc_positional" ~lhs:"assoc" ~rhs:[ "expr" ]
    ~rules:
      [
        rule ~target:(0, "ASSOCS") ~deps:[ (1, "LEF") ] (function
          | [ lef ] ->
            let lef = as_lef lef in
            let line = match lef with t :: _ -> t.Lef.l_line | [] -> 0 in
            Assocs [ { a_formal = None; a_actual = `Lef lef; a_line = line } ]
          | _ -> internal "assoc_positional");
      ];
  prod ~name:"assoc_named" ~lhs:"assoc" ~rhs:[ "expr"; "=>"; "expr" ]
    ~rules:
      [
        rule ~target:(0, "ASSOCS") ~deps:[ (1, "LEF"); (3, "LEF") ] (function
          | [ f; a ] ->
            let f = as_lef f and a = as_lef a in
            let line = match f with t :: _ -> t.Lef.l_line | [] -> 0 in
            Assocs [ { a_formal = Some f; a_actual = `Lef a; a_line = line } ]
          | _ -> internal "assoc_named");
      ];
  prod ~name:"assoc_named_open" ~lhs:"assoc" ~rhs:[ "expr"; "=>"; "open" ]
    ~rules:
      [
        rule ~target:(0, "ASSOCS") ~deps:[ (1, "LEF") ] (function
          | [ f ] ->
            let f = as_lef f in
            let line = match f with t :: _ -> t.Lef.l_line | [] -> 0 in
            Assocs [ { a_formal = Some f; a_actual = `Open; a_line = line } ]
          | _ -> internal "assoc_named_open");
      ];
  prod ~name:"assoc_open" ~lhs:"assoc" ~rhs:[ "open" ]
    ~rules:
      [
        rule ~target:(0, "ASSOCS") ~deps:[ (1, "LINE") ] (function
          | [ line ] -> Assocs [ { a_formal = None; a_actual = `Open; a_line = as_int line } ]
          | _ -> internal "assoc_open");
      ];

  (* block *)
  prod ~name:"conc_block" ~lhs:"conc"
    ~rhs:
      [
        "ID"; ":"; "block"; "guard_opt"; "decl_items"; "begin"; "concs"; "end"; "block";
        "opt_id"; ";";
      ]
    ~rules:
      ([
         rule ~target:(5, "CTX") ~deps:[] (fun _ -> Str "block");
         (* a guarded block makes GUARD visible *)
         rule ~target:(5, "ENV") ~deps:[ (0, "ENV"); (4, "OGUARD") ] (function
           | [ env; g ] -> (
             match as_opt g with
             | Some _ ->
               Env
                 (Env.extend (as_env env) "GUARD"
                    (Denot.Dobject
                       {
                         name = "GUARD";
                         cls = Denot.Csignal;
                         ty = Std.boolean;
                         mode = None;
                         slot = Denot.Sl_signal Kir.Sig_guard;
                       }))
             | None -> Env (as_env env))
           | _ -> internal "block env");
         rule ~target:(7, "ENV") ~deps:[ (5, "ENV"); (5, "OUT") ] (function
           | [ env; out ] -> Env (Env.extend_many (as_env env) (as_out out).o_binds)
           | _ -> internal "block concs env");
         rule ~target:(7, "CTX") ~deps:[] (fun _ -> Str "block");
         rule ~target:(7, "SIGBASE") ~deps:[ (0, "SIGBASE"); (5, "OUT") ] (function
           | [ base; out ] -> Int (as_int base + List.length (as_out out).o_signals)
           | _ -> internal "block concs sigbase");
       ]
      @ conc_rules
          ~deps:[ (0, "LEVEL"); (1, "VAL"); (1, "LINE"); (4, "OGUARD"); (5, "OUT"); (7, "OUT"); (7, "CONCS") ]
          ~msg_deps:[ 4; 5; 7 ]
          (function
            | [ level; lbl; line; guard; decl_out; conc_out; concs ] ->
              let (blk_concs, out), msgs =
                Conc_sem.block ~level:(as_int level) ~line:(as_int line)
                  ~label:(tok_id lbl)
                  ~guard:(Option.map as_lef (as_opt guard))
                  ~out:(out_append (as_out decl_out) (as_out conc_out))
                  ~body:(as_concs concs)
              in
              (blk_concs, out, msgs)
            | _ -> internal "conc_block"));
  (* concurrent procedure call: a process sensitive to the signals its
     arguments read (LRM 9.3) *)
  prod ~name:"conc_call" ~lhs:"conc" ~rhs:[ "name"; ";" ]
    ~rules:
      (conc_rules ~deps:[ (0, "LEVEL"); (1, "LEF"); (2, "LINE") ] ~msg_deps:[ 1 ]
         (function
           | [ level; name_lef; line ] ->
             let stmts, msgs =
               Stmt_sem.build_proc_call ~level:(as_int level) ~line:(as_int line)
                 (as_lef name_lef)
             in
             let sens =
               List.concat_map
                 (fun st ->
                   match st with
                   | Kir.Scall (_, args) ->
                     Kir_util.signals_read_exprs
                       (List.filter_map
                          (fun (a : Kir.call_arg) ->
                            match a.Kir.ca_mode with
                            | Kir.Arg_in | Kir.Arg_inout -> Some a.Kir.ca_expr
                            | Kir.Arg_out -> None)
                          args)
                   | _ -> [])
                 stmts
             in
             ( (if stmts = [] then []
                else
                  [
                    Kir.C_process
                      {
                        Kir.proc_label = Conc_sem.fresh_label "call";
                        proc_sensitivity = sens;
                        proc_locals = [];
                        proc_body = stmts;
                        proc_postponed_wait = true;
                      };
                  ]),
               out_empty,
               msgs )
           | _ -> internal "conc_call"));

  (* for-generate: the paper lists generate among VHDL's hardware constructs;
     expansion happens at elaboration with the parameter as a unit constant *)
  prod ~name:"conc_generate" ~lhs:"conc"
    ~rhs:
      [
        "ID"; ":"; "for"; "ID"; "in"; "discrete_range"; "generate"; "concs"; "end";
        "generate"; ";";
      ]
    ~rules:
      ([
         rule ~target:(8, "ENV")
           ~deps:[ (0, "ENV"); (0, "LEVEL"); (4, "VAL"); (4, "LINE"); (6, "RNG") ]
           (function
             | [ env; level; var_v; line; rng ] ->
               let var = tok_id var_v in
               let ty =
                 Stmt_sem.for_var_type ~level:(as_int level) ~line:(as_int line)
                   ~range:(as_rng rng)
               in
               Env
                 (Env.extend (as_env env) var
                    (Denot.Dobject
                       {
                         name = var;
                         cls = Denot.Cconstant;
                         ty;
                         mode = None;
                         slot = Denot.Sl_unit_const var;
                       }))
             | _ -> internal "generate env");
       ]
      @ conc_rules
          ~deps:
            [
              (0, "LEVEL"); (1, "VAL"); (1, "LINE"); (4, "VAL"); (6, "RNG"); (8, "CONCS");
              (8, "OUT");
            ]
          ~msg_deps:[ 6; 8 ]
          (function
            | [ level; lbl_v; line; var_v; rng; concs; out ] ->
              let level = as_int level and line = as_int line in
              let range, msgs =
                match as_rng rng with
                | `Bounds (lo_lef, d, hi_lef) ->
                  let lo = Expr_eval.eval ~level ~line lo_lef in
                  let hi = Expr_eval.eval ~level ~line hi_lef in
                  ((lo.x_code, d, hi.x_code), lo.x_msgs @ hi.x_msgs)
                | `Lef lef ->
                  let r, _, m = Expr_eval.eval_range ~level ~line lef in
                  (r, m)
              in
              let body = as_concs concs in
              let msgs =
                if
                  List.exists
                    (function Kir.C_block _ -> true | _ -> false)
                    body
                then
                  msgs
                  @ [
                      Diag.error ~line
                        "blocks inside generate statements are not supported";
                    ]
                else msgs
              in
              ( [
                  Kir.C_generate
                    {
                      gen_label = tok_id lbl_v;
                      gen_var = tok_id var_v;
                      gen_range = range;
                      gen_body = body;
                    };
                ],
                { (as_out out) with o_binds = []; o_locals = []; o_signals = [] },
                msgs )
            | _ -> internal "conc_generate"));

  (* if-generate: the body is elaborated when the (static) condition holds *)
  prod ~name:"conc_if_generate" ~lhs:"conc"
    ~rhs:[ "ID"; ":"; "if"; "expr"; "generate"; "concs"; "end"; "generate"; ";" ]
    ~rules:
      (conc_rules
         ~deps:[ (0, "LEVEL"); (1, "VAL"); (1, "LINE"); (4, "LEF"); (6, "CONCS"); (6, "OUT") ]
         ~msg_deps:[ 4; 6 ]
         (function
           | [ level; lbl_v; line; cond; concs; out ] ->
             let c, msgs =
               Stmt_sem.boolean_cond ~level:(as_int level) ~line:(as_int line) (as_lef cond)
             in
             let body = as_concs concs in
             let msgs =
               if List.exists (function Kir.C_block _ -> true | _ -> false) body then
                 msgs
                 @ [
                     Diag.error ~line:(as_int line)
                       "blocks inside generate statements are not supported";
                   ]
               else msgs
             in
             ( [ Kir.C_if_generate { ig_label = tok_id lbl_v; ig_cond = c; ig_body = body } ],
               { (as_out out) with o_binds = []; o_locals = []; o_signals = [] },
               msgs )
           | _ -> internal "conc_if_generate"));

  prod ~name:"guard_none" ~lhs:"guard_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OGUARD") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"guard_some" ~lhs:"guard_opt" ~rhs:[ "("; "expr"; ")" ]
    ~rules:
      [
        rule ~target:(0, "OGUARD") ~deps:[ (2, "LEF") ] (function
          | [ l ] -> Opt (Some (Lef (as_lef l)))
          | _ -> internal "guard_some");
      ]
