(** The expression attribute grammar (paper §4.1).

    Parses LEF token lists — identifiers pre-resolved into classified tokens
    by the principal AG — so "very different phrase structure can be built
    for two identical pieces of VHDL source text, depending on to what the
    names in that source text are bound".

    Attributes:
    - CANDS (synthesized, copy class): overload candidate sets;
    - MSGS (synthesized, merge class): diagnostics;
    - ITEMS / CHS: aggregate and argument structure;
    - HEAD: the classified head token of a name, for overload resolution;
    - XLEVEL (inherited, copy class): subprogram nesting level of the
      occurrence, supplied by [exprEval] as an argument (paper: "other
      arguments are the nesting level at which this expression occurs"). *)

module B = Grammar.Builder
open Pval

let rule = B.rule
let copy = B.copy

(* projections of the hidden RES pair: (CANDS, extra MSGS) *)
let res_pair (cands, msgs) = Pair (Cands cands, Msgs msgs)

let cands_of_res = function
  | [ v ] -> fst (as_pair v)
  | _ -> internal "cands_of_res"

let msgs_of_res vs =
  (* first dep is RES; the rest are children MSGS *)
  match vs with
  | res :: children ->
    let _, m = as_pair res in
    Msgs (List.concat_map as_msgs children @ as_msgs m)
  | [] -> internal "msgs_of_res"

(* a production whose CANDS/MSGS come from a helper returning a pair;
   [msg_deps] lists the children whose MSGS must still be merged in *)
let helper_rules ~deps ~msg_deps f =
  [
    rule ~target:(0, "RES") ~deps (fun vs -> res_pair (f vs));
    rule ~target:(0, "CANDS") ~deps:[ (0, "RES") ] cands_of_res;
    rule ~target:(0, "MSGS")
      ~deps:((0, "RES") :: List.map (fun p -> (p, "MSGS")) msg_deps)
      msgs_of_res;
  ]

let line_of_ltok v = (as_ltok v).Lef.l_line

let build () =
  let b = B.create () in
  List.iter (fun t -> ignore (B.terminal b t)) Lef.all_terminals;
  let nonterminals =
    [ "xgoal"; "xexpr"; "relation"; "simple"; "xterm"; "factor"; "primary";
      "pname"; "items"; "item"; "chlist"; "choice" ]
  in
  List.iter (fun n -> ignore (B.nonterminal b n)) nonterminals;
  (* classes *)
  B.attr_class b ~name:"MSGS" ~dir:Grammar.Synthesized
    ~default:(Grammar.Merge ((fun a c -> Msgs (as_msgs a @ as_msgs c)), Msgs []));
  B.attr_class b ~name:"CANDS" ~dir:Grammar.Synthesized ~default:Grammar.Copy;
  B.attr_class b ~name:"XLEVEL" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  List.iter
    (fun sym ->
      B.attr_member b ~sym ~cls:"MSGS";
      B.attr_member b ~sym ~cls:"XLEVEL")
    nonterminals;
  List.iter
    (fun sym -> B.attr_member b ~sym ~cls:"CANDS")
    [ "xgoal"; "xexpr"; "relation"; "simple"; "xterm"; "factor"; "primary"; "pname" ];
  (* hidden helper attribute *)
  List.iter
    (fun sym -> B.attr b ~sym ~name:"RES" ~dir:Grammar.Synthesized)
    [ "xexpr"; "relation"; "simple"; "xterm"; "factor"; "primary"; "pname" ];
  B.attr b ~sym:"pname" ~name:"HEAD" ~dir:Grammar.Synthesized;
  B.attr b ~sym:"items" ~name:"ITEMS" ~dir:Grammar.Synthesized;
  B.attr b ~sym:"item" ~name:"ITEM" ~dir:Grammar.Synthesized;
  B.attr b ~sym:"chlist" ~name:"CHS" ~dir:Grammar.Synthesized;
  B.attr b ~sym:"choice" ~name:"CH" ~dir:Grammar.Synthesized;

  let prod = B.production b in
  let no_res sym =
    (* productions relying on the implicit CANDS copy still must define RES
       (it has no class); give it a dummy *)
    rule ~target:(0, "RES") ~deps:[] (fun _ -> ignore sym; Unit)
  in

  (* ---- goal ---- *)
  prod ~name:"xgoal" ~lhs:"xgoal" ~rhs:[ "xexpr" ] ~rules:[];

  (* ---- binary operator levels ---- *)
  let binop_prod ~name ~lhs ~rhs ~op_pos ~l_pos ~r_pos =
    prod ~name ~lhs ~rhs
      ~rules:
        (helper_rules
           ~deps:[ (l_pos, "CANDS"); (op_pos, "VAL"); (r_pos, "CANDS") ]
           ~msg_deps:[ l_pos; r_pos ]
           (function
             | [ l; opv; r ] ->
               let tok = as_ltok opv in
               let op, user =
                 match tok.Lef.l_kind with
                 | Lef.Kop o -> (o, [])
                 | Lef.Kop_user { op; cands } -> (op, cands)
                 | _ -> internal "operator token expected"
               in
               Expr_sem.apply_binop ~line:tok.Lef.l_line ~user op (as_cands l)
                 (as_cands r)
             | _ -> internal "binop_prod"))
  in
  prod ~name:"xexpr_rel" ~lhs:"xexpr" ~rhs:[ "relation" ] ~rules:[ no_res "xexpr" ];
  binop_prod ~name:"xexpr_logop" ~lhs:"xexpr" ~rhs:[ "xexpr"; "LOGOP"; "relation" ]
    ~op_pos:2 ~l_pos:1 ~r_pos:3;
  prod ~name:"relation_simple" ~lhs:"relation" ~rhs:[ "simple" ] ~rules:[ no_res "relation" ];
  binop_prod ~name:"relation_rel" ~lhs:"relation" ~rhs:[ "simple"; "RELOP"; "simple" ]
    ~op_pos:2 ~l_pos:1 ~r_pos:3;
  prod ~name:"simple_term" ~lhs:"simple" ~rhs:[ "xterm" ] ~rules:[ no_res "simple" ];
  prod ~name:"simple_sign" ~lhs:"simple" ~rhs:[ "ADDOP"; "xterm" ]
    ~rules:
      (helper_rules ~deps:[ (1, "VAL"); (2, "CANDS") ] ~msg_deps:[ 2 ] (function
        | [ opv; c ] ->
          let tok = as_ltok opv in
          let op, user =
            match tok.Lef.l_kind with
            | Lef.Kop o -> (o, [])
            | Lef.Kop_user { op; cands } -> (op, cands)
            | _ -> internal "sign token"
          in
          if op = "&" then
            ([ Expr_sem.error_cand ], [ Diag.error ~line:tok.Lef.l_line "misplaced operator &" ])
          else Expr_sem.apply_unop ~line:tok.Lef.l_line ~user op (as_cands c)
        | _ -> internal "simple_sign"));
  binop_prod ~name:"simple_add" ~lhs:"simple" ~rhs:[ "simple"; "ADDOP"; "xterm" ]
    ~op_pos:2 ~l_pos:1 ~r_pos:3;
  prod ~name:"term_factor" ~lhs:"xterm" ~rhs:[ "factor" ] ~rules:[ no_res "xterm" ];
  binop_prod ~name:"term_mul" ~lhs:"xterm" ~rhs:[ "xterm"; "MULOP"; "factor" ]
    ~op_pos:2 ~l_pos:1 ~r_pos:3;
  prod ~name:"factor_primary" ~lhs:"factor" ~rhs:[ "primary" ] ~rules:[ no_res "factor" ];
  binop_prod ~name:"factor_exp" ~lhs:"factor" ~rhs:[ "primary"; "EXPOP"; "primary" ]
    ~op_pos:2 ~l_pos:1 ~r_pos:3;
  let unop_prod ~name ~kw ~op =
    prod ~name ~lhs:"factor" ~rhs:[ kw; "primary" ]
      ~rules:
        (helper_rules ~deps:[ (1, "VAL"); (2, "CANDS") ] ~msg_deps:[ 2 ] (function
          | [ opv; c ] ->
            let user =
              match (as_ltok opv).Lef.l_kind with
              | Lef.Kop_user { cands; _ } -> cands
              | _ -> []
            in
            Expr_sem.apply_unop ~line:(line_of_ltok opv) ~user op (as_cands c)
          | _ -> internal "unop_prod"))
  in
  unop_prod ~name:"factor_abs" ~kw:"ABS" ~op:"abs";
  unop_prod ~name:"factor_not" ~kw:"NOT" ~op:"not";

  (* ---- primaries ---- *)
  prod ~name:"primary_name" ~lhs:"primary" ~rhs:[ "pname" ]
    ~rules:
      (helper_rules ~deps:[ (1, "CANDS"); (1, "HEAD") ] ~msg_deps:[ 1 ] (function
        | [ c; head ] -> (
          match as_opt head with
          | Some (Ltok { Lef.l_kind = Lef.Kfunc sigs | Lef.Kproc sigs; l_line }) ->
            Expr_sem.func_cands ~line:l_line sigs
          | _ -> (as_cands c, []))
        | _ -> internal "primary_name"));
  let literal_prod term =
    prod ~name:("primary_" ^ term) ~lhs:"primary" ~rhs:[ term ]
      ~rules:
        [
          no_res "primary";
          rule ~target:(0, "CANDS") ~deps:[ (1, "VAL") ] (function
            | [ v ] -> Cands (Expr_sem.literal_cands (as_ltok v))
            | _ -> internal "literal");
        ]
  in
  List.iter literal_prod [ "LINT"; "LREAL"; "LPHYS"; "LSTR"; "LBITSTR"; "ENUMLIT" ];
  prod ~name:"primary_attrval" ~lhs:"primary" ~rhs:[ "ATTRVAL" ]
    ~rules:
      [
        no_res "primary";
        rule ~target:(0, "CANDS") ~deps:[ (1, "VAL") ] (function
          | [ v ] -> Cands (Expr_sem.head_cands ~level:0 (as_ltok v))
          | _ -> internal "attrval");
      ];
  (* parenthesized expression or aggregate *)
  prod ~name:"primary_paren" ~lhs:"primary" ~rhs:[ "("; "items"; ")" ]
    ~rules:
      [
        no_res "primary";
        rule ~target:(0, "CANDS") ~deps:[ (2, "ITEMS") ] (function
          | [ items ] -> (
            match as_aitems items with
            | [ Ipos cands ] -> Cands cands (* plain parentheses *)
            | items -> Cands [ Cagg items ])
          | _ -> internal "paren");
      ];
  (* type conversion *)
  prod ~name:"primary_conversion" ~lhs:"primary" ~rhs:[ "TYPE"; "("; "items"; ")" ]
    ~rules:
      (helper_rules ~deps:[ (1, "VAL"); (3, "ITEMS") ] ~msg_deps:[ 3 ] (function
        | [ tyv; items ] -> (
          let tok = as_ltok tyv in
          let ty =
            match tok.Lef.l_kind with
            | Lef.Ktype t -> t
            | _ -> internal "TYPE token"
          in
          match as_aitems items with
          | [ Ipos cands ] -> Expr_sem.conversion ~line:tok.Lef.l_line ty cands
          | _ ->
            ( [ Expr_sem.error_cand ],
              [ Diag.error ~line:tok.Lef.l_line "type conversion takes a single expression" ] ))
        | _ -> internal "conversion"));
  (* qualified expression *)
  prod ~name:"primary_qualified" ~lhs:"primary" ~rhs:[ "TYPE"; "'"; "("; "items"; ")" ]
    ~rules:
      (helper_rules ~deps:[ (1, "VAL"); (4, "ITEMS") ] ~msg_deps:[ 4 ] (function
        | [ tyv; items ] -> (
          let tok = as_ltok tyv in
          let ty =
            match tok.Lef.l_kind with
            | Lef.Ktype t -> t
            | _ -> internal "TYPE token"
          in
          match as_aitems items with
          | [ Ipos cands ] -> Expr_sem.qualified ~line:tok.Lef.l_line ty cands
          | items -> Expr_sem.qualified ~line:tok.Lef.l_line ty [ Cagg items ])
        | _ -> internal "qualified"));
  (* allocators: new T, new T'(e) — the result adapts to any access type
     designating T (resolved by the expected type, like null) *)
  prod ~name:"primary_new" ~lhs:"primary" ~rhs:[ "NEW"; "TYPE" ]
    ~rules:
      (helper_rules ~deps:[ (2, "VAL") ] ~msg_deps:[] (function
        | [ tyv ] -> (
          match (as_ltok tyv).Lef.l_kind with
          | Lef.Ktype t ->
            ( [
                Cv
                  {
                    ty = Expr_sem.anon_access_ty t;
                    code = Kir.Enew (t, None);
                    static = None;
                  };
              ],
              [] )
          | _ -> internal "TYPE token")
        | _ -> internal "primary_new"));
  prod ~name:"primary_new_init" ~lhs:"primary"
    ~rhs:[ "NEW"; "TYPE"; "'"; "("; "items"; ")" ]
    ~rules:
      (helper_rules ~deps:[ (2, "VAL"); (5, "ITEMS") ] ~msg_deps:[ 5 ] (function
        | [ tyv; items ] -> (
          let tok = as_ltok tyv in
          match tok.Lef.l_kind with
          | Lef.Ktype t -> (
            let qcands, msgs =
              match as_aitems items with
              | [ Ipos cands ] -> Expr_sem.qualified ~line:tok.Lef.l_line t cands
              | its -> Expr_sem.qualified ~line:tok.Lef.l_line t [ Cagg its ]
            in
            match qcands with
            | Cv { code; _ } :: _ ->
              ( [
                  Cv
                    {
                      ty = Expr_sem.anon_access_ty t;
                      code = Kir.Enew (t, Some code);
                      static = None;
                    };
                ],
                msgs )
            | _ -> ([ Expr_sem.error_cand ], msgs))
          | _ -> internal "TYPE token")
        | _ -> internal "primary_new_init"));
  (* the null access literal *)
  prod ~name:"primary_null" ~lhs:"primary" ~rhs:[ "LNULL" ]
    ~rules:
      (helper_rules ~deps:[] ~msg_deps:[] (function
        | [] -> ([ Expr_sem.null_cand ], [])
        | _ -> internal "primary_null"));

  (* type attribute: INTEGER'LOW, T'RANGE, ... *)
  prod ~name:"primary_type_attr" ~lhs:"primary" ~rhs:[ "TYPE"; "'"; "ATTR" ]
    ~rules:
      (helper_rules ~deps:[ (1, "VAL"); (3, "VAL") ] ~msg_deps:[] (function
        | [ tyv; attrv ] -> (
          let ty =
            match (as_ltok tyv).Lef.l_kind with
            | Lef.Ktype t -> t
            | _ -> internal "TYPE token"
          in
          let atok = as_ltok attrv in
          match atok.Lef.l_kind with
          | Lef.Kattr a ->
            if Expr_sem.type_attr_is_function a then
              ( [ Expr_sem.error_cand ],
                [ Diag.error ~line:atok.Lef.l_line "attribute '%s requires an argument" a ] )
            else Expr_sem.scalar_type_attr ~line:atok.Lef.l_line ty a
          | _ -> internal "ATTR token")
        | _ -> internal "type_attr"));
  (* attribute function: T'POS(x), T'VAL(n), T'SUCC(x)... *)
  prod ~name:"primary_type_attr_fn" ~lhs:"primary"
    ~rhs:[ "TYPE"; "'"; "ATTR"; "("; "items"; ")" ]
    ~rules:
      (helper_rules ~deps:[ (1, "VAL"); (3, "VAL"); (5, "ITEMS") ] ~msg_deps:[ 5 ] (function
        | [ tyv; attrv; items ] -> (
          let ty =
            match (as_ltok tyv).Lef.l_kind with
            | Lef.Ktype t -> t
            | _ -> internal "TYPE token"
          in
          let atok = as_ltok attrv in
          match atok.Lef.l_kind with
          | Lef.Kattr a ->
            Expr_sem.apply_type_attr_args ~line:atok.Lef.l_line ty a (as_aitems items)
          | _ -> internal "ATTR token")
        | _ -> internal "type_attr_fn"));

  (* ---- names ---- *)
  let head_prod term =
    prod ~name:("pname_" ^ term) ~lhs:"pname" ~rhs:[ term ]
      ~rules:
        [
          no_res "pname";
          rule ~target:(0, "CANDS") ~deps:[ (1, "VAL"); (0, "XLEVEL") ] (function
            | [ v; lvl ] -> Cands (Expr_sem.head_cands ~level:(as_int lvl) (as_ltok v))
            | _ -> internal "head");
          rule ~target:(0, "HEAD") ~deps:[ (1, "VAL") ] (function
            | [ v ] -> Opt (Some v)
            | _ -> internal "head2");
        ]
  in
  List.iter head_prod [ "VAR"; "SIG"; "GEN"; "CONSTV"; "FUNC"; "PROC" ];
  prod ~name:"pname_args" ~lhs:"pname" ~rhs:[ "pname"; "("; "items"; ")" ]
    ~rules:
      (rule ~target:(0, "HEAD") ~deps:[] (fun _ -> Opt None)
      :: helper_rules
           ~deps:[ (1, "HEAD"); (1, "CANDS"); (2, "VAL"); (3, "ITEMS") ]
           ~msg_deps:[ 1; 3 ]
           (function
             | [ head; cands; lp; items ] ->
               let head_tok =
                 match as_opt head with
                 | Some (Ltok t) -> Some t
                 | _ -> None
               in
               Expr_sem.apply_args ~line:(line_of_ltok lp) head_tok (as_cands cands)
                 (as_aitems items)
             | _ -> internal "pname_args"));
  prod ~name:"pname_field" ~lhs:"pname" ~rhs:[ "pname"; "."; "IDENT" ]
    ~rules:
      (rule ~target:(0, "HEAD") ~deps:[] (fun _ -> Opt None)
      :: helper_rules ~deps:[ (1, "CANDS"); (3, "VAL") ] ~msg_deps:[ 1 ] (function
           | [ cands; fv ] -> (
             let tok = as_ltok fv in
             match tok.Lef.l_kind with
             | Lef.Kident f -> Expr_sem.select_field ~line:tok.Lef.l_line (as_cands cands) f
             | _ -> internal "field token")
           | _ -> internal "pname_field"));
  (* dereference: p.all *)
  prod ~name:"pname_deref" ~lhs:"pname" ~rhs:[ "pname"; "."; "all" ]
    ~rules:
      (rule ~target:(0, "HEAD") ~deps:[] (fun _ -> Opt None)
      :: helper_rules ~deps:[ (1, "CANDS"); (2, "LINE") ] ~msg_deps:[ 1 ] (function
           | [ cands; line ] -> Expr_sem.deref ~line:(as_int line) (as_cands cands)
           | _ -> internal "pname_deref"));
  prod ~name:"pname_attr" ~lhs:"pname" ~rhs:[ "pname"; "'"; "ATTR" ]
    ~rules:
      (rule ~target:(0, "HEAD") ~deps:[] (fun _ -> Opt None)
      :: helper_rules ~deps:[ (1, "CANDS"); (3, "VAL") ] ~msg_deps:[ 1 ] (function
           | [ cands; av ] -> (
             let tok = as_ltok av in
             match tok.Lef.l_kind with
             | Lef.Kattr a -> Expr_sem.apply_name_attr ~line:tok.Lef.l_line (as_cands cands) a
             | _ -> internal "attr token")
           | _ -> internal "pname_attr"));

  (* ---- aggregate / argument items ---- *)
  prod ~name:"items_one" ~lhs:"items" ~rhs:[ "item" ]
    ~rules:
      [
        rule ~target:(0, "ITEMS") ~deps:[ (1, "ITEM") ] (function
          | [ i ] -> Aitems (as_aitems i)
          | _ -> internal "items_one");
      ];
  prod ~name:"items_more" ~lhs:"items" ~rhs:[ "items"; ","; "item" ]
    ~rules:
      [
        rule ~target:(0, "ITEMS") ~deps:[ (1, "ITEMS"); (3, "ITEM") ] (function
          | [ l; i ] -> Aitems (as_aitems l @ as_aitems i)
          | _ -> internal "items_more");
      ];
  prod ~name:"item_expr" ~lhs:"item" ~rhs:[ "xexpr" ]
    ~rules:
      [
        rule ~target:(0, "ITEM") ~deps:[ (1, "CANDS") ] (function
          | [ c ] -> Aitems [ Ipos (as_cands c) ]
          | _ -> internal "item_expr");
      ];
  let item_range ~name ~dir_term ~dir =
    prod ~name ~lhs:"item" ~rhs:[ "simple"; dir_term; "simple" ]
      ~rules:
        [
          rule ~target:(0, "ITEM") ~deps:[ (1, "CANDS"); (3, "CANDS") ] (function
            | [ lo; hi ] -> (
              (* a positional range item: used by slices; encode as a Crng
                 candidate built from the extreme expressions *)
              let pick cands =
                List.find_map
                  (function Cv { code; _ } -> Some code | _ -> None)
                  (as_cands cands)
              in
              match (pick lo, pick hi) with
              | Some l, Some h -> Aitems [ Ipos [ Crng ((l, dir, h), None) ] ]
              | _ -> Aitems [ Ipos [ Expr_sem.error_cand ] ])
            | _ -> internal "item_range");
        ]
  in
  item_range ~name:"item_range_to" ~dir_term:"to" ~dir:Types.To;
  item_range ~name:"item_range_downto" ~dir_term:"downto" ~dir:Types.Downto;
  prod ~name:"item_named" ~lhs:"item" ~rhs:[ "chlist"; "=>"; "xexpr" ]
    ~rules:
      [
        rule ~target:(0, "ITEM") ~deps:[ (1, "CHS"); (3, "CANDS") ] (function
          | [ chs; c ] -> Aitems [ Inamed (as_achoices chs, as_cands c) ]
          | _ -> internal "item_named");
      ];
  prod ~name:"item_named_open" ~lhs:"item" ~rhs:[ "chlist"; "=>"; "open" ]
    ~rules:
      [
        rule ~target:(0, "ITEM") ~deps:[ (1, "CHS") ] (function
          | [ chs ] -> Aitems [ Inamed (as_achoices chs, []) ]
          | _ -> internal "item_named_open");
      ];
  prod ~name:"chlist_one" ~lhs:"chlist" ~rhs:[ "choice" ]
    ~rules:
      [
        rule ~target:(0, "CHS") ~deps:[ (1, "CH") ] (function
          | [ c ] -> Achoices (as_achoices c)
          | _ -> internal "chlist_one");
      ];
  prod ~name:"chlist_more" ~lhs:"chlist" ~rhs:[ "chlist"; "|"; "choice" ]
    ~rules:
      [
        rule ~target:(0, "CHS") ~deps:[ (1, "CHS"); (3, "CH") ] (function
          | [ l; c ] -> Achoices (as_achoices l @ as_achoices c)
          | _ -> internal "chlist_more");
      ];
  prod ~name:"choice_expr" ~lhs:"choice" ~rhs:[ "simple" ]
    ~rules:
      [
        rule ~target:(0, "CH") ~deps:[ (1, "CANDS") ] (function
          | [ c ] -> Achoices [ Cexpr (as_cands c) ]
          | _ -> internal "choice_expr");
      ];
  let choice_range ~name ~dir_term ~dir =
    prod ~name ~lhs:"choice" ~rhs:[ "simple"; dir_term; "simple" ]
      ~rules:
        [
          rule ~target:(0, "CH") ~deps:[ (1, "CANDS"); (3, "CANDS") ] (function
            | [ lo; hi ] -> Achoices [ Cchoice_range (as_cands lo, dir, as_cands hi) ]
            | _ -> internal "choice_range");
        ]
  in
  choice_range ~name:"choice_range_to" ~dir_term:"to" ~dir:Types.To;
  choice_range ~name:"choice_range_downto" ~dir_term:"downto" ~dir:Types.Downto;
  prod ~name:"choice_others" ~lhs:"choice" ~rhs:[ "others" ]
    ~rules:[ rule ~target:(0, "CH") ~deps:[] (fun _ -> Achoices [ Cothers ]) ];
  prod ~name:"choice_ident" ~lhs:"choice" ~rhs:[ "IDENT" ]
    ~rules:
      [
        rule ~target:(0, "CH") ~deps:[ (1, "VAL") ] (function
          | [ v ] -> (
            match (as_ltok v).Lef.l_kind with
            | Lef.Kident s -> Achoices [ Cident s ]
            | _ -> internal "choice ident token")
          | _ -> internal "choice_ident");
      ];
  B.freeze b ~start:"xgoal"
