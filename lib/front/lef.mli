(** LEF — the intermediate language of cascaded evaluation (paper §4.1).

    "LEF consists of a flat list of tokens with no other structure imposed
    on them...  the symbol table is an attribute of the principal AG, not of
    the expression AG, and it is used to resolve identifiers so that ID is
    not a token of LEF; instead there are distinct tokens for variable,
    type, subprogram, attribute, enum_literal, etc."

    Each token carries the full denotation information through the
    token-value mechanism, so the expression AG never needs the symbol
    table. *)

type tok = {
  l_kind : kind;
  l_line : int;
}

and kind =
  | Kvar of { name : string; ty : Types.t; level : int; index : int }
  | Ksig of { name : string; ty : Types.t; sref : Kir.sig_ref; mode : Kir.arg_mode option }
  | Kconst_val of { name : string; ty : Types.t; value : Value.t }
  | Kgeneric of { name : string; ty : Types.t; index : int }
  | Kunitconst of { name : string; ty : Types.t }
      (** architecture constant whose value arrives at elaboration *)
  | Ktype of Types.t  (** also subtypes: the constraint rides along *)
  | Kfunc of Denot.subprog_sig list  (** overload candidate set *)
  | Kproc of Denot.subprog_sig list
  | Kenum of (Types.t * int * string) list  (** candidate (type, pos, image) *)
  | Kattrval of { value : Value.t; ty : Types.t }
      (** user-defined attribute, resolved *)
  | Kint of int
  | Kreal of float
  | Kphys of { value : int; ty : Types.t }  (** physical literal, primary units *)
  | Kstr of string
  | Kbitstr of string
  | Kident of string  (** unresolved: formal names, record-field choices *)
  | Kattr of string  (** attribute designator after the tick *)
  | Kop of string  (** operator, lower case: and, or, =, <=, +, &, mod, ... *)
  | Kop_user of { op : string; cands : Denot.subprog_sig list }
      (** operator with user-defined overloads visible at this point; the
          candidate set rides along like [Kfunc]'s, so the expression AG can
          consider them without the symbol table *)
  | Knew  (** allocator keyword in an expression *)
  | Knull  (** the null access literal *)
  | Kpunct of string  (** ( ) , => | ' . to downto others open all *)
  | Kscope of scope
      (** transient prefix during selected-name resolution in the principal
          AG; never legitimate inside a finished expression *)

and scope =
  | Slib of string
  | Sunit of { library : string; unit_name : string }

val terminal_name : tok -> string
(** Terminal-symbol name in the expression grammar.  Operators collapse to
    precedence classes (LOGOP, RELOP, ...); the op itself rides in the
    token value. *)

val all_terminals : string list
(** All terminal names of the expression grammar, including LEOF. *)

val punct : line:int -> string -> tok
val op : line:int -> string -> tok

val operator_symbols : string list
(** The symbols that may name an operator function (LRM 2.1: a string
    literal used as a subprogram designator must be an operator symbol). *)

val operator_key : string -> string
(** Environment key an operator function is bound under: the quoted,
    lower-case symbol, so it can never collide with an identifier. *)

val describe : tok -> string
(** Human-readable form for diagnostics and the cascade demo. *)

val content_key : keyspace:string -> tok list -> string option
(** Content key of a token list for the LEF→parse-tree memo cache: two
    lists share a key iff they are structurally equal — terminal kinds,
    payloads (denotations, types, literal values), and source lines all
    participate, so identical terminal sequences with different payloads or
    lines get different keys.  [keyspace] segregates caches that must not
    alias.  [None] means "do not cache" (a payload resisted
    serialization). *)
