(** Principal AG, expression region.

    "The principal AG does not contain semantic rules for most of the
    aspects of compiling expressions; instead it merely synthesizes a
    simplified list of tokens" — these productions give expressions their
    natural phrase structure and emit LEF.  Identifier classification
    consults ENV here; everything else is token plumbing, mostly via the
    implicit merge rules of the LEF class. *)

open Pval
open Gram_util
module B = Grammar.Builder

let nonterminals =
  [
    "expr"; "relation"; "simpleexpr"; "term"; "factor"; "primary"; "name";
    "agg_items"; "agg_item"; "chlist"; "chitem"; "logop"; "relop"; "addop";
    "mulop"; "sign"; "direction"; "name_list"; "discrete_range"; "expr_opt";
  ]

(* hidden-pair rule set for name productions: (LEF, BASE, MSGS) *)
let name_rules ~deps ~msg_deps f =
  [
    rule ~target:(0, "SRES") ~deps (fun vs ->
        let lef, base, msgs = f vs in
        Pair (Pair (Lef lef, Str base), Msgs msgs));
    rule ~target:(0, "LEF") ~deps:[ (0, "SRES") ] (function
      | [ v ] -> fst (as_pair (fst (as_pair v)))
      | _ -> internal "name LEF");
    rule ~target:(0, "BASE") ~deps:[ (0, "SRES") ] (function
      | [ v ] -> snd (as_pair (fst (as_pair v)))
      | _ -> internal "name BASE");
    rule ~target:(0, "MSGS")
      ~deps:((0, "SRES") :: List.map (fun p -> (p, "MSGS")) msg_deps)
      (fun vs ->
        match vs with
        | res :: children ->
          let _, m = as_pair res in
          Msgs (List.concat_map as_msgs children @ as_msgs m)
        | [] -> internal "name MSGS");
  ]

(* plain LEF+MSGS hidden pair (primary with classification) *)
let lef_rules ~deps ~msg_deps f =
  [
    rule ~target:(0, "SRES") ~deps (fun vs ->
        let lef, msgs = f vs in
        Pair (Lef lef, Msgs msgs));
    rule ~target:(0, "LEF") ~deps:[ (0, "SRES") ] fst_of;
    rule ~target:(0, "MSGS")
      ~deps:((0, "SRES") :: List.map (fun p -> (p, "MSGS")) msg_deps)
      snd_plus_msgs;
  ]

let dummy_sres = rule ~target:(0, "SRES") ~deps:[] (fun _ -> Unit)

(* explicit LEF rule splicing terminal punctuation between child LEFs:
   spec is a list of [`C pos] (child LEF) / [`P (pos, text)] (punct token at
   position pos, for its line) / [`Op (pos, op)] *)
let splice_lef spec =
  let deps =
    (0, "ENV")
    :: List.map
         (function
           | `C pos -> (pos, "LEF")
           | `P (pos, _) -> (pos, "LINE")
           | `Op (pos, _) -> (pos, "LINE"))
         spec
  in
  rule ~target:(0, "LEF") ~deps (function
    | env :: vs ->
      let env = as_env env in
      let parts =
        List.map2
          (fun part v ->
            match part with
            | `C _ -> as_lef v
            | `P (_, text) -> [ Lef.punct ~line:(as_int v) text ]
            | `Op (_, op) -> [ Decl_sem.classify_op ~env ~line:(as_int v) op ])
          spec vs
      in
      Lef (List.concat parts)
    | [] -> internal "splice_lef")

let add b =
  List.iter (fun n -> ignore (B.nonterminal b n)) nonterminals;
  let prod = B.production b in

  (* operator wrapper nonterminals *)
  let op_wrapper lhs tokens =
    List.iter
      (fun (term, op) ->
        prod ~name:(lhs ^ "_" ^ op) ~lhs ~rhs:[ term ]
          ~rules:
            [
              rule ~target:(0, "LEF") ~deps:[ (0, "ENV"); (1, "LINE") ] (function
                | [ env; line ] ->
                  Lef [ Decl_sem.classify_op ~env:(as_env env) ~line:(as_int line) op ]
                | _ -> internal "op wrapper");
            ])
      tokens
  in
  op_wrapper "logop" [ ("and", "and"); ("or", "or"); ("nand", "nand"); ("nor", "nor"); ("xor", "xor") ];
  op_wrapper "relop"
    [ ("=", "="); ("/=", "/="); ("<", "<"); ("<=", "<="); (">", ">"); (">=", ">=") ];
  op_wrapper "addop" [ ("+", "+"); ("-", "-"); ("&", "&") ];
  op_wrapper "mulop" [ ("*", "*"); ("/", "/"); ("mod", "mod"); ("rem", "rem") ];
  op_wrapper "sign" [ ("+", "+"); ("-", "-") ];

  prod ~name:"direction_to" ~lhs:"direction" ~rhs:[ "to" ]
    ~rules:[ rule ~target:(0, "DIR") ~deps:[] (fun _ -> Str "to") ];
  prod ~name:"direction_downto" ~lhs:"direction" ~rhs:[ "downto" ]
    ~rules:[ rule ~target:(0, "DIR") ~deps:[] (fun _ -> Str "downto") ];

  (* precedence chain; implicit LEF merges everywhere no terminal appears *)
  prod ~name:"expr_relation" ~lhs:"expr" ~rhs:[ "relation" ] ~rules:[];
  prod ~name:"expr_logop" ~lhs:"expr" ~rhs:[ "expr"; "logop"; "relation" ] ~rules:[];
  prod ~name:"relation_simple" ~lhs:"relation" ~rhs:[ "simpleexpr" ] ~rules:[];
  prod ~name:"relation_rel" ~lhs:"relation" ~rhs:[ "simpleexpr"; "relop"; "simpleexpr" ]
    ~rules:[];
  prod ~name:"simple_term" ~lhs:"simpleexpr" ~rhs:[ "term" ] ~rules:[];
  prod ~name:"simple_sign" ~lhs:"simpleexpr" ~rhs:[ "sign"; "term" ] ~rules:[];
  prod ~name:"simple_add" ~lhs:"simpleexpr" ~rhs:[ "simpleexpr"; "addop"; "term" ] ~rules:[];
  prod ~name:"term_factor" ~lhs:"term" ~rhs:[ "factor" ] ~rules:[];
  prod ~name:"term_mul" ~lhs:"term" ~rhs:[ "term"; "mulop"; "factor" ] ~rules:[];
  prod ~name:"factor_primary" ~lhs:"factor" ~rhs:[ "primary" ] ~rules:[];
  prod ~name:"factor_exp" ~lhs:"factor" ~rhs:[ "primary"; "**"; "primary" ]
    ~rules:[ splice_lef [ `C 1; `Op (2, "**"); `C 3 ] ];
  prod ~name:"factor_abs" ~lhs:"factor" ~rhs:[ "abs"; "primary" ]
    ~rules:[ splice_lef [ `Op (1, "abs"); `C 2 ] ];
  prod ~name:"factor_not" ~lhs:"factor" ~rhs:[ "not"; "primary" ]
    ~rules:[ splice_lef [ `Op (1, "not"); `C 2 ] ];

  (* primaries *)
  prod ~name:"primary_name" ~lhs:"primary" ~rhs:[ "name" ] ~rules:[ dummy_sres ];
  prod ~name:"primary_int" ~lhs:"primary" ~rhs:[ "INT" ]
    ~rules:
      [
        dummy_sres;
        rule ~target:(0, "LEF") ~deps:[ (1, "VAL"); (1, "LINE") ] (function
          | [ v; line ] -> (
            match as_tok v with
            | Token.Tint n -> lef1 (Lef.Kint n) (as_int line)
            | _ -> internal "INT token")
          | _ -> internal "primary_int");
      ];
  prod ~name:"primary_real" ~lhs:"primary" ~rhs:[ "REAL" ]
    ~rules:
      [
        dummy_sres;
        rule ~target:(0, "LEF") ~deps:[ (1, "VAL"); (1, "LINE") ] (function
          | [ v; line ] -> (
            match as_tok v with
            | Token.Treal x -> lef1 (Lef.Kreal x) (as_int line)
            | _ -> internal "REAL token")
          | _ -> internal "primary_real");
      ];
  (* physical literals: INT unit / REAL unit *)
  let physical name term conv =
    prod ~name ~lhs:"primary" ~rhs:[ term; "ID" ]
      ~rules:
        (lef_rules
           ~deps:[ (0, "ENV"); (1, "VAL"); (2, "VAL"); (2, "LINE") ]
           ~msg_deps:[]
           (function
             | [ env; v; unit_v; line ] ->
               Decl_sem.classify_physical ~env:(as_env env) ~line:(as_int line)
                 ~abstract:(conv (as_tok v)) (tok_id unit_v)
             | _ -> internal "physical"))
  in
  physical "primary_phys_int" "INT" (function
    | Token.Tint n -> `Int n
    | _ -> internal "INT token");
  physical "primary_phys_real" "REAL" (function
    | Token.Treal x -> `Real x
    | _ -> internal "REAL token");
  prod ~name:"primary_char" ~lhs:"primary" ~rhs:[ "CHAR" ]
    ~rules:
      (lef_rules ~deps:[ (0, "ENV"); (1, "VAL"); (1, "LINE") ] ~msg_deps:[] (function
        | [ env; v; line ] -> (
          match as_tok v with
          | Token.Tchar image -> (
            let line = as_int line in
            let denots = Env.lookup (as_env env) image in
            let enums =
              List.filter_map
                (function
                  | Denot.Denum_lit { ty; pos; image } -> Some (ty, pos, image)
                  | _ -> None)
                denots
            in
            match enums with
            | [] ->
              ( [ { Lef.l_kind = Lef.Kident image; l_line = line } ],
                [ Diag.error ~line "character literal %s is not declared" image ] )
            | _ -> ([ { Lef.l_kind = Lef.Kenum enums; l_line = line } ], []))
          | _ -> internal "CHAR token")
        | _ -> internal "primary_char"));
  prod ~name:"primary_string" ~lhs:"primary" ~rhs:[ "STRING" ]
    ~rules:
      [
        dummy_sres;
        rule ~target:(0, "LEF") ~deps:[ (1, "VAL"); (1, "LINE") ] (function
          | [ v; line ] -> (
            match as_tok v with
            | Token.Tstring s -> lef1 (Lef.Kstr s) (as_int line)
            | _ -> internal "STRING token")
          | _ -> internal "primary_string");
      ];
  prod ~name:"primary_bitstr" ~lhs:"primary" ~rhs:[ "BITSTR" ]
    ~rules:
      [
        dummy_sres;
        rule ~target:(0, "LEF") ~deps:[ (1, "VAL"); (1, "LINE") ] (function
          | [ v; line ] -> (
            match as_tok v with
            | Token.Tbitstr s -> lef1 (Lef.Kbitstr s) (as_int line)
            | _ -> internal "BITSTR token")
          | _ -> internal "primary_bitstr");
      ];
  prod ~name:"primary_paren" ~lhs:"primary" ~rhs:[ "("; "agg_items"; ")" ]
    ~rules:[ dummy_sres; splice_lef [ `P (1, "("); `C 2; `P (3, ")") ] ];

  (* names *)
  prod ~name:"name_id" ~lhs:"name" ~rhs:[ "ID" ]
    ~rules:
      (name_rules ~deps:[ (0, "ENV"); (1, "VAL"); (1, "LINE") ] ~msg_deps:[] (function
        | [ env; v; line ] ->
          let id = tok_id v in
          let lef, msgs = Decl_sem.classify ~env:(as_env env) ~line:(as_int line) id in
          (lef, id, msgs)
        | _ -> internal "name_id"));
  prod ~name:"name_selected" ~lhs:"name" ~rhs:[ "name"; "."; "ID" ]
    ~rules:
      (name_rules
         ~deps:[ (0, "ENV"); (1, "LEF"); (1, "BASE"); (3, "VAL"); (3, "LINE") ]
         ~msg_deps:[ 1 ]
         (function
           | [ env; plef; pbase; v; line ] ->
             let id = tok_id v in
             let lef, msgs =
               Decl_sem.classify_selected ~env:(as_env env) ~line:(as_int line) (as_lef plef) id
             in
             (lef, as_str pbase ^ "." ^ id, msgs)
           | _ -> internal "name_selected"));
  prod ~name:"name_args" ~lhs:"name" ~rhs:[ "name"; "("; "agg_items"; ")" ]
    ~rules:
      (name_rules
         ~deps:[ (1, "LEF"); (1, "BASE"); (2, "LINE"); (3, "LEF"); (4, "LINE") ]
         ~msg_deps:[ 1; 3 ]
         (function
           | [ plef; pbase; lp; items; rp ] ->
             ( as_lef plef
               @ [ Lef.punct ~line:(as_int lp) "(" ]
               @ as_lef items
               @ [ Lef.punct ~line:(as_int rp) ")" ],
               as_str pbase,
               [] )
           | _ -> internal "name_args"));
  prod ~name:"name_attr" ~lhs:"name" ~rhs:[ "name"; "'"; "ID" ]
    ~rules:
      (name_rules
         ~deps:[ (0, "ENV"); (1, "LEF"); (1, "BASE"); (3, "VAL"); (3, "LINE") ]
         ~msg_deps:[ 1 ]
         (function
           | [ env; plef; pbase; v; line ] ->
             let id = tok_id v in
             let base = as_str pbase in
             let lef, msgs =
               Decl_sem.classify_attribute ~env:(as_env env) ~line:(as_int line) ~base
                 (as_lef plef) id
             in
             (lef, base, msgs)
           | _ -> internal "name_attr"));
  (* allocators: new T / new T'(e) — the name covers both via the
     qualified-expression production *)
  prod ~name:"primary_new" ~lhs:"primary" ~rhs:[ "new"; "name" ]
    ~rules:
      (lef_rules ~deps:[ (1, "LINE"); (2, "LEF") ] ~msg_deps:[ 2 ] (function
        | [ line; name_lef ] ->
          ({ Lef.l_kind = Lef.Knew; l_line = as_int line } :: as_lef name_lef, [])
        | _ -> internal "primary_new"));
  (* the null access literal *)
  prod ~name:"primary_null" ~lhs:"primary" ~rhs:[ "null" ]
    ~rules:
      (lef_rules ~deps:[ (1, "LINE") ] ~msg_deps:[] (function
        | [ line ] -> ([ { Lef.l_kind = Lef.Knull; l_line = as_int line } ], [])
        | _ -> internal "primary_null"));

  (* qualified expression / attribute function argument: name ' ( items ) *)
  prod ~name:"name_qualified" ~lhs:"name" ~rhs:[ "name"; "'"; "("; "agg_items"; ")" ]
    ~rules:
      (name_rules
         ~deps:[ (1, "LEF"); (1, "BASE"); (2, "LINE"); (4, "LEF"); (5, "LINE") ]
         ~msg_deps:[ 1; 4 ]
         (function
           | [ plef; pbase; tick_line; items; rp ] ->
             ( as_lef plef
               @ [
                   Lef.punct ~line:(as_int tick_line) "'";
                   Lef.punct ~line:(as_int tick_line) "(";
                 ]
               @ as_lef items
               @ [ Lef.punct ~line:(as_int rp) ")" ],
               as_str pbase,
               [] )
           | _ -> internal "name_qualified"));
  (* dereference: p.all *)
  prod ~name:"name_all_deref" ~lhs:"name" ~rhs:[ "name"; "."; "all" ]
    ~rules:
      (name_rules
         ~deps:[ (1, "LEF"); (1, "BASE"); (2, "LINE"); (3, "LINE") ]
         ~msg_deps:[ 1 ]
         (function
           | [ plef; pbase; dot_line; all_line ] ->
             ( as_lef plef
               @ [
                   Lef.punct ~line:(as_int dot_line) ".";
                   Lef.punct ~line:(as_int all_line) "all";
                 ],
               as_str pbase,
               [] )
           | _ -> internal "name_all_deref"));
  prod ~name:"name_attr_range" ~lhs:"name" ~rhs:[ "name"; "'"; "range" ]
    ~rules:
      (name_rules ~deps:[ (1, "LEF"); (1, "BASE"); (3, "LINE") ] ~msg_deps:[ 1 ] (function
        | [ plef; pbase; line ] ->
          let line = as_int line in
          ( as_lef plef
            @ [ Lef.punct ~line "'"; { Lef.l_kind = Lef.Kattr "RANGE"; l_line = line } ],
            as_str pbase,
            [] )
        | _ -> internal "name_attr_range"));

  (* aggregate / argument items *)
  prod ~name:"agg_items_one" ~lhs:"agg_items" ~rhs:[ "agg_item" ] ~rules:[];
  prod ~name:"agg_items_more" ~lhs:"agg_items" ~rhs:[ "agg_items"; ","; "agg_item" ]
    ~rules:[ splice_lef [ `C 1; `P (2, ","); `C 3 ] ];
  prod ~name:"agg_item_expr" ~lhs:"agg_item" ~rhs:[ "expr" ] ~rules:[];
  prod ~name:"agg_item_range" ~lhs:"agg_item" ~rhs:[ "simpleexpr"; "direction"; "simpleexpr" ]
    ~rules:
      [
        rule ~target:(0, "LEF")
          ~deps:[ (1, "LEF"); (2, "DIR"); (3, "LEF") ]
          (function
            | [ lo; d; hi ] ->
              let lo = as_lef lo and hi = as_lef hi in
              let line = match lo with t :: _ -> t.Lef.l_line | [] -> 0 in
              Lef (lo @ [ Lef.punct ~line (as_str d) ] @ hi)
            | _ -> internal "agg_item_range");
      ];
  prod ~name:"agg_item_named" ~lhs:"agg_item" ~rhs:[ "chlist"; "=>"; "expr" ]
    ~rules:[ splice_lef [ `C 1; `P (2, "=>"); `C 3 ] ];
  prod ~name:"agg_item_open" ~lhs:"agg_item" ~rhs:[ "chlist"; "=>"; "open" ]
    ~rules:[ splice_lef [ `C 1; `P (2, "=>"); `P (3, "open") ] ];

  (* choices: dual LEF (for aggregates) and CHS (for case statements) *)
  prod ~name:"chlist_one" ~lhs:"chlist" ~rhs:[ "chitem" ]
    ~rules:
      [
        rule ~target:(0, "CHS") ~deps:[ (1, "CHS") ] (function
          | [ c ] -> c
          | _ -> internal "chlist_one");
      ];
  prod ~name:"chlist_more" ~lhs:"chlist" ~rhs:[ "chlist"; "|"; "chitem" ]
    ~rules:
      [
        splice_lef [ `C 1; `P (2, "|"); `C 3 ];
        rule ~target:(0, "CHS") ~deps:[ (1, "CHS"); (3, "CHS") ] (function
          | [ a; c ] -> Choices (as_choices a @ as_choices c)
          | _ -> internal "chlist_more");
      ];
  prod ~name:"chitem_expr" ~lhs:"chitem" ~rhs:[ "simpleexpr" ]
    ~rules:
      [
        rule ~target:(0, "CHS") ~deps:[ (1, "LEF") ] (function
          | [ lef ] -> Choices [ CSlef (as_lef lef) ]
          | _ -> internal "chitem_expr");
      ];
  prod ~name:"chitem_range" ~lhs:"chitem" ~rhs:[ "simpleexpr"; "direction"; "simpleexpr" ]
    ~rules:
      [
        rule ~target:(0, "LEF")
          ~deps:[ (1, "LEF"); (2, "DIR"); (3, "LEF") ]
          (function
            | [ lo; d; hi ] ->
              let lo = as_lef lo and hi = as_lef hi in
              let line = match lo with t :: _ -> t.Lef.l_line | [] -> 0 in
              Lef (lo @ [ Lef.punct ~line (as_str d) ] @ hi)
            | _ -> internal "chitem_range lef");
        rule ~target:(0, "CHS")
          ~deps:[ (1, "LEF"); (2, "DIR"); (3, "LEF") ]
          (function
            | [ lo; d; hi ] ->
              let dir = if as_str d = "to" then Types.To else Types.Downto in
              Choices [ CSrange (as_lef lo, dir, as_lef hi) ]
            | _ -> internal "chitem_range chs");
      ];
  prod ~name:"chitem_others" ~lhs:"chitem" ~rhs:[ "others" ]
    ~rules:
      [
        rule ~target:(0, "LEF") ~deps:[ (1, "LINE") ] (function
          | [ line ] -> Lef [ Lef.punct ~line:(as_int line) "others" ]
          | _ -> internal "chitem_others lef");
        rule ~target:(0, "CHS") ~deps:[] (fun _ -> Choices [ CSothers ]);
      ];

  (* name lists (sensitivity lists, wait on) *)
  prod ~name:"name_list_one" ~lhs:"name_list" ~rhs:[ "name" ]
    ~rules:
      [
        rule ~target:(0, "LEFS") ~deps:[ (1, "LEF") ] (function
          | [ l ] -> Lefs [ as_lef l ]
          | _ -> internal "name_list_one");
      ];
  prod ~name:"name_list_more" ~lhs:"name_list" ~rhs:[ "name_list"; ","; "name" ]
    ~rules:
      [
        rule ~target:(0, "LEFS") ~deps:[ (1, "LEFS"); (3, "LEF") ] (function
          | [ ls; l ] -> Lefs (as_lefs ls @ [ as_lef l ])
          | _ -> internal "name_list_more");
      ];

  (* discrete ranges (for loops, array index specs) *)
  prod ~name:"discrete_range_expr" ~lhs:"discrete_range" ~rhs:[ "expr" ]
    ~rules:
      [
        rule ~target:(0, "RNG") ~deps:[ (1, "LEF") ] (function
          | [ lef ] -> Rng (`Lef (as_lef lef))
          | _ -> internal "discrete_range_expr");
      ];
  prod ~name:"discrete_range_bounds" ~lhs:"discrete_range"
    ~rhs:[ "simpleexpr"; "direction"; "simpleexpr" ]
    ~rules:
      [
        rule ~target:(0, "RNG")
          ~deps:[ (1, "LEF"); (2, "DIR"); (3, "LEF") ]
          (function
            | [ lo; d; hi ] ->
              let dir = if as_str d = "to" then Types.To else Types.Downto in
              Rng (`Bounds (as_lef lo, dir, as_lef hi))
            | _ -> internal "discrete_range_bounds");
      ];

  (* optional expression *)
  prod ~name:"expr_opt_none" ~lhs:"expr_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OLEF") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"expr_opt_some" ~lhs:"expr_opt" ~rhs:[ "expr" ]
    ~rules:
      [
        rule ~target:(0, "OLEF") ~deps:[ (1, "LEF") ] (function
          | [ l ] -> Opt (Some l)
          | _ -> internal "expr_opt_some");
      ]
