(** Out-of-line semantics for design units (principal AG). *)

open Pval

let seq = ref 0

let next_sequence () =
  incr seq;
  !seq

(* interface lists -> port/generic declarations *)
let ports_of_ifaces (ifaces : iface list) : Kir.port_decl list =
  List.concat_map
    (fun i ->
      List.map
        (fun (n, _) ->
          {
            Kir.pd_name = n;
            pd_mode = Option.value i.if_mode ~default:Kir.Arg_in;
            pd_ty = i.if_ty;
            pd_default = i.if_default;
          })
        i.if_names)
    ifaces

let generics_of_ifaces (ifaces : iface list) : Kir.generic_decl list =
  List.concat_map
    (fun i ->
      List.map
        (fun (n, _) -> { Kir.gd_name = n; gd_ty = i.if_ty; gd_default = i.if_default })
        i.if_names)
    ifaces

(** Environment bindings for an entity's generics and ports, used both when
    compiling the entity's own architecture bodies and for the entity
    declarative part. *)
let entity_interface_binds (en : Unit_info.entity_info) =
  List.mapi
    (fun idx (g : Kir.generic_decl) ->
      ( g.Kir.gd_name,
        Denot.Dobject
          {
            name = g.Kir.gd_name;
            cls = Denot.Cconstant;
            ty = g.Kir.gd_ty;
            mode = None;
            slot = Denot.Sl_generic idx;
          } ))
    en.Unit_info.en_generics
  @ List.mapi
      (fun idx (p : Kir.port_decl) ->
        ( p.Kir.pd_name,
          Denot.Dobject
            {
              name = p.Kir.pd_name;
              cls = Denot.Csignal;
              ty = p.Kir.pd_ty;
              mode = Some p.Kir.pd_mode;
              slot = Denot.Sl_signal (Kir.Sig_local idx);
            } ))
      en.Unit_info.en_ports

(** Assemble an entity declaration unit. *)
let entity ~name ~(generics : iface list) ~(ports : iface list) ~(source_lines : int)
    ~(context : (string * Denot.t) list) ~(deps : (string * string) list) :
    Unit_info.compiled_unit =
  let info =
    Unit_info.Uentity
      {
        Unit_info.en_name = name;
        en_generics = generics_of_ifaces generics;
        en_ports = ports_of_ifaces ports;
        en_context = context;
      }
  in
  {
    Unit_info.u_library = Session.work ();
    u_key = Unit_info.key_of info;
    u_info = info;
    u_deps = deps;
    u_source_lines = source_lines;
    u_sequence = next_sequence ();
  }

(** Look up the entity an architecture belongs to. *)
let find_entity ~line name : Unit_info.entity_info option * Diag.t list =
  match Session.find_unit ~library:(Session.work ()) ~key:("entity:" ^ name) with
  | Some { Unit_info.u_info = Unit_info.Uentity en; _ } -> (Some en, [])
  | Some _ | None ->
    (None, [ Diag.error ~line "entity %s is not in the working library" name ])

(** Assemble an architecture body. *)
let architecture ~name ~entity_name ~(entity : Unit_info.entity_info option)
    ~(out : decl_out) ~(body : Kir.concurrent list) ~(source_lines : int) :
    Unit_info.compiled_unit =
  let en_name = match entity with Some e -> e.Unit_info.en_name | None -> entity_name in
  (* o_locals at architecture level are elaboration-time constants *)
  let info =
    Unit_info.Uarch
      {
        Unit_info.ar_name = name;
        ar_entity = en_name;
        ar_constants =
          List.filter_map
            (fun (l : Kir.local) ->
              Option.map (fun init -> (l.Kir.l_name, l.Kir.l_ty, init)) l.Kir.l_init)
            out.o_locals;
        ar_signals =
          List.map
            (fun (sd : Kir.signal_decl) ->
              match List.assoc_opt sd.Kir.sd_name out.o_disconnects with
              | Some e -> { sd with Kir.sd_disconnect = Some e }
              | None -> sd)
            out.o_signals;
        ar_components = out.o_components;
        ar_subprograms = out.o_subprograms;
        ar_body = Kir_util.normalize_labels body;
        ar_config_specs = out.o_config_specs;
      }
  in
  {
    Unit_info.u_library = Session.work ();
    u_key = Unit_info.key_of info;
    u_info = info;
    u_deps = ((Session.work (), "entity:" ^ en_name) :: out.o_deps);
    u_source_lines = source_lines;
    u_sequence = next_sequence ();
  }

(** Architecture-level elaboration-time constants (see
    {!Decl_sem.constant_decl}): the o_locals of an architecture's
    declarative part. *)
let arch_constants (out : decl_out) : (string * Types.t * Kir.expr) list =
  List.filter_map
    (fun (l : Kir.local) ->
      match l.Kir.l_init with
      | Some init -> Some (l.Kir.l_name, l.Kir.l_ty, init)
      | None -> None)
    out.o_locals

(** Assemble a package declaration. *)
let package ~name ~(out : decl_out) ~(specs : Denot.subprog_sig list) ~(source_lines : int) :
    Unit_info.compiled_unit =
  let info =
    Unit_info.Upackage
      {
        Unit_info.pk_name = name;
        pk_exports = out.o_binds;
        pk_signals = out.o_signals;
        pk_subprogram_decls = specs;
      }
  in
  {
    Unit_info.u_library = Session.work ();
    u_key = Unit_info.key_of info;
    u_info = info;
    u_deps = out.o_deps;
    u_source_lines = source_lines;
    u_sequence = next_sequence ();
  }

(** Environment for a package body: the package's own exports. *)
let package_spec_env ~line name : (string * Denot.t) list * Diag.t list =
  match Session.find_unit ~library:(Session.work ()) ~key:("package:" ^ name) with
  | Some { Unit_info.u_info = Unit_info.Upackage pk; _ } -> (pk.Unit_info.pk_exports, [])
  | Some _ | None ->
    ([], [ Diag.error ~line "package declaration %s must be compiled first" name ])

let package_body ~name ~(out : decl_out) ~(source_lines : int) : Unit_info.compiled_unit =
  let info =
    Unit_info.Upackage_body
      {
        Unit_info.pb_name = name;
        pb_subprograms = out.o_subprograms;
        pb_deferred = out.o_deferred;
      }
  in
  {
    Unit_info.u_library = Session.work ();
    u_key = Unit_info.key_of info;
    u_info = info;
    u_deps = ((Session.work (), "package:" ^ name) :: out.o_deps);
    u_source_lines = source_lines;
    u_sequence = next_sequence ();
  }

(* All component instances of an architecture body: (label, component),
   walking nested blocks — "reading and traversing these data structures"
   is the bulk of configuration processing (paper footnote 3). *)
let rec instances_of_concurrents (concs : Kir.concurrent list) =
  List.concat_map
    (fun c ->
      match c with
      | Kir.C_instance i -> [ (i.Kir.inst_label, i.Kir.inst_component) ]
      | Kir.C_block { blk_body; _ } -> instances_of_concurrents blk_body
      | Kir.C_generate { gen_body; _ } -> instances_of_concurrents gen_body
      | Kir.C_if_generate { ig_body; _ } -> instances_of_concurrents ig_body
      | Kir.C_process _ -> [])
    concs

(* Verify one configuration specification against the configured
   architecture: the labels must name instances of the component, and the
   bound entity (and named architecture) must exist with ports matching the
   component declaration. *)
let check_config_spec ~line ~(arch : Unit_info.arch_info) (cs : Unit_info.config_spec) :
    Diag.t list =
  let instances = instances_of_concurrents arch.Unit_info.ar_body in
  let label_msgs =
    match cs.Unit_info.cs_scope with
    | `All | `Others -> []
    | `Labels labels ->
      List.concat_map
        (fun label ->
          match List.assoc_opt label instances with
          | Some comp when comp = cs.Unit_info.cs_component -> []
          | Some comp ->
            [
              Diag.error ~line "instance %s is of component %s, not %s" label comp
                cs.Unit_info.cs_component;
            ]
          | None ->
            [
              Diag.error ~line "architecture %s has no instance labelled %s"
                arch.Unit_info.ar_name label;
            ])
        labels
  in
  let b = cs.Unit_info.cs_binding in
  let binding_msgs =
    match
      Session.find_unit ~library:b.Unit_info.b_library ~key:("entity:" ^ b.Unit_info.b_entity)
    with
    | Some { Unit_info.u_info = Unit_info.Uentity en; _ } -> (
      (* port compatibility against the component declaration *)
      let comp_ports =
        match
          List.find_opt
            (fun (n, _, _) -> n = cs.Unit_info.cs_component)
            arch.Unit_info.ar_components
        with
        | Some (_, _, ports) -> ports
        | None -> []
      in
      let port_msgs =
        List.concat_map
          (fun (cp : Kir.port_decl) ->
            match
              List.find_opt
                (fun (ep : Kir.port_decl) -> ep.Kir.pd_name = cp.Kir.pd_name)
                en.Unit_info.en_ports
            with
            | Some ep when Types.compatible ep.Kir.pd_ty cp.Kir.pd_ty -> []
            | Some _ ->
              [
                Diag.error ~line "port %s of entity %s has a different type than the component"
                  cp.Kir.pd_name b.Unit_info.b_entity;
              ]
            | None ->
              [
                Diag.error ~line "entity %s has no port %s required by component %s"
                  b.Unit_info.b_entity cp.Kir.pd_name cs.Unit_info.cs_component;
              ])
          comp_ports
      in
      match b.Unit_info.b_arch with
      | None -> port_msgs
      | Some a -> (
        match
          Session.find_unit ~library:b.Unit_info.b_library
            ~key:(Printf.sprintf "arch:%s(%s)" b.Unit_info.b_entity a)
        with
        | Some _ -> port_msgs
        | None ->
          port_msgs
          @ [
              Diag.error ~line "no architecture %s of entity %s in library %s" a
                b.Unit_info.b_entity b.Unit_info.b_library;
            ]))
    | Some _ | None ->
      [
        Diag.error ~line "no entity %s in library %s" b.Unit_info.b_entity
          b.Unit_info.b_library;
      ]
  in
  label_msgs @ binding_msgs

(** Assemble a configuration declaration. *)
let configuration ~name ~entity_name ~arch_name ~(specs : Unit_info.config_spec list)
    ~(source_lines : int) ~line : Unit_info.compiled_unit * Diag.t list =
  let msgs =
    match Session.find_unit ~library:(Session.work ()) ~key:("entity:" ^ entity_name) with
    | Some _ -> (
      match
        Session.find_unit ~library:(Session.work ())
          ~key:(Printf.sprintf "arch:%s(%s)" entity_name arch_name)
      with
      | Some { Unit_info.u_info = Unit_info.Uarch arch; _ } ->
        (* the expensive part: every specification is verified against the
           loaded architecture and the units it binds *)
        List.concat_map (check_config_spec ~line ~arch) specs
      | Some _ | None ->
        [
          Diag.error ~line "architecture %s of %s is not in the working library" arch_name
            entity_name;
        ])
    | None -> [ Diag.error ~line "entity %s is not in the working library" entity_name ]
  in
  let info =
    Unit_info.Uconfig
      {
        Unit_info.cf_name = name;
        cf_entity = entity_name;
        cf_arch = arch_name;
        cf_specs = specs;
      }
  in
  ( {
      Unit_info.u_library = Session.work ();
      u_key = Unit_info.key_of info;
      u_info = info;
      u_deps =
        [
          (Session.work (), "entity:" ^ entity_name);
          (Session.work (), Printf.sprintf "arch:%s(%s)" entity_name arch_name);
        ];
      u_source_lines = source_lines;
      u_sequence = next_sequence ();
    },
    msgs )

(** Configuration specification (inside an architecture or a configuration
    unit): [for labels : comp use entity lib.ent(arch);]. *)
let config_spec ~line ~(scope : [ `Labels of string list | `All | `Others ])
    ~(component : string) ~(binding : (string list * string option) option) :
    Unit_info.config_spec list * Diag.t list =
  match binding with
  | Some ([ library; entity ], arch) ->
    ( [
        {
          Unit_info.cs_scope = scope;
          cs_component = component;
          cs_binding = { Unit_info.b_library = library; b_entity = entity; b_arch = arch };
        };
      ],
      [] )
  | Some ([ entity ], arch) ->
    ( [
        {
          Unit_info.cs_scope = scope;
          cs_component = component;
          cs_binding =
            { Unit_info.b_library = Session.work (); b_entity = entity; b_arch = arch };
        };
      ],
      [] )
  | Some _ -> ([], [ Diag.error ~line "invalid entity name in binding indication" ])
  | None -> ([], [])

(** Check an architecture name mentioned by [end <name>;] etc. *)
let check_end_name ~line ~kind ~expected (actual : string option) : Diag.t list =
  match actual with
  | Some a when not (String.equal a expected) ->
    [ Diag.error ~line "%s %s ends with mismatched name %s" kind expected a ]
  | Some _ | None -> []
