(** [exprEval] — the cascade point between the two AGs (paper §4.1): a
    parser and attribute evaluator generated from the expression AG, fed by
    the trivial scanner that "takes the next LEF token off the front of the
    list". *)

val grammar : unit -> Pval.t Grammar.t
(** The expression attribute grammar (built once, lazily). *)

val parser_ : unit -> Pval.t Parsing.t

(** Instrumentation goes through the process-wide telemetry registry
    ([cascade.*] counters) and the ambient phase timer ("expression
    evaluation (cascade)" frames), not module-local mutable state. *)

(** {1 The LEF→parse-tree memo cache}

    The parse tree of a maximal expression is a pure function of its LEF
    token list, so it is cached process-wide under a structural content key
    ({!Lef.content_key}); evaluation context ([?expected], [~level],
    [~line]) stays outside the cached artifact and is re-applied per call.
    Hits and misses surface as [cascade.memo_hits] / [cascade.memo_misses];
    eviction is generational and bounded ([cascade.memo_evictions]). *)

val with_cold_cascade : (unit -> 'a) -> 'a
(** Run [f] with the memo cache bypassed and copy elision off in the
    expression AG — the reference path the differential oracle's demand
    side compares the fast path against.  Dynamically scoped; restores the
    warm cascade on exit, exceptions included. *)

val clear_memo : unit -> unit
(** Drop every cached parse tree (the cache is process-global; tests call
    this to stay order-independent). *)

val memo_size : unit -> int
(** Number of distinct expressions currently cached. *)

val eval :
  ?expected:Types.t -> level:int -> line:int -> Lef.tok list -> Pval.xres
(** Evaluate one maximal expression.  [expected] is the type required by
    context; [level] the subprogram nesting level of the occurrence (both
    are arguments of the paper's [exprEval]). *)

val eval_range :
  level:int ->
  line:int ->
  Lef.tok list ->
  (Kir.expr * Types.dir * Kir.expr) * Types.t option * Diag.t list
(** Evaluate a discrete range (attribute ranges included).  An empty token
    list yields a "missing range" diagnostic, mirroring [eval]'s
    missing-expression guard. *)
