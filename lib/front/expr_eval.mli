(** [exprEval] — the cascade point between the two AGs (paper §4.1): a
    parser and attribute evaluator generated from the expression AG, fed by
    the trivial scanner that "takes the next LEF token off the front of the
    list". *)

val grammar : unit -> Pval.t Grammar.t
(** The expression attribute grammar (built once, lazily). *)

val parser_ : unit -> Pval.t Parsing.t

(** Instrumentation goes through the process-wide telemetry registry
    ([cascade.*] counters) and the ambient phase timer ("expression
    evaluation (cascade)" frames), not module-local mutable state. *)

val eval :
  ?expected:Types.t -> level:int -> line:int -> Lef.tok list -> Pval.xres
(** Evaluate one maximal expression.  [expected] is the type required by
    context; [level] the subprogram nesting level of the occurrence (both
    are arguments of the paper's [exprEval]). *)

val eval_range :
  level:int ->
  line:int ->
  Lef.tok list ->
  (Kir.expr * Types.dir * Kir.expr) * Types.t option * Diag.t list
(** Evaluate a discrete range (attribute ranges included). *)
