(** The *united productions* alternative (ABL-CASCADE ablation).

    The road the paper's authors abandoned (§4.1): a recursive-descent
    parser over raw expression tokens builds a deliberately ambiguous shape
    ([Uapply] covers call, index, slice, and conversion alike), and a
    post-hoc pass distinguishes the cases by consulting the symbol table.
    Produces the same {!Pval.xres} as the cascade, so the bench compares
    the strategies on identical inputs. *)

exception Parse_failed of int

val eval :
  ?expected:Types.t ->
  env:Env.t ->
  level:int ->
  line:int ->
  (Token.t * int) list ->
  Pval.xres
(** Evaluate one expression from raw source tokens the united way. *)

val eval_string : ?expected:Types.t -> env:Env.t -> level:int -> string -> Pval.xres
(** Convenience wrapper over {!Lexer.tokenize}. *)
