(** The principal VHDL attribute grammar: symbols, attribute classes, and
    the assembly of the region files.

    The paper's VHDL AG "is one 500,000-byte file whereas the rest of the
    compiler consists of about 50 modules" (§5.2, "AGs are monolithic");
    cascaded evaluation plus these region modules is exactly the
    decomposition remedy the paper proposes to investigate. *)

open Pval
module B = Grammar.Builder

let terminals =
  Token.reserved_words @ Token.punct_terminals
  @ [ "ID"; "INT"; "REAL"; "CHAR"; "STRING"; "BITSTR"; "EOF" ]

let all_nonterminals =
  Grammar_exprs.nonterminals @ Grammar_decls.nonterminals @ Grammar_stmts.nonterminals
  @ Grammar_units.nonterminals

let build () =
  let b = B.create () in
  List.iter (fun t -> ignore (B.terminal b t)) terminals;
  List.iter (fun n -> ignore (B.nonterminal b n)) all_nonterminals;

  (* ---- attribute classes (paper §4.2) ---- *)
  (* synthesized classes *)
  B.attr_class b ~name:"MSGS" ~dir:Grammar.Synthesized
    ~default:(Grammar.Merge (merge_msgs, Msgs []));
  B.attr_class b ~name:"OUT" ~dir:Grammar.Synthesized
    ~default:(Grammar.Merge (merge_out, Out out_empty));
  B.attr_class b ~name:"LEF" ~dir:Grammar.Synthesized
    ~default:(Grammar.Merge (merge_lef, Lef []));
  B.attr_class b ~name:"CODE" ~dir:Grammar.Synthesized
    ~default:(Grammar.Merge (merge_stmts, Stmts []));
  B.attr_class b ~name:"CONCS" ~dir:Grammar.Synthesized
    ~default:(Grammar.Merge (merge_concs, Concs []));
  B.attr_class b ~name:"UNITS" ~dir:Grammar.Synthesized
    ~default:(Grammar.Merge (merge_units, Units []));
  List.iter
    (fun name -> B.attr_class b ~name ~dir:Grammar.Synthesized ~default:Grammar.Copy)
    [ "LEFS"; "WAVES"; "IFACES"; "IDS"; "ASSOCS"; "ALTS" ];
  (* inherited classes *)
  B.attr_class b ~name:"ENV" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  B.attr_class b ~name:"LEVEL" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  B.attr_class b ~name:"UNITNAME" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  B.attr_class b ~name:"CTX" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  B.attr_class b ~name:"SLOTBASE" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  B.attr_class b ~name:"SIGBASE" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  B.attr_class b ~name:"LOOPDEPTH" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  B.attr_class b ~name:"RETTY" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  B.attr_class b ~name:"CTXOUT" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  B.attr_class b ~name:"NLINES" ~dir:Grammar.Inherited ~default:Grammar.Copy;

  (* class membership: every nonterminal carries the context and diagnostic
     classes (the paper's ENV_ATTRS/STMT_ATTRS macro groups, systematized) *)
  List.iter
    (fun sym ->
      List.iter
        (fun cls -> B.attr_member b ~sym ~cls)
        [
          "MSGS"; "OUT"; "ENV"; "LEVEL"; "UNITNAME"; "CTX"; "SLOTBASE"; "SIGBASE";
          "LOOPDEPTH"; "RETTY"; "CTXOUT"; "NLINES";
        ])
    all_nonterminals;
  (* LEF on the expression region *)
  List.iter
    (fun sym -> B.attr_member b ~sym ~cls:"LEF")
    [
      "expr"; "relation"; "simpleexpr"; "term"; "factor"; "primary"; "name";
      "agg_items"; "agg_item"; "chlist"; "chitem"; "logop"; "relop"; "addop";
      "mulop"; "sign";
    ];
  List.iter
    (fun sym -> B.attr_member b ~sym ~cls:"CODE")
    [ "stmts"; "stmt"; "else_opt" ];
  List.iter (fun sym -> B.attr_member b ~sym ~cls:"CONCS") [ "concs"; "conc" ];
  List.iter
    (fun sym -> B.attr_member b ~sym ~cls:"UNITS")
    [
      "design_file"; "design_units"; "design_unit"; "library_unit"; "entity_decl";
      "arch_body"; "package_decl"; "package_body_u"; "config_decl";
    ];
  List.iter (fun sym -> B.attr_member b ~sym ~cls:"LEFS") [ "name_list"; "on_opt"; "sens_opt" ];
  List.iter (fun sym -> B.attr_member b ~sym ~cls:"WAVES") [ "waveform"; "wave_elem" ];
  List.iter
    (fun sym -> B.attr_member b ~sym ~cls:"IFACES")
    [
      "iface_list"; "iface_elem"; "record_elems"; "record_elem"; "params_opt";
      "generic_clause_opt"; "port_clause_opt";
    ];
  List.iter (fun sym -> B.attr_member b ~sym ~cls:"IDS") [ "id_list"; "enum_lits"; "enum_lit" ];
  List.iter
    (fun sym -> B.attr_member b ~sym ~cls:"ASSOCS")
    [ "assoc_list"; "assoc"; "gmap_opt"; "pmap_opt" ];
  List.iter (fun sym -> B.attr_member b ~sym ~cls:"ALTS") [ "case_alts"; "case_alt" ];

  (* ---- plain attributes ---- *)
  let syn sym name = B.attr b ~sym ~name ~dir:Grammar.Synthesized in
  List.iter
    (fun sym -> syn sym "SRES")
    [
      "name"; "primary"; "subtype_ind"; "type_decl"; "subtype_decl"; "constant_decl";
      "signal_decl"; "variable_decl"; "subprog_decl"; "component_decl"; "attribute_decl";
      "attribute_spec"; "alias_decl"; "use_names"; "library_clause"; "config_spec1";
      "disconnect_spec";
      "config_decl"; "stmt"; "conc";
    ];
  syn "name" "BASE";
  syn "direction" "DIR";
  List.iter (fun sym -> syn sym "CHS") [ "chlist"; "chitem" ];
  syn "discrete_range" "RNG";
  List.iter
    (fun sym -> syn sym "OLEF")
    [
      "init_opt"; "expr_opt"; "after_opt"; "until_opt"; "forts_opt"; "report_opt";
      "severity_opt"; "when_opt";
    ];
  List.iter (fun sym -> syn sym "OID") [ "opt_id"; "arch_opt" ];
  syn "type_def" "TYDEF";
  syn "index_spec" "IXS";
  syn "index_specs" "IXS";
  List.iter (fun sym -> syn sym "PUNITS") [ "unit_decls"; "units_part" ];
  syn "subtype_ind" "STY";
  syn "sig_kind_opt" "SKIND";
  syn "class_opt" "OCLS";
  syn "mode_opt" "OMODE";
  syn "subprog_spec" "SPEC";
  syn "use_name" "UPARTS";
  List.iter (fun sym -> syn sym "LINE1") [ "use_name"; "process_head" ];
  syn "inst_spec" "ISPEC";
  syn "binding_ind" "BIND";
  syn "elsif_list" "ARMS";
  List.iter (fun sym -> syn sym "BOOLV") [ "transport_opt"; "guarded_opt" ];
  syn "process_head" "LBL";
  syn "process_head" "SENS";
  syn "cond_waves" "CWAVES";
  syn "selected_waves" "SWAVES";
  syn "guard_opt" "OGUARD";

  (* ---- productions ---- *)
  Grammar_exprs.add b;
  Grammar_decls.add b;
  Grammar_stmts.add b;
  Grammar_units.add b;

  B.freeze b ~start:"design_file"

(** The grammar and its parser, built once (as Linguist generates its
    evaluator once). *)
let instance =
  lazy
    (let grammar = build () in
     let parser_ = Parsing.create ~name:"principal VHDL AG" grammar ~eof:"EOF" in
     (grammar, parser_))

let grammar () = fst (Lazy.force instance)
let parser_ () = snd (Lazy.force instance)
