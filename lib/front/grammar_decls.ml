(** Principal AG, declaration region. *)

open Pval
open Gram_util
module B = Grammar.Builder

let nonterminals =
  [
    "decl_items"; "decl_item"; "type_decl"; "type_def"; "enum_lits"; "enum_lit";
    "index_spec"; "index_specs"; "record_elems"; "record_elem"; "subtype_decl"; "subtype_ind";
    "units_part"; "unit_decls";
    "constant_decl"; "signal_decl"; "variable_decl"; "sig_kind_opt"; "id_list";
    "init_opt"; "subprog_spec"; "params_opt"; "iface_list"; "iface_elem";
    "class_opt"; "mode_opt"; "subprog_decl"; "subprog_body"; "component_decl";
    "disconnect_spec";
    "generic_clause_opt"; "port_clause_opt"; "attribute_decl"; "attribute_spec";
    "entity_class"; "alias_decl"; "use_clause"; "use_names"; "use_name";
    "config_spec1"; "inst_spec"; "binding_ind"; "arch_opt"; "opt_id";
  ]

let dummy_sres = rule ~target:(0, "SRES") ~deps:[] (fun _ -> Unit)

let add b =
  List.iter (fun n -> ignore (B.nonterminal b n)) nonterminals;
  let prod = B.production b in

  (* ---- shared small pieces ---- *)
  prod ~name:"id_list_one" ~lhs:"id_list" ~rhs:[ "ID" ]
    ~rules:
      [
        rule ~target:(0, "IDS") ~deps:[ (1, "VAL"); (1, "LINE") ] (function
          | [ v; line ] -> Ids [ (tok_id v, as_int line) ]
          | _ -> internal "id_list_one");
      ];
  prod ~name:"id_list_more" ~lhs:"id_list" ~rhs:[ "id_list"; ","; "ID" ]
    ~rules:
      [
        rule ~target:(0, "IDS") ~deps:[ (1, "IDS"); (3, "VAL"); (3, "LINE") ] (function
          | [ ids; v; line ] -> Ids (as_ids ids @ [ (tok_id v, as_int line) ])
          | _ -> internal "id_list_more");
      ];
  prod ~name:"opt_id_none" ~lhs:"opt_id" ~rhs:[]
    ~rules:[ rule ~target:(0, "OID") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"opt_id_some" ~lhs:"opt_id" ~rhs:[ "ID" ]
    ~rules:
      [
        rule ~target:(0, "OID") ~deps:[ (1, "VAL") ] (function
          | [ v ] -> Opt (Some (Str (tok_id v)))
          | _ -> internal "opt_id_some");
      ];
  prod ~name:"init_opt_none" ~lhs:"init_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OLEF") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"init_opt_some" ~lhs:"init_opt" ~rhs:[ ":="; "expr" ]
    ~rules:
      [
        rule ~target:(0, "OLEF") ~deps:[ (2, "LEF") ] (function
          | [ l ] -> Opt (Some l)
          | _ -> internal "init_opt_some");
      ];

  (* ---- declaration item threading ---- *)
  prod ~name:"decl_items_empty" ~lhs:"decl_items" ~rhs:[] ~rules:[];
  prod ~name:"decl_items_more" ~lhs:"decl_items" ~rhs:[ "decl_items"; "decl_item" ]
    ~rules:
      [
        rule ~target:(2, "ENV") ~deps:[ (0, "ENV"); (1, "OUT") ] (function
          | [ env; out ] -> Env (Env.extend_many (as_env env) (as_out out).o_binds)
          | _ -> internal "decl env");
        (* homographs: redeclaring a non-overloadable name in the same
           declarative region is an error (LRM 10.3) *)
        rule ~target:(0, "MSGS")
          ~deps:[ (1, "MSGS"); (2, "MSGS"); (1, "OUT"); (2, "OUT") ]
          (function
            | [ m1; m2; prev; latest ] ->
              let prev_binds = (as_out prev).o_binds in
              let dups =
                List.filter_map
                  (fun (n, d) ->
                    match List.assoc_opt n prev_binds with
                    | Some d' when (not (Denot.overloadable d)) || not (Denot.overloadable d') ->
                      Some
                        (Diag.error ~line:0 "%s is already declared in this region" n)
                    | _ -> None)
                  (as_out latest).o_binds
              in
              Msgs (as_msgs m1 @ as_msgs m2 @ dups)
            | _ -> internal "decl msgs");
        rule ~target:(2, "SLOTBASE") ~deps:[ (0, "SLOTBASE"); (1, "OUT") ] (function
          | [ base; out ] -> Int (as_int base + List.length (as_out out).o_locals)
          | _ -> internal "decl slotbase");
        rule ~target:(2, "SIGBASE") ~deps:[ (0, "SIGBASE"); (1, "OUT") ] (function
          | [ base; out ] -> Int (as_int base + List.length (as_out out).o_signals)
          | _ -> internal "decl sigbase");
      ];
  List.iter
    (fun alt ->
      prod ~name:("decl_item_" ^ alt) ~lhs:"decl_item" ~rhs:[ alt ] ~rules:[])
    [
      "type_decl"; "subtype_decl"; "constant_decl"; "signal_decl"; "variable_decl";
      "subprog_decl"; "subprog_body"; "component_decl"; "attribute_decl";
      "attribute_spec"; "alias_decl"; "use_clause"; "config_spec1";
      "disconnect_spec";
    ];

  (* disconnection specification: disconnect s1, s2 : type after expr ; *)
  prod ~name:"disconnect_spec" ~lhs:"disconnect_spec"
    ~rhs:[ "disconnect"; "name_list"; ":"; "name"; "after"; "expr"; ";" ]
    ~rules:
      (out_rules
         ~deps:[ (0, "LEVEL"); (1, "LINE"); (2, "LEFS"); (6, "LEF") ]
         ~msg_deps:[ 2; 4; 6 ]
         (function
           | [ level; line; names; after ] ->
             Decl_sem.disconnect_spec ~level:(as_int level) ~line:(as_int line)
               (as_lefs names) (as_lef after)
           | _ -> internal "disconnect_spec"));

  (* ---- types ---- *)
  prod ~name:"type_decl" ~lhs:"type_decl" ~rhs:[ "type"; "ID"; "is"; "type_def"; ";" ]
    ~rules:
      (out_rules ~deps:[ (2, "VAL"); (4, "TYDEF") ] ~msg_deps:[ 4 ] (function
        | [ v; tydef ] ->
          let name = tok_id v in
          let ty, extra_binds = (as_tydef tydef) name in
          ({ out_empty with o_binds = ((name, Denot.Dtype ty) :: extra_binds) }, [])
        | _ -> internal "type_decl"));
  prod ~name:"type_def_enum" ~lhs:"type_def" ~rhs:[ "("; "enum_lits"; ")" ]
    ~rules:
      [
        rule ~target:(0, "TYDEF") ~deps:[ (0, "UNITNAME"); (2, "IDS") ] (function
          | [ unit_name; lits ] ->
            Decl_sem.enum_type_def ~unit_name:(as_str unit_name) (as_ids lits)
          | _ -> internal "type_def_enum");
      ];
  prod ~name:"type_def_range" ~lhs:"type_def"
    ~rhs:[ "range"; "simpleexpr"; "direction"; "simpleexpr" ]
    ~rules:
      [
        rule ~target:(0, "TYDEF")
          ~deps:[ (0, "UNITNAME"); (0, "LEVEL"); (1, "LINE"); (2, "LEF"); (3, "DIR"); (4, "LEF") ]
          (function
            | [ unit_name; level; line; lo; d; hi ] ->
              let unit_name = as_str unit_name in
              let level = as_int level in
              let line = as_int line in
              let dir = if as_str d = "to" then Types.To else Types.Downto in
              let lo_lef = as_lef lo and hi_lef = as_lef hi in
              Tydef
                (fun name ->
                  let probe = Expr_eval.eval ~level ~line lo_lef in
                  let base_name = Decl_sem.qualify ~unit_name name in
                  match probe.x_ty.Types.kind with
                  | Types.Kfloat ->
                    let evf lef =
                      match (Expr_eval.eval ~expected:Std.real ~level ~line lef).x_static with
                      | Some v -> Value.as_float v
                      | None -> 0.0
                    in
                    ( {
                        Types.base = base_name;
                        kind = Types.Kfloat;
                        constr = Some (Types.Cfloat_range (evf lo_lef, dir, evf hi_lef));
                      },
                      [] )
                  | _ ->
                    let evi lef =
                      match
                        (Expr_eval.eval ~expected:Std.integer ~level ~line lef).x_static
                      with
                      | Some v -> Value.as_int v
                      | None -> 0
                    in
                    ( {
                        Types.base = base_name;
                        kind = Types.Kint;
                        constr = Some (Types.Crange (evi lo_lef, dir, evi hi_lef));
                      },
                      [] ))
            | _ -> internal "type_def_range");
      ];
  (* user-defined physical types: range constraint + units declarations *)
  prod ~name:"type_def_physical" ~lhs:"type_def"
    ~rhs:[ "range"; "simpleexpr"; "direction"; "simpleexpr"; "units_part" ]
    ~rules:
      [
        rule ~target:(0, "TYDEF")
          ~deps:
            [
              (0, "UNITNAME"); (0, "LEVEL"); (1, "LINE"); (2, "LEF"); (3, "DIR");
              (4, "LEF"); (5, "PUNITS");
            ]
          (function
            | [ unit_name; level; line; lo; d; hi; punits ] ->
              let unit_name = as_str unit_name in
              let level = as_int level in
              let line = as_int line in
              let dir = if as_str d = "to" then Types.To else Types.Downto in
              let lo_lef = as_lef lo and hi_lef = as_lef hi in
              let decls = as_phys_units punits in
              Tydef
                (fun name ->
                  let evi lef =
                    match
                      (Expr_eval.eval ~expected:Std.integer ~level ~line lef).x_static
                    with
                    | Some v -> Value.as_int v
                    | None -> 0
                  in
                  (* resolve secondary units left to right *)
                  let scales = Hashtbl.create 8 in
                  let units =
                    List.map
                      (fun (uname, mult, base, _uline) ->
                        let scale =
                          match base with
                          | None -> 1 (* the primary unit *)
                          | Some b -> (
                            match Hashtbl.find_opt scales b with
                            | Some s -> mult * s
                            | None -> mult)
                        in
                        Hashtbl.replace scales uname scale;
                        (uname, scale))
                      decls
                  in
                  let ty =
                    {
                      Types.base = Decl_sem.qualify ~unit_name name;
                      kind = Types.Kphys units;
                      constr = Some (Types.Crange (evi lo_lef, dir, evi hi_lef));
                    }
                  in
                  let binds =
                    List.map
                      (fun (uname, scale) ->
                        (uname, Denot.Dphys_unit { ty; scale; image = uname }))
                      units
                  in
                  (ty, binds))
            | _ -> internal "type_def_physical");
      ];
  prod ~name:"units_part" ~lhs:"units_part" ~rhs:[ "units"; "unit_decls"; "end"; "units" ]
    ~rules:[ copy ~target:(0, "PUNITS") ~from:(2, "PUNITS") ];
  prod ~name:"unit_decls_primary" ~lhs:"unit_decls" ~rhs:[ "ID"; ";" ]
    ~rules:
      [
        rule ~target:(0, "PUNITS") ~deps:[ (1, "VAL"); (1, "LINE") ] (function
          | [ v; line ] -> Phys_units [ (tok_id v, 1, None, as_int line) ]
          | _ -> internal "unit_decls_primary");
      ];
  prod ~name:"unit_decls_secondary" ~lhs:"unit_decls"
    ~rhs:[ "unit_decls"; "ID"; "="; "INT"; "ID"; ";" ]
    ~rules:
      [
        rule ~target:(0, "PUNITS")
          ~deps:[ (1, "PUNITS"); (2, "VAL"); (2, "LINE"); (4, "VAL"); (5, "VAL") ]
          (function
            | [ prev; name_v; line; mult_v; base_v ] ->
              let mult =
                match as_tok mult_v with
                | Token.Tint n -> n
                | _ -> internal "unit multiplier"
              in
              Phys_units
                (as_phys_units prev
                @ [ (tok_id name_v, mult, Some (tok_id base_v), as_int line) ])
            | _ -> internal "unit_decls_secondary");
      ];

  prod ~name:"type_def_array" ~lhs:"type_def"
    ~rhs:[ "array"; "("; "index_specs"; ")"; "of"; "subtype_ind" ]
    ~rules:
      [
        rule ~target:(0, "TYDEF")
          ~deps:[ (0, "UNITNAME"); (0, "LEVEL"); (1, "LINE"); (3, "IXS"); (6, "STY") ]
          (function
            | [ unit_name; level; line; ixs; sty ] ->
              let unit_name = as_str unit_name in
              let level = as_int level in
              let line = as_int line in
              let elem_ty, _ = as_sty sty in
              Tydef
                (fun name ->
                  let base_name = Decl_sem.qualify ~unit_name name in
                  let one_dim ~base_name elem_ty spec =
                    match as_pair spec with
                    | Str "unconstrained", Lef mark_lef ->
                      let rs = Decl_sem.resolve_subtype ~level ~line mark_lef in
                      {
                        Types.base = base_name;
                        kind = Types.Karray { index = rs.Decl_sem.rs_ty; elem = elem_ty };
                        constr = None;
                      }
                    | Str "constrained", Rng rng ->
                      let (lo, d, hi), ity, _ =
                        match rng with
                        | `Bounds (lo_lef, d, hi_lef) ->
                          let lo = Expr_eval.eval ~level ~line lo_lef in
                          let hi = Expr_eval.eval ~level ~line hi_lef in
                          ((lo.x_code, d, hi.x_code), Some lo.x_ty, [])
                        | `Lef lef -> Expr_eval.eval_range ~level ~line lef
                      in
                      let static e =
                        match Const_eval.eval_opt Const_eval.empty e with
                        | Some v -> Value.as_int v
                        | None -> 0
                      in
                      let index_ty = Option.value ity ~default:Std.integer in
                      {
                        Types.base = base_name;
                        kind = Types.Karray { index = index_ty; elem = elem_ty };
                        constr = Some (Types.Crange (static lo, d, static hi));
                      }
                    | _ -> internal "type_def_array ixs"
                  in
                  match as_plist ixs with
                  | [ single ] -> (one_dim ~base_name elem_ty single, [])
                  | specs ->
                    (* multi-dimensional arrays lower to nested arrays:
                       m(i, j) becomes m(i)(j); inner dimensions get
                       distinct anonymous base names for type identity *)
                    let n = List.length specs in
                    let ty, _ =
                      List.fold_right
                        (fun spec (elem, dim) ->
                          let base_name =
                            if dim = 1 then base_name
                            else Printf.sprintf "%s%%DIM%d%%" base_name dim
                          in
                          (one_dim ~base_name elem spec, dim - 1))
                        specs (elem_ty, n)
                    in
                    (ty, []))
            | _ -> internal "type_def_array");
      ];
  (* access type: type ptr is access T (LRM 3.3) *)
  prod ~name:"type_def_access" ~lhs:"type_def" ~rhs:[ "access"; "subtype_ind" ]
    ~rules:
      [
        rule ~target:(0, "TYDEF") ~deps:[ (0, "UNITNAME"); (2, "STY") ] (function
          | [ unit_name; sty ] ->
            let designated, _ = as_sty sty in
            Tydef
              (fun name ->
                ( {
                    Types.base = Decl_sem.qualify ~unit_name:(as_str unit_name) name;
                    kind = Types.Kaccess designated;
                    constr = None;
                  },
                  [] ))
          | _ -> internal "type_def_access");
      ];
  prod ~name:"type_def_record" ~lhs:"type_def" ~rhs:[ "record"; "record_elems"; "end"; "record" ]
    ~rules:
      [
        rule ~target:(0, "TYDEF") ~deps:[ (0, "UNITNAME"); (2, "IFACES") ] (function
          | [ unit_name; ifaces ] ->
            let fields =
              List.concat_map
                (fun i -> List.map (fun (n, _) -> (n, i.if_ty)) i.if_names)
                (as_ifaces ifaces)
            in
            Decl_sem.record_type_def ~unit_name:(as_str unit_name) ~fields
          | _ -> internal "type_def_record");
      ];
  prod ~name:"index_specs_one" ~lhs:"index_specs" ~rhs:[ "index_spec" ]
    ~rules:
      [
        rule ~target:(0, "IXS") ~deps:[ (1, "IXS") ] (function
          | [ x ] -> Plist [ x ]
          | _ -> internal "index_specs_one");
      ];
  prod ~name:"index_specs_more" ~lhs:"index_specs"
    ~rhs:[ "index_specs"; ","; "index_spec" ]
    ~rules:
      [
        rule ~target:(0, "IXS") ~deps:[ (1, "IXS"); (3, "IXS") ] (function
          | [ xs; x ] -> Plist (as_plist xs @ [ x ])
          | _ -> internal "index_specs_more");
      ];
  prod ~name:"index_spec_range" ~lhs:"index_spec" ~rhs:[ "discrete_range" ]
    ~rules:
      [
        rule ~target:(0, "IXS") ~deps:[ (1, "RNG") ] (function
          | [ r ] -> Pair (Str "constrained", r)
          | _ -> internal "index_spec_range");
      ];
  prod ~name:"index_spec_box" ~lhs:"index_spec" ~rhs:[ "name"; "range"; "<>" ]
    ~rules:
      [
        rule ~target:(0, "IXS") ~deps:[ (1, "LEF") ] (function
          | [ l ] -> Pair (Str "unconstrained", Lef (as_lef l))
          | _ -> internal "index_spec_box");
      ];
  prod ~name:"record_elems_one" ~lhs:"record_elems" ~rhs:[ "record_elem" ] ~rules:[];
  prod ~name:"record_elems_more" ~lhs:"record_elems" ~rhs:[ "record_elems"; "record_elem" ]
    ~rules:
      [
        rule ~target:(0, "IFACES") ~deps:[ (1, "IFACES"); (2, "IFACES") ] (function
          | [ a; c ] -> Ifaces (as_ifaces a @ as_ifaces c)
          | _ -> internal "record_elems_more");
      ];
  prod ~name:"record_elem" ~lhs:"record_elem" ~rhs:[ "id_list"; ":"; "subtype_ind"; ";" ]
    ~rules:
      [
        rule ~target:(0, "IFACES") ~deps:[ (1, "IDS"); (3, "STY") ] (function
          | [ ids; sty ] ->
            let ty, _ = as_sty sty in
            Ifaces
              [
                {
                  if_names = as_ids ids;
                  if_class = None;
                  if_mode = None;
                  if_ty = ty;
                  if_resolution = None;
                  if_default = None;
                  if_bus = false;
                };
              ]
          | _ -> internal "record_elem");
      ];
  prod ~name:"enum_lits_one" ~lhs:"enum_lits" ~rhs:[ "enum_lit" ] ~rules:[];
  prod ~name:"enum_lits_more" ~lhs:"enum_lits" ~rhs:[ "enum_lits"; ","; "enum_lit" ]
    ~rules:
      [
        rule ~target:(0, "IDS") ~deps:[ (1, "IDS"); (3, "IDS") ] (function
          | [ a; c ] -> Ids (as_ids a @ as_ids c)
          | _ -> internal "enum_lits_more");
      ];
  prod ~name:"enum_lit_id" ~lhs:"enum_lit" ~rhs:[ "ID" ]
    ~rules:
      [
        rule ~target:(0, "IDS") ~deps:[ (1, "VAL"); (1, "LINE") ] (function
          | [ v; line ] -> Ids [ (tok_id v, as_int line) ]
          | _ -> internal "enum_lit_id");
      ];
  prod ~name:"enum_lit_char" ~lhs:"enum_lit" ~rhs:[ "CHAR" ]
    ~rules:
      [
        rule ~target:(0, "IDS") ~deps:[ (1, "VAL"); (1, "LINE") ] (function
          | [ v; line ] -> (
            match as_tok v with
            | Token.Tchar image -> Ids [ (image, as_int line) ]
            | _ -> internal "CHAR token")
          | _ -> internal "enum_lit_char");
      ];

  (* ---- subtypes ---- *)
  prod ~name:"subtype_decl" ~lhs:"subtype_decl" ~rhs:[ "subtype"; "ID"; "is"; "subtype_ind"; ";" ]
    ~rules:
      (out_rules ~deps:[ (2, "VAL"); (4, "STY") ] ~msg_deps:[ 4 ] (function
        | [ v; sty ] ->
          let name = tok_id v in
          let ty, _ = as_sty sty in
          ({ out_empty with o_binds = [ (name, Denot.Dsubtype ty) ] }, [])
        | _ -> internal "subtype_decl"));
  let sty_rules ~deps ~msg_deps f =
    [
      rule ~target:(0, "SRES") ~deps (fun vs ->
          let rs = f vs in
          Pair
            ( Sty { ty = rs.Decl_sem.rs_ty; resolution = rs.Decl_sem.rs_resolution },
              Msgs rs.Decl_sem.rs_msgs ));
      rule ~target:(0, "STY") ~deps:[ (0, "SRES") ] fst_of;
      rule ~target:(0, "MSGS")
        ~deps:((0, "SRES") :: List.map (fun p -> (p, "MSGS")) msg_deps)
        snd_plus_msgs;
    ]
  in
  let lef_line lef = match lef with t :: _ -> t.Lef.l_line | [] -> 0 in
  prod ~name:"subtype_ind_mark" ~lhs:"subtype_ind" ~rhs:[ "name" ]
    ~rules:
      (sty_rules ~deps:[ (0, "LEVEL"); (1, "LEF") ] ~msg_deps:[ 1 ] (function
        | [ level; lef ] ->
          let lef = as_lef lef in
          Decl_sem.resolve_subtype ~level:(as_int level) ~line:(lef_line lef) lef
        | _ -> internal "subtype_ind_mark"));
  prod ~name:"subtype_ind_resolved" ~lhs:"subtype_ind" ~rhs:[ "name"; "name" ]
    ~rules:
      (sty_rules
         ~deps:[ (0, "LEVEL"); (1, "LEF"); (2, "LEF") ]
         ~msg_deps:[ 1; 2 ]
         (function
           | [ level; rlef; mark_lef ] ->
             let lef = as_lef rlef @ as_lef mark_lef in
             Decl_sem.resolve_subtype ~level:(as_int level) ~line:(lef_line lef) lef
           | _ -> internal "subtype_ind_resolved"));
  prod ~name:"subtype_ind_range" ~lhs:"subtype_ind"
    ~rhs:[ "name"; "range"; "simpleexpr"; "direction"; "simpleexpr" ]
    ~rules:
      (sty_rules
         ~deps:[ (0, "LEVEL"); (1, "LEF"); (3, "LEF"); (4, "DIR"); (5, "LEF") ]
         ~msg_deps:[ 1; 3; 5 ]
         (function
           | [ level; mark; lo; d; hi ] ->
             let dir = if as_str d = "to" then Types.To else Types.Downto in
             Decl_sem.resolve_range_subtype ~level:(as_int level)
               ~line:(lef_line (as_lef mark)) (as_lef mark) (as_lef lo) dir (as_lef hi)
           | _ -> internal "subtype_ind_range"));

  (* ---- objects ---- *)
  prod ~name:"constant_decl" ~lhs:"constant_decl"
    ~rhs:[ "constant"; "id_list"; ":"; "subtype_ind"; "init_opt"; ";" ]
    ~rules:
      (out_rules
         ~deps:(ctx_deps @ [ (1, "LINE"); (2, "IDS"); (4, "STY"); (5, "OLEF") ])
         ~msg_deps:[ 4 ]
         (fun vs ->
           let cx, rest = ctx_of vs in
           match rest with
           | [ line; ids; sty; init ] ->
             let ty, _ = as_sty sty in
             let init_lef =
               match as_opt init with
               | Some l -> as_lef l
               | None -> []
             in
             Decl_sem.constant_decl (object_context cx) ~line:(as_int line) (as_ids ids) ty
               init_lef
           | _ -> internal "constant_decl"));
  prod ~name:"signal_decl" ~lhs:"signal_decl"
    ~rhs:[ "signal"; "id_list"; ":"; "subtype_ind"; "sig_kind_opt"; "init_opt"; ";" ]
    ~rules:
      (out_rules
         ~deps:(ctx_deps @ [ (1, "LINE"); (2, "IDS"); (4, "SRES"); (5, "SKIND"); (6, "OLEF") ])
         ~msg_deps:[ 4 ]
         (fun vs ->
           let cx, rest = ctx_of vs in
           match rest with
           | [ line; ids; sres; skind; init ] ->
             let sty_v, _ = as_pair sres in
             let ty, resolution = as_sty sty_v in
             let rs =
               { Decl_sem.rs_ty = ty; rs_resolution = resolution; rs_msgs = [] }
             in
             let kind =
               match as_str skind with
               | "bus" -> `Bus
               | "register" -> `Register
               | _ -> `Plain
             in
             let init_lef =
               match as_opt init with
               | Some l -> as_lef l
               | None -> []
             in
             Decl_sem.signal_decl (object_context cx) ~line:(as_int line) (as_ids ids) rs ~kind
               init_lef
           | _ -> internal "signal_decl"));
  prod ~name:"sig_kind_none" ~lhs:"sig_kind_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "SKIND") ~deps:[] (fun _ -> Str "plain") ];
  prod ~name:"sig_kind_bus" ~lhs:"sig_kind_opt" ~rhs:[ "bus" ]
    ~rules:[ rule ~target:(0, "SKIND") ~deps:[] (fun _ -> Str "bus") ];
  prod ~name:"sig_kind_register" ~lhs:"sig_kind_opt" ~rhs:[ "register" ]
    ~rules:[ rule ~target:(0, "SKIND") ~deps:[] (fun _ -> Str "register") ];
  prod ~name:"variable_decl" ~lhs:"variable_decl"
    ~rhs:[ "variable"; "id_list"; ":"; "subtype_ind"; "init_opt"; ";" ]
    ~rules:
      (out_rules
         ~deps:(ctx_deps @ [ (1, "LINE"); (2, "IDS"); (4, "STY"); (5, "OLEF") ])
         ~msg_deps:[ 4 ]
         (fun vs ->
           let cx, rest = ctx_of vs in
           match rest with
           | [ line; ids; sty; init ] ->
             let ty, _ = as_sty sty in
             let init_lef =
               match as_opt init with
               | Some l -> as_lef l
               | None -> []
             in
             Decl_sem.variable_decl (object_context cx) ~line:(as_int line) (as_ids ids) ty
               init_lef
           | _ -> internal "variable_decl"));

  (* ---- interfaces ---- *)
  prod ~name:"iface_list_one" ~lhs:"iface_list" ~rhs:[ "iface_elem" ] ~rules:[];
  prod ~name:"iface_list_more" ~lhs:"iface_list" ~rhs:[ "iface_list"; ";"; "iface_elem" ]
    ~rules:
      [
        rule ~target:(0, "IFACES") ~deps:[ (1, "IFACES"); (3, "IFACES") ] (function
          | [ a; c ] -> Ifaces (as_ifaces a @ as_ifaces c)
          | _ -> internal "iface_list_more");
      ];
  prod ~name:"iface_elem" ~lhs:"iface_elem"
    ~rhs:[ "class_opt"; "id_list"; ":"; "mode_opt"; "subtype_ind"; "init_opt" ]
    ~rules:
      [
        rule ~target:(0, "IFACES")
          ~deps:
            [
              (0, "LEVEL"); (1, "OCLS"); (2, "IDS"); (4, "OMODE"); (5, "SRES"); (6, "OLEF");
            ]
          (function
            | [ level; ocls; ids; omode; sres; init ] ->
              let sty_v, _ = as_pair sres in
              let ty, resolution = as_sty sty_v in
              let if_class =
                match as_opt ocls with
                | Some (Str "signal") -> Some Denot.Csignal
                | Some (Str "constant") -> Some Denot.Cconstant
                | Some (Str "variable") -> Some Denot.Cvariable
                | _ -> None
              in
              let if_mode =
                match as_opt omode with
                | Some (Str "in") -> Some Kir.Arg_in
                | Some (Str "out") | Some (Str "buffer") -> Some Kir.Arg_out
                | Some (Str "inout") -> Some Kir.Arg_inout
                | _ -> None
              in
              let ids = as_ids ids in
              let line = match ids with (_, l) :: _ -> l | [] -> 0 in
              let if_default, _msgs =
                match as_opt init with
                | Some l ->
                  Decl_sem.eval_default ~level:(as_int level) ~line ~ty (as_lef l)
                | None -> (None, [])
              in
              Ifaces
                [
                  {
                    if_names = ids;
                    if_class;
                    if_mode;
                    if_ty = ty;
                    if_resolution = resolution;
                    if_default;
                    if_bus = false;
                  };
                ]
            | _ -> internal "iface_elem");
        rule ~target:(0, "MSGS") ~deps:[ (5, "MSGS") ] (function
          | [ m ] -> Msgs (as_msgs m)
          | _ -> internal "iface msgs");
      ];
  prod ~name:"class_opt_none" ~lhs:"class_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OCLS") ~deps:[] (fun _ -> Opt None) ];
  List.iter
    (fun kw ->
      prod ~name:("class_opt_" ^ kw) ~lhs:"class_opt" ~rhs:[ kw ]
        ~rules:[ rule ~target:(0, "OCLS") ~deps:[] (fun _ -> Opt (Some (Str kw))) ])
    [ "signal"; "constant"; "variable" ];
  prod ~name:"mode_opt_none" ~lhs:"mode_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OMODE") ~deps:[] (fun _ -> Opt None) ];
  List.iter
    (fun kw ->
      prod ~name:("mode_opt_" ^ kw) ~lhs:"mode_opt" ~rhs:[ kw ]
        ~rules:[ rule ~target:(0, "OMODE") ~deps:[] (fun _ -> Opt (Some (Str kw))) ])
    [ "in"; "out"; "inout"; "buffer" ];

  (* ---- subprograms ---- *)
  prod ~name:"subprog_spec_function" ~lhs:"subprog_spec"
    ~rhs:[ "function"; "ID"; "params_opt"; "return"; "name" ]
    ~rules:
      [
        rule ~target:(0, "SPEC")
          ~deps:[ (0, "LEVEL"); (1, "LINE"); (2, "VAL"); (3, "IFACES"); (5, "LEF") ]
          (function
            | [ level; line; v; params; ret_lef ] ->
              let rs =
                Decl_sem.resolve_subtype ~level:(as_int level) ~line:(as_int line)
                  (as_lef ret_lef)
              in
              Spec
                {
                  sp_kind = `Function;
                  sp_name = tok_id v;
                  sp_line = as_int line;
                  sp_params = as_ifaces params;
                  sp_ret = Some rs.Decl_sem.rs_ty;
                }
            | _ -> internal "subprog_spec_function");
      ];
  (* operator functions: [function "+" (a, b : vec) return vec] (LRM 2.1) *)
  prod ~name:"subprog_spec_op_function" ~lhs:"subprog_spec"
    ~rhs:[ "function"; "STRING"; "params_opt"; "return"; "name" ]
    ~rules:
      [
        rule ~target:(0, "SPEC")
          ~deps:[ (0, "LEVEL"); (2, "LINE"); (2, "VAL"); (3, "IFACES"); (5, "LEF") ]
          (function
            | [ level; line; v; params; ret_lef ] ->
              let sym =
                match as_tok v with
                | Token.Tstring s -> s
                | _ -> internal "STRING token"
              in
              let rs =
                Decl_sem.resolve_subtype ~level:(as_int level) ~line:(as_int line)
                  (as_lef ret_lef)
              in
              Spec
                {
                  sp_kind = `Function;
                  sp_name = Lef.operator_key sym;
                  sp_line = as_int line;
                  sp_params = as_ifaces params;
                  sp_ret = Some rs.Decl_sem.rs_ty;
                }
            | _ -> internal "subprog_spec_op_function");
        rule ~target:(0, "MSGS")
          ~deps:[ (2, "VAL"); (2, "LINE"); (3, "IFACES"); (3, "MSGS"); (5, "MSGS") ]
          (function
            | [ v; line; params; m1; m2 ] ->
              let line = as_int line in
              let sym =
                match as_tok v with
                | Token.Tstring s -> String.lowercase_ascii s
                | _ -> internal "STRING token"
              in
              let arity =
                List.fold_left
                  (fun n (i : Pval.iface) -> n + List.length i.Pval.if_names)
                  0 (as_ifaces params)
              in
              let own =
                if not (List.mem sym Lef.operator_symbols) then
                  [ Diag.error ~line "\"%s\" is not an operator symbol" sym ]
                else begin
                  let unary_ok = List.mem sym [ "+"; "-"; "abs"; "not" ] in
                  let binary_ok = not (List.mem sym [ "abs"; "not" ]) in
                  if (arity = 1 && unary_ok) || (arity = 2 && binary_ok) then []
                  else
                    [
                      Diag.error ~line
                        "operator \"%s\" cannot be declared with %d parameter%s" sym
                        arity
                        (if arity = 1 then "" else "s");
                    ]
                end
              in
              Msgs (as_msgs m1 @ as_msgs m2 @ own)
            | _ -> internal "subprog_spec_op_function MSGS");
      ];
  prod ~name:"subprog_spec_procedure" ~lhs:"subprog_spec"
    ~rhs:[ "procedure"; "ID"; "params_opt" ]
    ~rules:
      [
        rule ~target:(0, "SPEC") ~deps:[ (1, "LINE"); (2, "VAL"); (3, "IFACES") ] (function
          | [ line; v; params ] ->
            Spec
              {
                sp_kind = `Procedure;
                sp_name = tok_id v;
                sp_line = as_int line;
                sp_params = as_ifaces params;
                sp_ret = None;
              }
          | _ -> internal "subprog_spec_procedure");
      ];
  prod ~name:"params_opt_none" ~lhs:"params_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "IFACES") ~deps:[] (fun _ -> Ifaces []) ];
  prod ~name:"params_opt_some" ~lhs:"params_opt" ~rhs:[ "("; "iface_list"; ")" ] ~rules:[];
  prod ~name:"subprog_decl" ~lhs:"subprog_decl" ~rhs:[ "subprog_spec"; ";" ]
    ~rules:
      (out_rules ~deps:[ (0, "UNITNAME"); (1, "SPEC") ] ~msg_deps:[ 1 ] (function
        | [ unit_name; spec ] ->
          let spec = as_spec spec in
          let s = Decl_sem.subprog_sig ~unit_name:(as_str unit_name) spec in
          ( { out_empty with o_binds = [ (s.Denot.ss_name, Denot.Dsubprog s) ] },
            Decl_sem.validate_spec ~line:spec.sp_line s )
        | _ -> internal "subprog_decl"));
  prod ~name:"subprog_body" ~lhs:"subprog_body"
    ~rhs:[ "subprog_spec"; "is"; "decl_items"; "begin"; "stmts"; "end"; "opt_id"; ";" ]
    ~rules:
      [
        (* inner environment: own signature (recursion) + parameters *)
        rule ~target:(3, "ENV")
          ~deps:[ (0, "ENV"); (0, "LEVEL"); (0, "UNITNAME"); (1, "SPEC") ]
          (function
            | [ env; level; unit_name; spec ] ->
              let s = Decl_sem.subprog_sig ~unit_name:(as_str unit_name) (as_spec spec) in
              let env = Env.extend (as_env env) s.Denot.ss_name (Denot.Dsubprog s) in
              Env (Env.extend_many env (Decl_sem.param_binds ~level:(as_int level + 1) s))
            | _ -> internal "subprog env");
        rule ~target:(3, "LEVEL") ~deps:[ (0, "LEVEL") ] (function
          | [ l ] -> Int (as_int l + 1)
          | _ -> internal "subprog level");
        rule ~target:(3, "SLOTBASE") ~deps:[ (1, "SPEC") ] (function
          | [ spec ] ->
            Int
              (List.fold_left
                 (fun n i -> n + List.length i.if_names)
                 0 (as_spec spec).sp_params)
          | _ -> internal "subprog slotbase");
        rule ~target:(3, "CTX") ~deps:[] (fun _ -> Str "subprog");
        rule ~target:(5, "ENV") ~deps:[ (3, "ENV"); (3, "OUT") ] (function
          | [ env; out ] -> Env (Env.extend_many (as_env env) (as_out out).o_binds)
          | _ -> internal "subprog stmt env");
        rule ~target:(5, "LEVEL") ~deps:[ (3, "LEVEL") ] (function
          | [ l ] -> l
          | _ -> internal "subprog stmt level");
        rule ~target:(5, "CTX") ~deps:[] (fun _ -> Str "subprog");
        rule ~target:(5, "LOOPDEPTH") ~deps:[] (fun _ -> Int 0);
        rule ~target:(5, "RETTY") ~deps:[ (1, "SPEC") ] (function
          | [ spec ] -> (
            match (as_spec spec).sp_ret with
            | Some ty -> Opt (Some (Sty { ty; resolution = None }))
            | None -> Opt None)
          | _ -> internal "subprog retty");
        rule ~target:(0, "OUT")
          ~deps:[ (0, "UNITNAME"); (0, "LEVEL"); (1, "SPEC"); (3, "OUT"); (5, "CODE") ]
          (function
            | [ unit_name; level; spec; out; code ] ->
              let spec = as_spec spec in
              let s = Decl_sem.subprog_sig ~unit_name:(as_str unit_name) spec in
              let out = as_out out in
              let params =
                List.map
                  (fun (p : Denot.param) ->
                    { Kir.l_name = p.Denot.p_name; l_ty = p.Denot.p_ty; l_init = p.Denot.p_default })
                  s.Denot.ss_params
              in
              let subp =
                {
                  Kir.sub_name = s.Denot.ss_mangled;
                  sub_kind = spec.sp_kind;
                  sub_params = params;
                  sub_param_modes = List.map (fun (p : Denot.param) -> p.Denot.p_mode) s.Denot.ss_params;
                  sub_locals = out.o_locals;
                  sub_ret = spec.sp_ret;
                  sub_level = as_int level + 1;
                  sub_body = as_stmts code;
                }
              in
              Out
                {
                  out_empty with
                  o_binds = [ (s.Denot.ss_name, Denot.Dsubprog s) ];
                  o_subprograms = out.o_subprograms @ [ subp ];
                  o_deps = out.o_deps;
                }
            | _ -> internal "subprog out");
        rule ~target:(0, "MSGS")
          ~deps:
            [ (0, "UNITNAME"); (1, "SPEC"); (1, "MSGS"); (3, "MSGS"); (5, "MSGS"); (7, "MSGS") ]
          (function
            | [ unit_name; spec; m1; m3; m5; m7 ] ->
              let spec = as_spec spec in
              let s = Decl_sem.subprog_sig ~unit_name:(as_str unit_name) spec in
              Msgs
                (as_msgs m1 @ as_msgs m3 @ as_msgs m5 @ as_msgs m7
                @ Decl_sem.validate_spec ~line:spec.sp_line s)
            | _ -> internal "subprog body msgs");
      ];

  (* ---- components, attributes, aliases ---- *)
  prod ~name:"generic_clause_none" ~lhs:"generic_clause_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "IFACES") ~deps:[] (fun _ -> Ifaces []) ];
  prod ~name:"generic_clause_some" ~lhs:"generic_clause_opt"
    ~rhs:[ "generic"; "("; "iface_list"; ")"; ";" ]
    ~rules:[];
  prod ~name:"port_clause_none" ~lhs:"port_clause_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "IFACES") ~deps:[] (fun _ -> Ifaces []) ];
  prod ~name:"port_clause_some" ~lhs:"port_clause_opt"
    ~rhs:[ "port"; "("; "iface_list"; ")"; ";" ]
    ~rules:[];
  prod ~name:"component_decl" ~lhs:"component_decl"
    ~rhs:[ "component"; "ID"; "generic_clause_opt"; "port_clause_opt"; "end"; "component"; ";" ]
    ~rules:
      (out_rules
         ~deps:[ (1, "LINE"); (2, "VAL"); (3, "IFACES"); (4, "IFACES") ]
         ~msg_deps:[ 3; 4 ]
         (function
           | [ line; v; generics; ports ] ->
             Decl_sem.component_decl ~line:(as_int line) ~name:(tok_id v)
               ~generics:(as_ifaces generics) ~ports:(as_ifaces ports)
           | _ -> internal "component_decl"));
  prod ~name:"attribute_decl" ~lhs:"attribute_decl"
    ~rhs:[ "attribute"; "ID"; ":"; "name"; ";" ]
    ~rules:
      (out_rules
         ~deps:[ (0, "LEVEL"); (1, "LINE"); (2, "VAL"); (4, "LEF") ]
         ~msg_deps:[ 4 ]
         (function
           | [ level; line; v; ty_lef ] ->
             Decl_sem.attribute_decl ~line:(as_int line) ~name:(tok_id v) (as_lef ty_lef)
               ~level:(as_int level)
           | _ -> internal "attribute_decl"));
  prod ~name:"attribute_spec" ~lhs:"attribute_spec"
    ~rhs:[ "attribute"; "ID"; "of"; "ID"; ":"; "entity_class"; "is"; "expr"; ";" ]
    ~rules:
      (out_rules
         ~deps:[ (0, "ENV"); (0, "LEVEL"); (1, "LINE"); (2, "VAL"); (4, "VAL"); (8, "LEF") ]
         ~msg_deps:[ 8 ]
         (function
           | [ env; level; line; attr_v; of_v; value_lef ] ->
             Decl_sem.attribute_spec ~env:(as_env env) ~line:(as_int line)
               ~attr:(tok_id attr_v) ~of_name:(tok_id of_v) (as_lef value_lef)
               ~level:(as_int level)
           | _ -> internal "attribute_spec"));
  List.iter
    (fun kw -> prod ~name:("entity_class_" ^ kw) ~lhs:"entity_class" ~rhs:[ kw ] ~rules:[])
    [ "signal"; "constant"; "variable"; "type"; "entity"; "architecture"; "label"; "component" ];
  prod ~name:"alias_decl" ~lhs:"alias_decl"
    ~rhs:[ "alias"; "ID"; ":"; "subtype_ind"; "is"; "name"; ";" ]
    ~rules:
      (out_rules
         ~deps:[ (0, "ENV"); (1, "LINE"); (2, "VAL"); (6, "BASE"); (6, "LEF") ]
         ~msg_deps:[ 4; 6 ]
         (function
           | [ env; line; v; target_base; target_lef ] ->
             Decl_sem.alias_decl ~env:(as_env env) ~line:(as_int line) ~name:(tok_id v)
               ~target:(as_str target_base) ~target_lef:(as_lef target_lef)
           | _ -> internal "alias_decl"));

  (* ---- use / library clauses ---- *)
  prod ~name:"use_clause" ~lhs:"use_clause" ~rhs:[ "use"; "use_names"; ";" ] ~rules:[];
  prod ~name:"use_names_one" ~lhs:"use_names" ~rhs:[ "use_name" ]
    ~rules:
      (out_rules ~deps:[ (1, "UPARTS"); (1, "LINE1") ] ~msg_deps:[] (function
        | [ parts; line ] -> (
          match as_pair parts with
          | Ids ids, Bool all ->
            Decl_sem.resolve_use ~line:(as_int line) (List.map fst ids) ~all
          | _ -> internal "use parts")
        | _ -> internal "use_names_one"));
  prod ~name:"use_names_more" ~lhs:"use_names" ~rhs:[ "use_names"; ","; "use_name" ]
    ~rules:
      (out_rules
         ~deps:[ (1, "OUT"); (3, "UPARTS"); (3, "LINE1") ]
         ~msg_deps:[ 1 ]
         (function
           | [ prev; parts; line ] -> (
             match as_pair parts with
             | Ids ids, Bool all ->
               let out, msgs =
                 Decl_sem.resolve_use ~line:(as_int line) (List.map fst ids) ~all
               in
               (out_append (as_out prev) out, msgs)
             | _ -> internal "use parts")
           | _ -> internal "use_names_more"));
  prod ~name:"use_name_id" ~lhs:"use_name" ~rhs:[ "ID" ]
    ~rules:
      [
        rule ~target:(0, "UPARTS") ~deps:[ (1, "VAL"); (1, "LINE") ] (function
          | [ v; line ] -> Pair (Ids [ (tok_id v, as_int line) ], Bool false)
          | _ -> internal "use_name_id");
        rule ~target:(0, "LINE1") ~deps:[ (1, "LINE") ] (function
          | [ l ] -> l
          | _ -> internal "use line");
      ];
  prod ~name:"use_name_sel" ~lhs:"use_name" ~rhs:[ "use_name"; "."; "ID" ]
    ~rules:
      [
        rule ~target:(0, "UPARTS") ~deps:[ (1, "UPARTS"); (3, "VAL"); (3, "LINE") ] (function
          | [ parts; v; line ] -> (
            match as_pair parts with
            | Ids ids, Bool _ -> Pair (Ids (ids @ [ (tok_id v, as_int line) ]), Bool false)
            | _ -> internal "use parts")
          | _ -> internal "use_name_sel");
        rule ~target:(0, "LINE1") ~deps:[ (1, "LINE1") ] (function
          | [ l ] -> l
          | _ -> internal "use line");
      ];
  (* selective import of an operator function: use work.pkg."+" *)
  prod ~name:"use_name_op" ~lhs:"use_name" ~rhs:[ "use_name"; "."; "STRING" ]
    ~rules:
      [
        rule ~target:(0, "UPARTS") ~deps:[ (1, "UPARTS"); (3, "VAL"); (3, "LINE") ] (function
          | [ parts; v; line ] -> (
            let key =
              match as_tok v with
              | Token.Tstring sym -> Lef.operator_key sym
              | _ -> internal "STRING token"
            in
            match as_pair parts with
            | Ids ids, Bool _ -> Pair (Ids (ids @ [ (key, as_int line) ]), Bool false)
            | _ -> internal "use parts")
          | _ -> internal "use_name_op");
        rule ~target:(0, "LINE1") ~deps:[ (1, "LINE1") ] (function
          | [ l ] -> l
          | _ -> internal "use line");
      ];
  prod ~name:"use_name_all" ~lhs:"use_name" ~rhs:[ "use_name"; "."; "all" ]
    ~rules:
      [
        rule ~target:(0, "UPARTS") ~deps:[ (1, "UPARTS") ] (function
          | [ parts ] -> (
            match as_pair parts with
            | Ids ids, Bool _ -> Pair (Ids ids, Bool true)
            | _ -> internal "use parts")
          | _ -> internal "use_name_all");
        rule ~target:(0, "LINE1") ~deps:[ (1, "LINE1") ] (function
          | [ l ] -> l
          | _ -> internal "use line");
      ];

  (* ---- configuration specifications ---- *)
  prod ~name:"config_spec1" ~lhs:"config_spec1"
    ~rhs:[ "for"; "inst_spec"; ":"; "ID"; "binding_ind"; ";" ]
    ~rules:
      (out_rules
         ~deps:[ (1, "LINE"); (2, "ISPEC"); (4, "VAL"); (5, "BIND") ]
         ~msg_deps:[]
         (function
           | [ line; ispec; comp_v; bind ] ->
             let scope =
               match as_pair ispec with
               | Str "labels", Ids ids -> `Labels (List.map fst ids)
               | Str "all", _ -> `All
               | _ -> `Others
             in
             let binding =
               match as_opt bind with
               | Some (Pair (Ids parts, oarch)) ->
                 Some
                   ( List.map fst parts,
                     match oarch with
                     | Opt (Some (Str a)) -> Some a
                     | _ -> None )
               | _ -> None
             in
             let specs, msgs =
               Unit_sem.config_spec ~line:(as_int line) ~scope ~component:(tok_id comp_v)
                 ~binding
             in
             ({ out_empty with o_config_specs = specs }, msgs)
           | _ -> internal "config_spec1"));
  prod ~name:"inst_spec_labels" ~lhs:"inst_spec" ~rhs:[ "id_list" ]
    ~rules:
      [
        rule ~target:(0, "ISPEC") ~deps:[ (1, "IDS") ] (function
          | [ ids ] -> Pair (Str "labels", ids)
          | _ -> internal "inst_spec_labels");
      ];
  prod ~name:"inst_spec_all" ~lhs:"inst_spec" ~rhs:[ "all" ]
    ~rules:[ rule ~target:(0, "ISPEC") ~deps:[] (fun _ -> Pair (Str "all", Ids [])) ];
  prod ~name:"inst_spec_others" ~lhs:"inst_spec" ~rhs:[ "others" ]
    ~rules:[ rule ~target:(0, "ISPEC") ~deps:[] (fun _ -> Pair (Str "others", Ids [])) ];
  prod ~name:"binding_ind" ~lhs:"binding_ind" ~rhs:[ "use"; "entity"; "use_name"; "arch_opt" ]
    ~rules:
      [
        rule ~target:(0, "BIND") ~deps:[ (3, "UPARTS"); (4, "OID") ] (function
          | [ parts; oid ] -> (
            match as_pair parts with
            | Ids ids, _ -> Opt (Some (Pair (Ids ids, Opt (as_opt oid))))
            | _ -> internal "binding parts")
          | _ -> internal "binding_ind");
      ];
  prod ~name:"arch_opt_none" ~lhs:"arch_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OID") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"arch_opt_some" ~lhs:"arch_opt" ~rhs:[ "("; "ID"; ")" ]
    ~rules:
      [
        rule ~target:(0, "OID") ~deps:[ (2, "VAL") ] (function
          | [ v ] -> Opt (Some (Str (tok_id v)))
          | _ -> internal "arch_opt_some");
      ]
