(** Standalone entry to the cascaded expression evaluator (paper §4.1).

    The principal AG normally produces LEF token lists as the value of its
    LEF attribute; this module provides the same classification directly
    from scanner output, so expressions can be pushed through the second
    (expression) AG without a surrounding design unit — used by the
    cascade example, the REPL-style tests, and the ABL-CASCADE bench. *)

val classify_tokens : env:Env.t -> (Token.t * int) list -> Lef.tok list
(** Classify scanner tokens against an environment: identifiers become
    the classified LEF terminals (variable, signal, type, function, ...)
    carrying their denotations; literals and operators pass through.
    Mirrors what the principal AG's name productions do. *)
