(** The *united productions* alternative (ABL-CASCADE ablation).

    Before settling on cascaded evaluation, the paper's authors "originally
    tried ... uniting several conflicting productions into one and using
    semantic rules to distinguish between them" (§4.1).  This module is that
    road not taken, hand-coded: a recursive-descent parser over the raw
    expression tokens builds a deliberately ambiguous shape ([Eapply] covers
    call, index, slice, and conversion alike), and a post-hoc pass
    distinguishes the cases by consulting the symbol table — the
    "duplicate semantics" the paper complains about, here shared through
    {!Expr_sem}.

    It produces the same {!Pval.xres} as the cascade, so the bench can
    compare the two strategies head to head on identical inputs. *)

open Pval

type ast =
  | Uid of string * int (* identifier, unresolved *)
  | Ulit of Token.t * int
  | Uphys of Token.t * string * int (* abstract literal + unit name *)
  | Ubin of string * ast * ast * int
  | Uun of string * ast * int
  | Uapply of ast * uarg list * int (* name ( args ): call/index/slice/conversion *)
  | Uselect of ast * string * int (* prefix . id : package item or record field *)
  | Uattr of ast * string * int (* prefix ' id *)
  | Uqualified of ast * uarg list * int (* type ' ( expr ) *)
  | Uparen of uarg list * int (* parenthesized expr or aggregate *)

and uarg =
  | Apos of ast
  | Anamed of uchoice list * ast option (* choices => expr / open *)
  | Arange of ast * Types.dir * ast

and uchoice =
  | Uc_expr of ast
  | Uc_range of ast * Types.dir * ast
  | Uc_others

exception Parse_failed of int

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser over raw tokens *)

type stream = {
  mutable toks : (Token.t * int) list;
}

let peek st =
  match st.toks with
  | (t, l) :: _ -> (t, l)
  | [] -> (Token.Teof, 0)

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let expect st p =
  match peek st with
  | Token.Tpunct q, _ when q = p -> advance st
  | _, l -> raise (Parse_failed l)

let is_kw st kw =
  match peek st with
  | Token.Tkw k, _ -> k = kw
  | _ -> false

let rec parse_expr st =
  let left = parse_relation st in
  match peek st with
  | Token.Tkw (("and" | "or" | "nand" | "nor" | "xor") as op), l ->
    advance st;
    let right = parse_relation st in
    parse_expr_tail st (Ubin (op, left, right, l))
  | _ -> left

and parse_expr_tail st acc =
  match peek st with
  | Token.Tkw (("and" | "or" | "nand" | "nor" | "xor") as op), l ->
    advance st;
    let right = parse_relation st in
    parse_expr_tail st (Ubin (op, acc, right, l))
  | _ -> acc

and parse_relation st =
  let left = parse_simple st in
  match peek st with
  | Token.Tpunct (("=" | "/=" | "<" | "<=" | ">" | ">=") as op), l ->
    advance st;
    let right = parse_simple st in
    Ubin (op, left, right, l)
  | _ -> left

and parse_simple st =
  let first =
    match peek st with
    | Token.Tpunct (("+" | "-") as sign), l ->
      advance st;
      let t = parse_term st in
      Uun (sign, t, l)
    | _ -> parse_term st
  in
  let rec tail acc =
    match peek st with
    | Token.Tpunct (("+" | "-" | "&") as op), l ->
      advance st;
      let t = parse_term st in
      tail (Ubin (op, acc, t, l))
    | _ -> acc
  in
  tail first

and parse_term st =
  let first = parse_factor st in
  let rec tail acc =
    match peek st with
    | Token.Tpunct (("*" | "/") as op), l ->
      advance st;
      tail (Ubin (op, acc, parse_factor st, l))
    | Token.Tkw (("mod" | "rem") as op), l ->
      advance st;
      tail (Ubin (op, acc, parse_factor st, l))
    | _ -> acc
  in
  tail first

and parse_factor st =
  match peek st with
  | Token.Tkw "abs", l ->
    advance st;
    Uun ("abs", parse_primary st, l)
  | Token.Tkw "not", l ->
    advance st;
    Uun ("not", parse_primary st, l)
  | _ -> (
    let p = parse_primary st in
    match peek st with
    | Token.Tpunct "**", l ->
      advance st;
      Ubin ("**", p, parse_primary st, l)
    | _ -> p)

and parse_primary st =
  let head =
    match peek st with
    | Token.Tid id, l ->
      advance st;
      Uid (id, l)
    | (Token.Tint _ as t), l -> (
      advance st;
      (* physical literal: abstract literal followed by an identifier *)
      match peek st with
      | Token.Tid unit_name, _ ->
        advance st;
        Uphys (t, unit_name, l)
      | _ -> Ulit (t, l))
    | (Token.Treal _ as t), l -> (
      advance st;
      match peek st with
      | Token.Tid unit_name, _ ->
        advance st;
        Uphys (t, unit_name, l)
      | _ -> Ulit (t, l))
    | ((Token.Tchar _ | Token.Tstring _ | Token.Tbitstr _) as t), l ->
      advance st;
      Ulit (t, l)
    | Token.Tpunct "(", l ->
      advance st;
      let args = parse_args st in
      expect st ")";
      Uparen (args, l)
    | _, l -> raise (Parse_failed l)
  in
  parse_suffixes st head

and parse_suffixes st head =
  match peek st with
  | Token.Tpunct "(", l ->
    advance st;
    let args = parse_args st in
    expect st ")";
    parse_suffixes st (Uapply (head, args, l))
  | Token.Tpunct ".", l -> (
    advance st;
    match peek st with
    | Token.Tid id, _ ->
      advance st;
      parse_suffixes st (Uselect (head, id, l))
    | _ -> raise (Parse_failed l))
  | Token.Tpunct "'", l -> (
    advance st;
    match peek st with
    | Token.Tid id, _ ->
      advance st;
      parse_suffixes st (Uattr (head, id, l))
    | Token.Tkw "range", _ ->
      advance st;
      parse_suffixes st (Uattr (head, "RANGE", l))
    | Token.Tpunct "(", _ ->
      advance st;
      let args = parse_args st in
      expect st ")";
      parse_suffixes st (Uqualified (head, args, l))
    | _ -> raise (Parse_failed l))
  | _ -> head

and parse_args st =
  let arg () =
    if is_kw st "others" then begin
      advance st;
      (match peek st with
      | Token.Tpunct "=>", _ -> advance st
      | _, l -> raise (Parse_failed l));
      Anamed ([ Uc_others ], Some (parse_expr st))
    end
    else begin
      let e = parse_expr st in
      match peek st with
      | Token.Tkw (("to" | "downto") as d), _ ->
        advance st;
        let hi = parse_expr st in
        let dir = if d = "to" then Types.To else Types.Downto in
        (* may still be a named range choice: (1 to 3 => x) *)
        (match peek st with
        | Token.Tpunct "=>", _ ->
          advance st;
          Anamed ([ Uc_range (e, dir, hi) ], Some (parse_expr st))
        | _ -> Arange (e, dir, hi))
      | Token.Tpunct "=>", _ ->
        advance st;
        (match peek st with
        | Token.Tkw "open", _ ->
          advance st;
          Anamed ([ Uc_expr e ], None)
        | _ -> Anamed ([ Uc_expr e ], Some (parse_expr st)))
      | Token.Tpunct "|", _ ->
        let rec more acc =
          match peek st with
          | Token.Tpunct "|", _ ->
            advance st;
            let c =
              if is_kw st "others" then begin
                advance st;
                Uc_others
              end
              else Uc_expr (parse_expr st)
            in
            more (c :: acc)
          | _ -> List.rev acc
        in
        let choices = more [ Uc_expr e ] in
        (match peek st with
        | Token.Tpunct "=>", _ -> advance st
        | _, l -> raise (Parse_failed l));
        Anamed (choices, Some (parse_expr st))
      | _ -> Apos e
    end
  in
  let rec loop acc =
    let a = arg () in
    match peek st with
    | Token.Tpunct ",", _ ->
      advance st;
      loop (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  loop []

(** Parse an expression from raw tokens; the list must be exactly one
    expression. *)
let parse (tokens : (Token.t * int) list) : ast =
  let st = { toks = tokens } in
  let e = parse_expr st in
  match peek st with
  | Token.Teof, _ | Token.Tpunct ";", _ -> e
  | _, l -> raise (Parse_failed l)

(* ------------------------------------------------------------------ *)
(* Post-hoc disambiguation: the "duplicate semantics" *)

(* the united path resolves operators against the symbol table directly
   (no LEF token to carry candidates) *)
let user_operators ~env op =
  List.filter_map
    (function Denot.Dsubprog sg -> Some sg | _ -> None)
    (Env.lookup env (Lef.operator_key op))

let rec analyze ~env ~level (e : ast) : cand list * Diag.t list =
  match e with
  | Uid (id, line) -> (
    (* here the symbol table is consulted AFTER parsing *)
    let lef, msgs = Decl_sem.classify ~env ~line id in
    match lef with
    | [ tok ] -> (
      match tok.Lef.l_kind with
      | Lef.Kenum _ -> (Expr_sem.literal_cands tok, msgs)
      | Lef.Kfunc sigs ->
        let c, m = Expr_sem.func_cands ~line sigs in
        (c, msgs @ m)
      | Lef.Ktype _ -> ([ Expr_sem.error_cand ], msgs)
      | Lef.Kident _ ->
        ( [ Expr_sem.error_cand ],
          msgs @ [ Diag.error ~line "%s is not declared" id ] )
      | _ -> (Expr_sem.head_cands ~level tok, msgs))
    | _ -> ([ Expr_sem.error_cand ], msgs))
  | Ulit (t, line) -> (
    let mk kind = { Lef.l_kind = kind; l_line = line } in
    match t with
    | Token.Tint n -> (Expr_sem.literal_cands (mk (Lef.Kint n)), [])
    | Token.Treal x -> (Expr_sem.literal_cands (mk (Lef.Kreal x)), [])
    | Token.Tstring s -> (Expr_sem.literal_cands (mk (Lef.Kstr s)), [])
    | Token.Tbitstr s -> (Expr_sem.literal_cands (mk (Lef.Kbitstr s)), [])
    | Token.Tchar image -> (
      let denots = Env.lookup env image in
      let enums =
        List.filter_map
          (function
            | Denot.Denum_lit { ty; pos; image } -> Some (ty, pos, image)
            | _ -> None)
          denots
      in
      match enums with
      | [] ->
        ( [ Expr_sem.error_cand ],
          [ Diag.error ~line "character literal %s is not declared" image ] )
      | _ -> (Expr_sem.literal_cands (mk (Lef.Kenum enums)), []))
    | _ -> ([ Expr_sem.error_cand ], []))
  | Uphys (t, unit_name, line) -> (
    let abstract =
      match t with
      | Token.Tint n -> `Int n
      | Token.Treal x -> `Real x
      | _ -> `Int 0
    in
    let lef, msgs = Decl_sem.classify_physical ~env ~line ~abstract unit_name in
    match lef with
    | [ tok ] -> (Expr_sem.literal_cands tok, msgs)
    | _ -> ([ Expr_sem.error_cand ], msgs))
  | Ubin (op, a, b, line) ->
    let ca, ma = analyze ~env ~level a in
    let cb, mb = analyze ~env ~level b in
    let user = user_operators ~env op in
    let c, m = Expr_sem.apply_binop ~line ~user op ca cb in
    (c, ma @ mb @ m)
  | Uun (op, a, line) ->
    let ca, ma = analyze ~env ~level a in
    let user = user_operators ~env op in
    let c, m = Expr_sem.apply_unop ~line ~user op ca in
    (c, ma @ m)
  | Uparen (args, line) -> (
    let items, msgs = analyze_args ~env ~level args in
    match items with
    | [ Ipos cands ] -> (cands, msgs)
    | items -> (
      ignore line;
      ([ Cagg items ], msgs)))
  | Uapply (head, args, line) -> (
    (* the united case: is the head a function, an array, or a type? *)
    match head with
    | Uid (id, hline) -> (
      let lef, head_msgs = Decl_sem.classify ~env ~line:hline id in
      match lef with
      | [ ({ Lef.l_kind = Lef.Ktype ty; _ } as _tok) ] -> (
        (* conversion *)
        let items, m1 = analyze_args ~env ~level args in
        match items with
        | [ Ipos cands ] ->
          let c, m2 = Expr_sem.conversion ~line ty cands in
          (c, head_msgs @ m1 @ m2)
        | _ ->
          ( [ Expr_sem.error_cand ],
            head_msgs @ m1 @ [ Diag.error ~line "type conversion takes one expression" ] ))
      | [ tok ] ->
        let head_cands =
          match tok.Lef.l_kind with
          | Lef.Kfunc _ | Lef.Kproc _ -> []
          | _ -> Expr_sem.head_cands ~level tok
        in
        let head_tok =
          match tok.Lef.l_kind with
          | Lef.Kfunc _ | Lef.Kproc _ -> Some tok
          | _ -> None
        in
        let items, m1 = analyze_args ~env ~level args in
        let c, m2 = Expr_sem.apply_args ~line head_tok head_cands items in
        (c, head_msgs @ m1 @ m2)
      | _ -> ([ Expr_sem.error_cand ], head_msgs))
    | _ ->
      let head_cands, m0 = analyze ~env ~level head in
      let items, m1 = analyze_args ~env ~level args in
      let c, m2 = Expr_sem.apply_args ~line None head_cands items in
      (c, m0 @ m1 @ m2))
  | Uselect (prefix, id, line) -> (
    (* package item or record field *)
    match prefix with
    | Uid (pid, pline) -> (
      let plef, m0 = Decl_sem.classify ~env ~line:pline pid in
      match plef with
      | [ { Lef.l_kind = Lef.Kscope _; _ } ] -> (
        let lef, m1 = Decl_sem.classify_selected ~env ~line plef id in
        match lef with
        | [ ({ Lef.l_kind = Lef.Kenum _; _ } as tok) ] ->
          (Expr_sem.literal_cands tok, m0 @ m1)
        | [ { Lef.l_kind = Lef.Kfunc sigs; _ } ] ->
          let c, m2 = Expr_sem.func_cands ~line sigs in
          (c, m0 @ m1 @ m2)
        | [ tok ] -> (Expr_sem.head_cands ~level tok, m0 @ m1)
        | _ -> ([ Expr_sem.error_cand ], m0 @ m1))
      | _ ->
        ignore m0;
        let pc, m1 = analyze ~env ~level prefix in
        let c, m2 = Expr_sem.select_field ~line pc id in
        (c, m1 @ m2))
    | _ ->
      let pc, m1 = analyze ~env ~level prefix in
      let c, m2 = Expr_sem.select_field ~line pc id in
      (c, m1 @ m2))
  | Uattr (prefix, id, line) -> (
    (* user-defined attribute value, type attribute, or signal attribute *)
    let base =
      match prefix with
      | Uid (pid, _) -> Some pid
      | _ -> None
    in
    match Option.map (fun b -> Env.lookup env (b ^ "'" ^ id)) base with
    | Some (Denot.Dattr_value { value; ty; _ } :: _) ->
      ([ Cv { ty; code = Kir.Elit value; static = Some value } ], [])
    | _ -> (
      match prefix with
      | Uid (pid, pline) -> (
        match Env.lookup env pid with
        | (Denot.Dtype ty | Denot.Dsubtype ty) :: _ ->
          Expr_sem.scalar_type_attr ~line ty id
        | _ ->
          let pc, m1 = analyze ~env ~level (Uid (pid, pline)) in
          let c, m2 = Expr_sem.apply_name_attr ~line pc id in
          (c, m1 @ m2))
      | _ ->
        let pc, m1 = analyze ~env ~level prefix in
        let c, m2 = Expr_sem.apply_name_attr ~line pc id in
        (c, m1 @ m2)))
  | Uqualified (head, args, line) -> (
    match head with
    | Uid (id, _) -> (
      match Env.lookup env id with
      | (Denot.Dtype ty | Denot.Dsubtype ty) :: _ -> (
        let items, m1 = analyze_args ~env ~level args in
        match items with
        | [ Ipos cands ] ->
          let c, m2 = Expr_sem.qualified ~line ty cands in
          (c, m1 @ m2)
        | items ->
          let c, m2 = Expr_sem.qualified ~line ty [ Cagg items ] in
          (c, m1 @ m2))
      | _ -> ([ Expr_sem.error_cand ], [ Diag.error ~line "qualified expression requires a type mark" ]))
    | Uattr (Uid (tid, _), attr, aline) -> (
      (* T'ATTR(x): attribute functions *)
      match Env.lookup env tid with
      | (Denot.Dtype ty | Denot.Dsubtype ty) :: _ ->
        let items, m1 = analyze_args ~env ~level args in
        let c, m2 = Expr_sem.apply_type_attr_args ~line:aline ty attr items in
        (c, m1 @ m2)
      | _ -> ([ Expr_sem.error_cand ], [ Diag.error ~line "unknown attribute prefix" ]))
    | _ -> ([ Expr_sem.error_cand ], [ Diag.error ~line "invalid qualified expression" ]))

and analyze_args ~env ~level (args : uarg list) : aitem list * Diag.t list =
  List.fold_left
    (fun (items, msgs) arg ->
      match arg with
      | Apos e ->
        let c, m = analyze ~env ~level e in
        (items @ [ Ipos c ], msgs @ m)
      | Arange (lo, d, hi) ->
        let cl, ml = analyze ~env ~level lo in
        let ch, mh = analyze ~env ~level hi in
        let pick cands = List.find_map (function Cv { code; _ } -> Some code | _ -> None) cands in
        (match (pick cl, pick ch) with
        | Some l, Some h -> (items @ [ Ipos [ Crng ((l, d, h), None) ] ], msgs @ ml @ mh)
        | _ -> (items @ [ Ipos [ Expr_sem.error_cand ] ], msgs @ ml @ mh))
      | Anamed (choices, value) ->
        let achoices, ms =
          List.fold_left
            (fun (cs, ms) c ->
              match c with
              | Uc_others -> (cs @ [ Cothers ], ms)
              | Uc_expr (Uid (id, _)) when Env.lookup env id = [] ->
                (cs @ [ Cident id ], ms)
              | Uc_expr e ->
                let cands, m = analyze ~env ~level e in
                (cs @ [ Cexpr cands ], ms @ m)
              | Uc_range (lo, d, hi) ->
                let cl, ml = analyze ~env ~level lo in
                let ch, mh = analyze ~env ~level hi in
                (cs @ [ Cchoice_range (cl, d, ch) ], ms @ ml @ mh))
            ([], []) choices
        in
        let vcands, vm =
          match value with
          | Some e -> analyze ~env ~level e
          | None -> ([], [])
        in
        (items @ [ Inamed (achoices, vcands) ], msgs @ ms @ vm))
    ([], []) args

(** Evaluate one expression from raw source tokens the united way. *)
let eval ?expected ~env ~level ~line (tokens : (Token.t * int) list) : xres =
  match parse tokens with
  | exception Parse_failed l ->
    {
      x_ty = Expr_sem.error_ty;
      x_code = Kir.Elit (Value.Vint 0);
      x_static = None;
      x_msgs = [ Diag.error ~line:(if l = 0 then line else l) "cannot parse expression" ];
    }
  | ast ->
    let cands, msgs = analyze ~env ~level ast in
    Expr_sem.select ~line ~expected cands msgs

(** Convenience: evaluate an expression given as source text. *)
let eval_string ?expected ~env ~level source : xres =
  let tokens =
    Lexer.tokenize source |> List.filter (fun (t, _) -> t <> Token.Teof)
  in
  eval ?expected ~env ~level ~line:1 (tokens @ [ (Token.Teof, 99) ])
