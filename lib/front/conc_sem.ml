(** Out-of-line semantics for concurrent statements (principal AG).

    Concurrent signal assignments desugar into equivalent processes
    (LRM 9.5), component instantiations into {!Kir.instance}, blocks into
    {!Kir.C_block} with their guard expression. *)

open Pval

(* Anonymous-statement labels carry a leading '%' (impossible in a VHDL
   identifier) and a throwaway unique number; {!Kir_util.normalize_labels}
   renames them positionally when the architecture is assembled.  The final
   names therefore depend only on source order, never on the attribute
   evaluation order that reached this gensym — the demand and staged
   evaluators must produce byte-identical VIF (see lib/difftest). *)
let fresh_label =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%%%s_%d" prefix !n

(** A process from a desugared concurrent assignment: sensitive to every
    signal read by the statement(s). *)
let assignment_process ~label (stmts : Kir.stmt list) : Kir.concurrent =
  let rec signals_of_stmt acc (s : Kir.stmt) =
    match s with
    | Kir.Ssig_assign { waveform; _ } ->
      List.fold_left
        (fun acc (w : Kir.waveform_element) ->
          let acc =
            match w.Kir.wv_value with
            | Some e -> Kir_util.signals_read_expr_acc acc e
            | None -> acc
          in
          match w.Kir.wv_after with
          | Some e -> Kir_util.signals_read_expr_acc acc e
          | None -> acc)
        acc waveform
    | Kir.Sif (arms, els) ->
      let acc =
        List.fold_left
          (fun acc (c, body) ->
            List.fold_left signals_of_stmt (Kir_util.signals_read_expr_acc acc c) body)
          acc arms
      in
      List.fold_left signals_of_stmt acc els
    | Kir.Scase (e, alts) ->
      let acc = Kir_util.signals_read_expr_acc acc e in
      List.fold_left (fun acc (_, body) -> List.fold_left signals_of_stmt acc body) acc alts
    | Kir.Sdisconnect _ -> acc
    | _ -> acc
  in
  let sensitivity = List.rev (List.fold_left signals_of_stmt [] stmts) in
  Kir.C_process
    {
      Kir.proc_label = label;
      proc_sensitivity = sensitivity;
      proc_locals = [];
      proc_body = stmts;
      proc_postponed_wait = true;
    }

(** Plain concurrent signal assignment: [target <= waveform;]. *)
let concurrent_assign ~level ~line ~label ~transport ~guarded target_lef waves :
    Kir.concurrent list * Diag.t list =
  let stmts, msgs =
    Stmt_sem.build_signal_assign ~level ~line ~transport ~guarded target_lef waves
  in
  let label = match label with Some l -> l | None -> fresh_label "csa" in
  if stmts = [] then ([], msgs) else ([ assignment_process ~label stmts ], msgs)

(** Conditional signal assignment:
    [target <= w1 when c1 else w2 when c2 else w3;]. *)
let conditional_assign ~level ~line ~label ~transport ~guarded target_lef
    (arms : (wave_src list * Lef.tok list) list) (final : wave_src list option) :
    Kir.concurrent list * Diag.t list =
  let assign waves =
    Stmt_sem.build_signal_assign ~level ~line ~transport ~guarded target_lef waves
  in
  let arms, msgs =
    List.fold_left
      (fun (arms, msgs) (waves, cond_lef) ->
        let stmts, m1 = assign waves in
        let c, m2 = Stmt_sem.boolean_cond ~level ~line cond_lef in
        (arms @ [ (c, stmts) ], msgs @ m1 @ m2))
      ([], []) arms
  in
  let else_stmts, msgs =
    match final with
    | None -> ([], msgs)
    | Some waves ->
      let stmts, m = assign waves in
      (stmts, msgs @ m)
  in
  let label = match label with Some l -> l | None -> fresh_label "csa" in
  ([ assignment_process ~label [ Kir.Sif (arms, else_stmts) ] ], msgs)

(** Selected signal assignment:
    [with e select target <= w1 when ch1, w2 when others;]. *)
let selected_assign ~level ~line ~label ~transport ~guarded selector_lef target_lef
    (alts : (wave_src list * choice_src list) list) : Kir.concurrent list * Diag.t list =
  let sel = Expr_eval.eval ~level ~line selector_lef in
  let case_alts, msgs =
    List.fold_left
      (fun (alts, msgs) (waves, choices) ->
        let stmts, m1 =
          Stmt_sem.build_signal_assign ~level ~line ~transport ~guarded target_lef waves
        in
        let choices, m2 =
          List.fold_left
            (fun (cs, ms) c ->
              let c, m = Stmt_sem.resolve_choice ~level ~line ~selector_ty:sel.x_ty c in
              (cs @ [ c ], ms @ m))
            ([], []) choices
        in
        (alts @ [ (choices, stmts) ], msgs @ m1 @ m2))
      ([], []) alts
  in
  let label = match label with Some l -> l | None -> fresh_label "csa" in
  ( [ assignment_process ~label [ Kir.Scase (sel.x_code, case_alts) ] ],
    sel.x_msgs @ msgs )

(** Explicit process statement. *)
let process_stmt ~label ~(sensitivity : Lef.tok list list) ~line ~(out : decl_out)
    ~(body : Kir.stmt list) : (Kir.concurrent list * decl_out) * Diag.t list =
  let sens_refs, msgs = Stmt_sem.sig_refs_of_name_lefs ~line sensitivity in
  let has_sens = sensitivity <> [] in
  let msgs =
    if has_sens && Kir_util.has_wait body then
      msgs @ [ Diag.error ~line "a process with a sensitivity list may not contain wait statements" ]
    else if (not has_sens) && not (Kir_util.may_wait body) then
      msgs @ [ Diag.warning ~line "process has no sensitivity list and no wait statement; it runs once and terminates" ]
    else msgs
  in
  let label = match label with Some l -> l | None -> fresh_label "proc" in
  let proc =
    Kir.C_process
      {
        Kir.proc_label = label;
        proc_sensitivity = sens_refs;
        proc_locals = out.o_locals;
        proc_body = body;
        proc_postponed_wait = has_sens;
      }
  in
  (* locals are consumed here; subprograms and deps continue upward *)
  (([ proc ], { out with o_binds = []; o_locals = []; o_signals = [] }), msgs)

(* A formal designator may shadow or collide with a visible name, in which
   case classification already resolved it; recover the plain name from any
   single-token LEF (the paper's §3.2 "extending visibility by selection"
   pain point — formals are resolved against the component, not the
   enclosing scope). *)
let formal_name_of_lef = function
  | [ { Lef.l_kind = Lef.Kident f; _ } ] -> Some f
  | [ { Lef.l_kind = Lef.Ksig { name; _ }; _ } ]
  | [ { Lef.l_kind = Lef.Kvar { name; _ }; _ } ]
  | [ { Lef.l_kind = Lef.Kconst_val { name; _ }; _ } ]
  | [ { Lef.l_kind = Lef.Kgeneric { name; _ }; _ } ]
  | [ { Lef.l_kind = Lef.Kunitconst { name; _ }; _ } ] -> Some name
  | [ { Lef.l_kind = Lef.Kenum ((_, _, image) :: _); _ } ] -> Some image
  | [ { Lef.l_kind = Lef.Kfunc (s :: _); _ } ] | [ { Lef.l_kind = Lef.Kproc (s :: _); _ } ] ->
    Some s.Denot.ss_name
  | _ -> None

(** Component instantiation. *)
let instance ~env ~level ~line ~label ~component_name
    ~(generic_map : assoc_src list) ~(port_map : assoc_src list) :
    Kir.concurrent list * Diag.t list =
  match Env.lookup env component_name with
  | Denot.Dcomponent { generics; ports; name } :: _ ->
    let msgs = ref [] in
    let resolve_assocs (formals : (string * Types.t) list) (assocs : assoc_src list)
        ~signal_ok =
      (* positional then named association *)
      let bind i (a : assoc_src) =
        let formal_name, formal_ty =
          match Option.map formal_name_of_lef a.a_formal with
          | Some (Some f) -> (
            match List.assoc_opt f formals with
            | Some ty -> (Some f, Some ty)
            | None ->
              msgs := !msgs @ [ Diag.error ~line:a.a_line "no formal named %s" f ];
              (None, None))
          | Some None ->
            msgs :=
              !msgs
              @ [
                  Diag.error ~line:a.a_line
                    "only simple names are supported as formals (no conversion functions)";
                ];
            (None, None)
          | None -> (
            match List.nth_opt formals i with
            | Some (f, ty) -> (Some f, Some ty)
            | None ->
              msgs := !msgs @ [ Diag.error ~line:a.a_line "too many associations" ];
              (None, None))
        in
        match (formal_name, formal_ty, a.a_actual) with
        | Some f, Some _, `Open -> Some (f, Kir.Act_open)
        | Some f, Some ty, `Lef lef -> (
          (* a signal actual stays a signal reference; anything else is an
             expression (generics, or expression actuals for in ports) *)
          match lef with
          | [ { Lef.l_kind = Lef.Ksig { sref; ty = sty; _ }; _ } ] when signal_ok ->
            if not (Expr_sem.compat sty ty) then
              msgs :=
                !msgs
                @ [ Diag.error ~line:a.a_line "actual for %s has the wrong type" f ];
            Some (f, Kir.Act_signal sref)
          | { Lef.l_kind = Lef.Ksig { sref; ty = sty; _ }; _ }
            :: { Lef.l_kind = Lef.Kpunct "("; _ }
            :: _
            when signal_ok && Types.is_array sty -> (
            (* element association: signal(index) *)
            let r = Expr_eval.eval ~level ~line:a.a_line lef in
            msgs := !msgs @ r.x_msgs;
            match r.x_code with
            | Kir.Eindex (Kir.Esig _, ix) -> Some (f, Kir.Act_signal_index (sref, ix))
            | Kir.Eslice (Kir.Esig _, rng) -> Some (f, Kir.Act_signal_slice (sref, rng))
            | _ ->
              msgs :=
                !msgs
                @ [
                    Diag.error ~line:a.a_line
                      "only indexing or slicing is supported in signal actuals";
                  ];
              Some (f, Kir.Act_open))
          | _ ->
            let r = Expr_eval.eval ~expected:ty ~level ~line:a.a_line lef in
            msgs := !msgs @ r.x_msgs;
            (* §3.2: conversion functions in association lists are the hard
               case — diagnose instead of silently freezing the value *)
            if signal_ok && Kir_util.signals_read_expr r.x_code <> [] then
              msgs :=
                !msgs
                @ [
                    Diag.error ~line:a.a_line
                      "actual for %s applies an expression to a signal; \
                       conversion functions in association lists are not \
                       supported — associate a signal and convert inside"
                      f;
                  ];
            Some (f, Kir.Act_expr r.x_code))
        | _ -> None
      in
      List.filteri (fun _ _ -> true) assocs |> List.mapi bind |> List.filter_map Fun.id
    in
    let generic_formals = List.map (fun (g : Kir.generic_decl) -> (g.Kir.gd_name, g.Kir.gd_ty)) generics in
    let port_formals = List.map (fun (p : Kir.port_decl) -> (p.Kir.pd_name, p.Kir.pd_ty)) ports in
    let gmap = resolve_assocs generic_formals generic_map ~signal_ok:false in
    let pmap = resolve_assocs port_formals port_map ~signal_ok:true in
    (* unassociated ports without defaults are errors (LRM 4.3.3.2) *)
    List.iter
      (fun (p : Kir.port_decl) ->
        if (not (List.mem_assoc p.Kir.pd_name pmap)) && p.Kir.pd_default = None
           && p.Kir.pd_mode = Kir.Arg_in
        then
          msgs :=
            !msgs @ [ Diag.error ~line "input port %s is not associated and has no default" p.Kir.pd_name ])
      ports;
    ( [
        Kir.C_instance
          {
            Kir.inst_label = label;
            inst_component = name;
            inst_generic_map = gmap;
            inst_port_map = pmap;
          };
      ],
      !msgs )
  | _ :: _ -> ([], [ Diag.error ~line "%s is not a component" component_name ])
  | [] -> ([], [ Diag.error ~line "component %s is not declared" component_name ])

(** Block statement. *)
let block ~level ~line ~label ~(guard : Lef.tok list option) ~(out : decl_out)
    ~(body : Kir.concurrent list) : (Kir.concurrent list * decl_out) * Diag.t list =
  let guard_code, msgs =
    match guard with
    | None -> (None, [])
    | Some lef ->
      let c, m = Stmt_sem.boolean_cond ~level ~line lef in
      (Some c, m)
  in
  ( ( [ Kir.C_block { blk_label = label; blk_guard = guard_code; blk_body = body } ],
      { out with o_binds = []; o_locals = [] } ),
    msgs )
