(* A behavioural image-processing testbench: 3x3 edge-detection kernel
   convolved over an 8x8 image, all in VHDL with two-dimensional arrays
   (declared `array (0 to 7, 0 to 7)`, lowered by the compiler to nested
   arrays so that [img(r, c)] is [img(r)(c)]).

   The design computes the convolution in a process, reports the response
   at a known edge and in flat regions, and asserts the expected values —
   a small but realistic numeric workload for the interpreter: nested
   loops, 2-D indexing, function calls, and accumulation.

   Run with: dune exec examples/edge_detector.exe *)

let source =
  {|
entity edge_tb is end edge_tb;

architecture behav of edge_tb is
  type image is array (0 to 7, 0 to 7) of integer;
  type kernel is array (0 to 2, 0 to 2) of integer;

  -- Laplacian-style edge kernel
  constant lap : kernel := ((0, 1, 0), (1, -4, 1), (0, 1, 0));

  signal edge_response : integer := 0;   -- at the step edge
  signal flat_response : integer := 0;   -- inside a flat region
  signal max_response  : integer := 0;   -- strongest response anywhere

  function clamp0 (x : integer) return integer is
  begin
    if x < 0 then
      return -x;    -- magnitude
    else
      return x;
    end if;
  end clamp0;

begin
  convolve : process
    variable img : image;
    variable acc : integer;
    variable best : integer := 0;
    variable at_edge : integer := 0;
    variable at_flat : integer := 0;
  begin
    -- build a step image: dark left half (10), bright right half (90)
    for r in 0 to 7 loop
      for c in 0 to 7 loop
        if c < 4 then
          img(r, c) := 10;
        else
          img(r, c) := 90;
        end if;
      end loop;
    end loop;

    -- convolve the interior
    for r in 1 to 6 loop
      for c in 1 to 6 loop
        acc := 0;
        for kr in 0 to 2 loop
          for kc in 0 to 2 loop
            acc := acc + lap(kr, kc) * img(r + kr - 1, c + kc - 1);
          end loop;
        end loop;
        acc := clamp0(acc);
        if acc > best then
          best := acc;
        end if;
        if r = 3 and c = 3 then
          at_edge := acc;    -- just left of the step
        end if;
        if r = 3 and c = 1 then
          at_flat := acc;    -- deep in the dark region
        end if;
      end loop;
    end loop;

    edge_response <= at_edge;
    flat_response <= at_flat;
    max_response  <= best;

    -- the step edge responds (|10-90| through the kernel), flats are silent
    assert at_flat = 0 report "flat region should have zero response";
    assert at_edge > 0 report "edge should respond";
    wait;
  end process;
end behav;
|}

let () =
  let compiler = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile compiler source);
  let sim = Vhdl_compiler.elaborate compiler ~top:"edge_tb" () in
  ignore (Vhdl_compiler.run compiler sim ~max_ns:10);
  let v path =
    match Vhdl_compiler.value sim path with
    | Some v -> Value.as_int v
    | None -> failwith ("no signal " ^ path)
  in
  let edge = v ":edge_tb:EDGE_RESPONSE"
  and flat = v ":edge_tb:FLAT_RESPONSE"
  and best = v ":edge_tb:MAX_RESPONSE" in
  Printf.printf "Laplacian over an 8x8 step image:\n";
  Printf.printf "  response at the edge   : %d\n" edge;
  Printf.printf "  response in flat region: %d\n" flat;
  Printf.printf "  strongest response     : %d\n" best;
  (* column 3 with the step at column 4: kernel sees one bright pixel *)
  if flat <> 0 then failwith "flat region should be silent";
  if edge <> 80 then failwith "edge response should be |10-90| = 80";
  if best < edge then failwith "max must dominate";
  Printf.printf "edge detected where expected; flat regions silent\n"
