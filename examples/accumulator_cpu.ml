(* A microcoded accumulator machine: instruction set as an enumeration,
   program memory as a constant array of records, a fetch/decode/execute
   process, and a testbench that checks the computed result.

   The program sums the integers 1..N by counting down — exercising enum
   types, records, array-of-record aggregates, case dispatch, and
   multi-entity elaboration in one design.

   Run with: dune exec examples/accumulator_cpu.exe *)

let isa =
  {|
package isa is
  type opcode is (op_nop, op_ldi, op_add, op_dec, op_jnz, op_halt);
  type instruction is record
    op  : opcode;
    arg : integer;
  end record;
  type program is array (0 to 15) of instruction;
end isa;
|}

let cpu =
  {|
use work.isa.all;

entity cpu is
  port (clk : in bit; done_flag : out bit; result : out integer);
end cpu;

architecture microcoded of cpu is
  -- sum 1..10 by counting down:
  --   r := 10; acc := 0;
  --   loop: acc := acc + r; r := r - 1; jnz loop
  constant prog : program :=
    ( (op_ldi, 10),        -- 0: counter := 10     (counter lives in acc2)
      (op_add, 0),         -- 1: (nop-ish: acc := acc + 0)
      (op_add, 1),         -- 2: acc := acc + counter   (arg 1 = "use counter")
      (op_dec, 0),         -- 3: counter := counter - 1
      (op_jnz, 2),         -- 4: if counter /= 0 goto 2
      (op_halt, 0),        -- 5: halt
      others => (op_nop, 0) );
begin
  execute : process (clk)
    variable pc      : integer := 0;
    variable acc     : integer := 0;
    variable counter : integer := 0;
    variable halted  : boolean := false;
    variable insn    : instruction;
  begin
    if clk'event and clk = '1' then
      if not halted then
        insn := prog(pc);
        pc := pc + 1;
        case insn.op is
          when op_nop  => null;
          when op_ldi  => counter := insn.arg;
          when op_add  =>
            if insn.arg = 1 then
              acc := acc + counter;
            end if;
          when op_dec  => counter := counter - 1;
          when op_jnz  =>
            if counter /= 0 then
              pc := insn.arg;
            end if;
          when op_halt =>
            halted := true;
            result <= acc;
            done_flag <= '1';
        end case;
      end if;
    end if;
  end process;
end microcoded;
|}

let testbench =
  {|
entity tb is end tb;
architecture t of tb is
  component cpu
    port (clk : in bit; done_flag : out bit; result : out integer);
  end component;
  signal clk : bit := '0';
  signal done_flag : bit;
  signal result : integer := 0;
begin
  dut : cpu port map (clk => clk, done_flag => done_flag, result => result);
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait for 5 ns;
  end process;
  check : process
  begin
    wait until done_flag = '1';
    assert result = 55
      report "machine computed the wrong sum" severity failure;
    assert false report "sum(1..10) = 55 : machine verified" severity note;
    wait;
  end process;
end t;
|}

let () =
  let c = Vhdl_compiler.create () in
  List.iter (fun s -> ignore (Vhdl_compiler.compile c s)) [ isa; cpu; testbench ];
  let sim = Vhdl_compiler.elaborate c ~top:"tb" () in
  let _ = Vhdl_compiler.run c sim ~max_ns:2000 in
  List.iter
    (fun (t, sev, msg) ->
      Printf.printf "%-8s %s: %s\n" (Rt.format_time t) (Kernel.severity_name sev) msg)
    (Vhdl_compiler.messages sim);
  (match Vhdl_compiler.value sim ":tb:RESULT" with
  | Some v -> Printf.printf "result = %s\n" (Value.image v)
  | None -> ());
  let st = Kernel.stats (Vhdl_compiler.kernel sim) in
  Printf.printf "executed in %d clock cycles (%d events)\n"
    (st.Kernel.time_steps / 2) st.Kernel.events
