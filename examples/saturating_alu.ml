(* Saturating arithmetic through operator overloading.

   A DSP-style package defines an 8-bit saturating numeric type: its "+"
   and "-" clamp at the rails instead of wrapping.  The package keeps the
   rails as *deferred constants* (LRM 4.3.1.1) — the body picks the actual
   values — and exports operator functions (`function "+"`), which user
   code applies with plain infix syntax.

   In the compiler this exercises the §4.1 cascade end to end: the
   principal AG classifies each `+` against the environment and, seeing
   the user overload, emits an operator token carrying the candidate
   signatures; the expression AG resolves the overload by operand type.

   Run with: dune exec examples/saturating_alu.exe *)

let package_source =
  {|
package sat8 is
  constant sat_min : integer;   -- deferred: the body picks the rails
  constant sat_max : integer;

  -- a distinct numeric type: its operators are separate from INTEGER's,
  -- so the overloads below apply to sat operands only (a subtype would
  -- make "+" apply to every integer, including inside its own body)
  type sat is range -128 to 127;

  function "+" (a, b : sat) return sat;
  function "-" (a, b : sat) return sat;
  function clamp (x : integer) return sat;
end sat8;

package body sat8 is
  constant sat_min : integer := -128;
  constant sat_max : integer := 127;

  function clamp (x : integer) return sat is
  begin
    if x > sat_max then
      return sat(sat_max);
    elsif x < sat_min then
      return sat(sat_min);
    else
      return sat(x);
    end if;
  end clamp;

  function "+" (a, b : sat) return sat is
  begin
    return clamp(integer(a) + integer(b));
  end;

  function "-" (a, b : sat) return sat is
  begin
    return clamp(integer(a) - integer(b));
  end;
end sat8;
|}

let testbench_source =
  {|
use work.sat8.all;

entity alu_tb is end alu_tb;

architecture t of alu_tb is
  signal acc : sat := 0;
  signal overflowed : sat := 0;
  signal underflowed : sat := 0;
  signal mixed : sat := 0;
begin
  stimulus : process
    variable a : sat := 100;
    variable b : sat := 60;
  begin
    acc <= a + 20;                -- 120: still in range
    overflowed <= a + b;          -- 160 clamps to 127
    underflowed <= (0 - a) - b;   -- -160 clamps to -128
    mixed <= (a + b) - 200;       -- 127 - 200 = -73 (post-clamp arithmetic)
    wait;
  end process;
end t;
|}

let expect name got want =
  Printf.printf "  %-12s = %4d  (expected %4d)\n" name got want;
  if got <> want then failwith ("wrong value for " ^ name)

let () =
  let compiler = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile compiler package_source);
  ignore (Vhdl_compiler.compile compiler testbench_source);
  let sim = Vhdl_compiler.elaborate compiler ~top:"alu_tb" () in
  ignore (Vhdl_compiler.run compiler sim ~max_ns:10);
  let value path =
    match Vhdl_compiler.value sim path with
    | Some v -> Value.as_int v
    | None -> failwith ("no signal " ^ path)
  in
  Printf.printf "saturating 8-bit ALU (user-defined \"+\" and \"-\"):\n";
  expect "acc" (value ":alu_tb:ACC") 120;
  expect "overflowed" (value ":alu_tb:OVERFLOWED") 127;
  expect "underflowed" (value ":alu_tb:UNDERFLOWED") (-128);
  expect "mixed" (value ":alu_tb:MIXED") (-73);
  Printf.printf "all saturating results correct\n"
