(* Quickstart: compile a VHDL description, simulate it, inspect the
   waveform.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
entity blink is
end blink;

architecture demo of blink is
  signal led : bit := '0';
  signal count : integer := 0;
begin
  toggler : process
  begin
    led <= not led after 10 ns;
    wait for 10 ns;
  end process;

  counter : process (led)
    variable n : integer := 0;
  begin
    if led = '1' then
      n := n + 1;
      count <= n;
    end if;
  end process;
end demo;
|}

let () =
  (* 1. a compiler with an in-memory working library *)
  let compiler = Vhdl_compiler.create () in

  (* 2. analyze the source: both attribute grammars run here *)
  let units = Vhdl_compiler.compile compiler source in
  Printf.printf "compiled %d design units:\n" (List.length units);
  List.iter (fun u -> Printf.printf "  %s\n" u.Unit_info.u_key) units;

  (* 3. elaborate (the "link" step) and run for 100 ns *)
  let sim = Vhdl_compiler.elaborate compiler ~top:"blink" () in
  let outcome = Vhdl_compiler.run compiler sim ~max_ns:100 in
  Printf.printf "\nsimulated to %s (%s)\n"
    (Rt.format_time (Kernel.now (Vhdl_compiler.kernel sim)))
    (match outcome with
    | Kernel.Quiescent -> "quiescent"
    | Kernel.Time_limit -> "time limit"
    | Kernel.Stopped -> "stopped"
    | Kernel.Fuel_exhausted -> "fuel exhausted");

  (* 4. inspect results through the name server and the trace *)
  Printf.printf "\nled waveform:\n";
  List.iter
    (fun (t, v) ->
      Printf.printf "  %-8s %s\n" (Rt.format_time t) (Value.image ~ty:Std.bit v))
    (Vhdl_compiler.history sim ":blink:LED");
  (match Vhdl_compiler.value sim ":blink:COUNT" with
  | Some v -> Printf.printf "\nfinal count = %s\n" (Value.image v)
  | None -> ());

  (* 5. the phase breakdown the compiler kept while working *)
  Printf.printf "\ncompiler phases:\n%s\n"
    (Format.asprintf "%a" Vhdl_util.Phase_timer.pp (Vhdl_compiler.timer compiler))
