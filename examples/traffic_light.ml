(* Behavioral modelling: a traffic-light controller as a clocked state
   machine with user-defined enumeration types, case statements, user
   attributes, and assertion-based checking.

   Run with: dune exec examples/traffic_light.exe *)

let source =
  {|
package traffic_types is
  type light is (red, red_yellow, green, yellow);
  function duration_of (l : light) return integer;
end traffic_types;

package body traffic_types is
  function duration_of (l : light) return integer is
  begin
    case l is
      when red        => return 40;
      when red_yellow => return 10;
      when green      => return 30;
      when yellow     => return 10;
    end case;
  end duration_of;
end traffic_types;
|}

let controller =
  {|
use work.traffic_types.all;

entity controller is
  port (clk : in bit; state_code : out integer);
end controller;

architecture fsm of controller is
  signal state : light := red;
  signal ticks : integer := 0;
begin
  step : process (clk)
    variable t : integer := 0;
  begin
    if clk'event and clk = '1' then
      t := t + 10;
      if t >= duration_of(state) then
        t := 0;
        case state is
          when red        => state <= red_yellow;
          when red_yellow => state <= green;
          when green      => state <= yellow;
          when yellow     => state <= red;
        end case;
      end if;
      ticks <= t;
    end if;
  end process;
  state_code <= light'pos(state);
end fsm;
|}

let testbench =
  {|
use work.traffic_types.all;

entity tb is
end tb;

architecture test of tb is
  component controller
    port (clk : in bit; state_code : out integer);
  end component;
  signal clk : bit := '0';
  signal code : integer := 0;
begin
  dut : controller port map (clk => clk, state_code => code);

  clock : process
  begin
    clk <= not clk after 5 ns;
    wait for 5 ns;
  end process;

  -- safety property: the controller never jumps from green to red directly
  monitor : process (code)
  begin
    assert not (code = light'pos(red) and code'last_value = light'pos(green))
      report "green -> red without yellow!" severity failure;
  end process;
end test;
|}

let () =
  let compiler = Vhdl_compiler.create () in
  List.iter
    (fun src -> ignore (Vhdl_compiler.compile compiler src))
    [ source; controller; testbench ];
  let sim = Vhdl_compiler.elaborate compiler ~top:"tb" () in
  let _ = Vhdl_compiler.run compiler sim ~max_ns:1000 in
  let names = [| "RED"; "RED_YELLOW"; "GREEN"; "YELLOW" |] in
  Printf.printf "state transitions:\n";
  List.iter
    (fun (t, v) ->
      let code = Value.as_int v in
      if code >= 0 && code < Array.length names then
        Printf.printf "  %-8s %s\n" (Rt.format_time t) names.(code))
    (Vhdl_compiler.history sim ":tb:CODE");
  let st = Kernel.stats (Vhdl_compiler.kernel sim) in
  Printf.printf "\n%d events across %d time steps, %d process runs\n"
    st.Kernel.events st.Kernel.time_steps st.Kernel.process_runs
