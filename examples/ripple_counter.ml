(* A parameterized ripple counter built with a for-generate of T-flip-flop
   stages connected through indexed port actuals (element association):
   generate statements, implicit connector processes, and per-element
   drivers on the tap array.

   Run with: dune exec examples/ripple_counter.exe *)

let tff =
  {|
entity tff is
  port (clk : in bit; q : out bit);
end tff;

architecture behav of tff is
  signal state : bit := '0';
begin
  flip : process (clk)
  begin
    -- falling-edge triggered: each stage divides its input by two
    if clk'event and clk = '0' then
      state <= not state;
    end if;
  end process;
  q <= state;
end behav;
|}

(* stage i toggles on the falling edge of stage i-1: a divide-by-32 chain *)
let counter =
  {|
entity ripple is
  port (clk : in bit; msb : out bit);
end ripple;

architecture gen of ripple is
  component tff
    port (clk : in bit; q : out bit);
  end component;
  type tap_array is array (0 to 4) of bit;
  signal taps : tap_array := "00000";
begin
  first : tff port map (clk => clk, q => taps(0));
  chain : for i in 1 to 4 generate
    stage : tff port map (clk => taps(i - 1), q => taps(i));
  end generate;
  msb <= taps(4);
end gen;
|}

let testbench =
  {|
entity tb is end tb;
architecture t of tb is
  component ripple
    port (clk : in bit; msb : out bit);
  end component;
  signal clk : bit := '0';
  signal msb : bit;
begin
  dut : ripple port map (clk => clk, msb => msb);
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait for 5 ns;
  end process;
end t;
|}

let () =
  let c = Vhdl_compiler.create () in
  List.iter (fun s -> ignore (Vhdl_compiler.compile c s)) [ tff; counter; testbench ];
  let sim = Vhdl_compiler.elaborate c ~top:"tb" () in
  (* the msb (stage 4) first rises after 16 full input periods = 160 ns *)
  let _ = Vhdl_compiler.run c sim ~max_ns:400 in
  Printf.printf "hierarchy (%d instances):\n%s\n"
    (List.length (Name_server.instances (Vhdl_compiler.name_server sim)))
    (Format.asprintf "%a" Name_server.pp (Vhdl_compiler.name_server sim));
  Printf.printf "msb transitions (first rise at 160 ns, period 320 ns):\n";
  List.iter
    (fun (t, v) ->
      Printf.printf "  %-8s %s\n" (Rt.format_time t) (Value.image ~ty:Std.bit v))
    (Vhdl_compiler.history sim ":tb:MSB");
  let st = Kernel.stats (Vhdl_compiler.kernel sim) in
  Printf.printf "\n%d events, %d process runs\n" st.Kernel.events st.Kernel.process_runs
