(* A serial link: transmitter serializes a byte (start bit, 8 data bits,
   stop bit), receiver deserializes and checks it — exercising bit vectors,
   slices, unconstrained-array functions, procedures, and waveform lists.

   Run with: dune exec examples/uart_checker.exe *)

let bits_pkg =
  {|
package bits is
  subtype byte_range is integer range 0 to 7;
  function parity (v : bit_vector) return bit;
end bits;

package body bits is
  function parity (v : bit_vector) return bit is
    variable p : bit := '0';
  begin
    for i in 0 to v'length - 1 loop
      p := p xor v(v'low + i);
    end loop;
    return p;
  end parity;
end bits;
|}

let link =
  {|
use work.bits.all;

entity link_tb is
end link_tb;

architecture test of link_tb is
  type octet is array (0 to 7) of bit;
  signal line_wire : bit := '1';       -- idle high
  signal received  : octet := "00000000";
  signal got_byte  : bit := '0';
  constant bit_time : time := 10 ns;
  constant payload : octet := "01101001";
begin
  transmitter : process
  begin
    wait for 20 ns;
    -- start bit
    line_wire <= '0';
    wait for bit_time;
    -- data bits, LSB first
    for i in 0 to 7 loop
      line_wire <= payload(i);
      wait for bit_time;
    end loop;
    -- stop bit
    line_wire <= '1';
    wait;
  end process;

  receiver : process
    variable shift : octet := "00000000";
  begin
    -- wait for the falling edge of the start bit
    wait until line_wire = '0';
    -- sample mid-bit
    wait for bit_time + bit_time / 2;
    for i in 0 to 7 loop
      shift(i) := line_wire;
      wait for bit_time;
    end loop;
    assert line_wire = '1' report "framing error: stop bit missing" severity failure;
    received <= shift;
    got_byte <= '1';
    wait;
  end process;

  checker : process (got_byte)
  begin
    if got_byte = '1' then
      assert received = payload
        report "received byte differs from payload" severity failure;
      assert false report "byte received intact" severity note;
    end if;
  end process;
end test;
|}

let () =
  let compiler = Vhdl_compiler.create () in
  List.iter (fun src -> ignore (Vhdl_compiler.compile compiler src)) [ bits_pkg; link ];
  let sim = Vhdl_compiler.elaborate compiler ~top:"link_tb" () in
  let _ = Vhdl_compiler.run compiler sim ~max_ns:500 in
  List.iter
    (fun (t, sev, msg) ->
      Printf.printf "%-8s %s: %s\n" (Rt.format_time t)
        (Kernel.severity_name sev) msg)
    (Vhdl_compiler.messages sim);
  (match Vhdl_compiler.value sim ":link_tb:RECEIVED" with
  | Some v -> Printf.printf "received = %s\n" (Value.image v)
  | None -> ());
  (* dump a VCD of the whole run *)
  let vcd = Trace.to_vcd (Vhdl_compiler.trace sim) ~timescale_fs:1 in
  Vhdl_util.Unix_compat.write_file "_build/link.vcd" vcd;
  Printf.printf "waveform written to _build/link.vcd (%d bytes)\n" (String.length vcd)
