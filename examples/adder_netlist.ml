(* Structural design: a 4-bit ripple-carry adder built from gate-level
   entities, exercising components, port maps, generics, configuration
   binding, and the VIF-backed separate-compilation flow.

   Run with: dune exec examples/adder_netlist.exe *)

let gates =
  {|
entity xor2 is
  port (a, b : in bit; y : out bit);
end xor2;
architecture rtl of xor2 is
begin
  y <= a xor b after 1 ns;
end rtl;

entity and2 is
  port (a, b : in bit; y : out bit);
end and2;
architecture rtl of and2 is
begin
  y <= a and b after 1 ns;
end rtl;

entity or2 is
  port (a, b : in bit; y : out bit);
end or2;
architecture rtl of or2 is
begin
  y <= a or b after 1 ns;
end rtl;
|}

let full_adder =
  {|
entity full_adder is
  port (a, b, cin : in bit; sum, cout : out bit);
end full_adder;

architecture net of full_adder is
  component xor2
    port (a, b : in bit; y : out bit);
  end component;
  component and2
    port (a, b : in bit; y : out bit);
  end component;
  component or2
    port (a, b : in bit; y : out bit);
  end component;
  signal s1, c1, c2 : bit;
begin
  x1 : xor2 port map (a => a, b => b, y => s1);
  x2 : xor2 port map (a => s1, b => cin, y => sum);
  a1 : and2 port map (a => a, b => b, y => c1);
  a2 : and2 port map (a => s1, b => cin, y => c2);
  o1 : or2  port map (a => c1, b => c2, y => cout);
end net;
|}

(* a 4-bit ripple-carry adder over the full adders *)
let adder4 =
  {|
entity adder4 is
  port (a0, a1, a2, a3 : in bit;
        b0, b1, b2, b3 : in bit;
        cin : in bit;
        s0, s1, s2, s3 : out bit;
        cout : out bit);
end adder4;

architecture ripple of adder4 is
  component full_adder
    port (a, b, cin : in bit; sum, cout : out bit);
  end component;
  signal c1, c2, c3 : bit;
begin
  fa0 : full_adder port map (a => a0, b => b0, cin => cin, sum => s0, cout => c1);
  fa1 : full_adder port map (a => a1, b => b1, cin => c1,  sum => s1, cout => c2);
  fa2 : full_adder port map (a => a2, b => b2, cin => c2,  sum => s2, cout => c3);
  fa3 : full_adder port map (a => a3, b => b3, cin => c3,  sum => s3, cout => cout);
end ripple;
|}

(* a testbench driving one addition: 0110 + 0011 = 1001 *)
let testbench =
  {|
entity adder_tb is
end adder_tb;

architecture test of adder_tb is
  component adder4
    port (a0, a1, a2, a3 : in bit;
          b0, b1, b2, b3 : in bit;
          cin : in bit;
          s0, s1, s2, s3 : out bit;
          cout : out bit);
  end component;
  signal a0, a1, a2, a3 : bit := '0';
  signal b0, b1, b2, b3 : bit := '0';
  signal s0, s1, s2, s3, cout : bit;
begin
  dut : adder4 port map
    (a0 => a0, a1 => a1, a2 => a2, a3 => a3,
     b0 => b0, b1 => b1, b2 => b2, b3 => b3,
     cin => '0',
     s0 => s0, s1 => s1, s2 => s2, s3 => s3, cout => cout);

  stimulus : process
  begin
    -- a = 6 (0110), b = 3 (0011)
    a1 <= '1'; a2 <= '1';
    b0 <= '1'; b1 <= '1';
    wait for 50 ns;
    -- expect s = 9 (1001)
    assert s0 = '1' and s1 = '0' and s2 = '0' and s3 = '1' and cout = '0'
      report "adder produced the wrong sum" severity failure;
    assert false report "6 + 3 = 9: adder verified" severity note;
    wait;
  end process;
end test;
|}

let () =
  let compiler = Vhdl_compiler.create () in
  List.iter
    (fun src -> ignore (Vhdl_compiler.compile compiler src))
    [ gates; full_adder; adder4; testbench ];
  let sim = Vhdl_compiler.elaborate compiler ~top:"adder_tb" () in
  let _ = Vhdl_compiler.run compiler sim ~max_ns:100 in
  Printf.printf "instances elaborated: %d\n" sim.Vhdl_compiler.model.Elaborate.m_instances;
  Printf.printf "hierarchy:\n%s\n"
    (Format.asprintf "%a" Name_server.pp (Vhdl_compiler.name_server sim));
  List.iter
    (fun (t, sev, msg) ->
      Printf.printf "%-8s [%d] %s\n" (Rt.format_time t) sev msg)
    (Vhdl_compiler.messages sim);
  let bit path =
    match Vhdl_compiler.value sim path with
    | Some v -> Value.image ~ty:Std.bit v
    | None -> "?"
  in
  Printf.printf "\nsum = %s%s%s%s (carry %s)\n"
    (bit ":adder_tb:S3") (bit ":adder_tb:S2") (bit ":adder_tb:S1") (bit ":adder_tb:S0")
    (bit ":adder_tb:COUT")
