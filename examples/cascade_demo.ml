(* The paper's §4.1 demonstration, made visible: the same source text
   [X (Y)] is turned into *different LEF token streams* — and therefore
   parsed with different phrase structure by the expression AG — depending
   on what X and Y denote in the environment.

   "If X is a subprogram and Y is a variable then the principal AG
   translates this to a string of LEF tokens [subprogram, '(', variable,
   ')'] which is parsed according to the expression AG's phrase-structure
   for a subprogram invocation.  On the other hand, if X denotes a variable
   and Y denotes a type ..." — paper, section 4.1.

   Run with: dune exec examples/cascade_demo.exe *)

let array_ty =
  Types.subtype
    {
      Types.base = "WORK.DEMO.WORD";
      kind = Types.Karray { index = Std.integer; elem = Std.integer };
      constr = None;
    }
    ~constr:(Types.Crange (0, Types.To, 7))

let func_sig =
  {
    Denot.ss_name = "X";
    ss_mangled = "WORK.DEMO:X/INTEGER";
    ss_kind = `Function;
    ss_params =
      [
        {
          Denot.p_name = "ARG";
          p_mode = Kir.Arg_in;
          p_class = Denot.Cconstant;
          p_ty = Std.integer;
          p_default = None;
        };
      ];
    ss_ret = Some Std.integer;
    ss_builtin = false;
  }

let variable name ty index =
  Denot.Dobject
    { name; cls = Denot.Cvariable; ty; mode = None; slot = Denot.Sl_frame { level = 0; index } }

(* four environments in which the same shape means different things *)
let scenarios =
  [
    ( "X function, Y variable  (call)",
      "X (Y)",
      [ ("X", Denot.Dsubprog func_sig); ("Y", variable "Y" Std.integer 0) ] );
    ( "X array, Y variable     (indexing)",
      "X (Y)",
      [ ("X", variable "X" array_ty 0); ("Y", variable "Y" Std.integer 1) ] );
    ( "X array, range argument (slice)",
      "X (2 to 5)",
      [ ("X", variable "X" array_ty 0) ] );
    ( "X type, Y variable      (conversion)",
      "X (Y)",
      [
        ("X", Denot.Dtype { Types.base = "WORK.DEMO.X"; kind = Types.Kfloat; constr = None });
        ("Y", variable "Y" Std.integer 0);
      ] );
  ]

let show source env =
  let lef = Cascade_driver.classify_tokens ~env (Lexer.tokenize source) in
  Printf.printf "  LEF: [%s]\n" (String.concat "; " (List.map Lef.describe lef));
  let r = Expr_eval.eval ~level:0 ~line:1 lef in
  if Diag.has_errors r.Pval.x_msgs then
    List.iter (fun d -> Format.printf "  %a@." Diag.pp d) r.Pval.x_msgs
  else
    Format.printf "  type %s, code %a@."
      (Types.short_name r.Pval.x_ty) Kir.pp_expr r.Pval.x_code

let () =
  Session.with_session (Session.in_memory []) @@ fun () ->
  Printf.printf
    "The same source text, classified through different environments\n\
     (the paper's cascaded evaluation, section 4.1):\n\n";
  List.iter
    (fun (label, source, binds) ->
      let env = Env.extend_many (Std.env ()) binds in
      Printf.printf "%s\n  source: %s\n" label source;
      show source env;
      print_newline ())
    scenarios;
  (* and the paper's other flagship: X'REVERSE_RANGE, user vs predefined *)
  Printf.printf "X'REVERSE_RANGE: user-defined attribute shadows the predefined one\n\n";
  let base_env = Env.extend_many (Std.env ()) [ ("X", variable "X" array_ty 0) ] in
  Printf.printf "without a user attribute (predefined range of the array):\n";
  (let lef = Cascade_driver.classify_tokens ~env:base_env (Lexer.tokenize "X'REVERSE_RANGE") in
   Printf.printf "  LEF: [%s]\n\n" (String.concat "; " (List.map Lef.describe lef)));
  let attr_env =
    Env.extend base_env "X'REVERSE_RANGE"
      (Denot.Dattr_value
         { of_name = "X"; attr = "REVERSE_RANGE"; value = Value.Vint 42; ty = Std.integer })
  in
  Printf.printf "with [attribute reverse_range of X ... is 42]:\n";
  let lef = Cascade_driver.classify_tokens ~env:attr_env (Lexer.tokenize "X'REVERSE_RANGE") in
  Printf.printf "  LEF: [%s]\n" (String.concat "; " (List.map Lef.describe lef));
  let r = Expr_eval.eval ~level:0 ~line:1 lef in
  Format.printf "  evaluates to %a : %s@."
    (fun fmt -> function Some v -> Value.pp fmt v | None -> Format.pp_print_string fmt "?")
    r.Pval.x_static
    (Types.short_name r.Pval.x_ty)
