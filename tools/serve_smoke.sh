#!/bin/sh
# serve_smoke.sh — CI gate for the resilient compile service.
#
# Five checks:
#   1. chaos burst: vhdlfuzz --serve-chaos forks a daemon and fires a mixed
#      healthy/faulty campaign; the zero-deaths invariant, the telemetry
#      ledger (requests = answered + shed + client_gone), the event-log
#      grammar, the flight-dump coverage, and the SLO-vs-histogram
#      agreement must all hold;
#   2. lifecycle: a daemon we boot ourselves (with an event log and a
#      flight-recorder directory) answers a healthy request, then a
#      poisoned request as [internal] — leaving a flight dump named after
#      the offending request id — while staying up, then drains
#      gracefully on a shutdown request (socket removed, clean exit);
#   3. warmth: the daemon's p50 request latency must beat one-shot
#      `vhdlc compile` p50 — the reason the daemon exists — and the
#      daemon's live heap must hold steady across 50 further warm
#      requests (a leaky worker fails here before it pages);
#   4. event log: after the drain, the JSONL log must be well-formed —
#      every line a {"ts":...,"ev":...} object, accept request ids
#      strictly monotone, start/finish pairs balanced — and `vhdlc
#      analyze` must digest it cleanly (exit 0, no invariant
#      violations on stderr);
#   5. overhead: the full-observability daemon (event log + the
#      always-on per-request span buffer) must keep its warm p50
#      within 5% of a bare daemon's (--span-cap 0, no events; one
#      re-measure allowed — these are whole-client round-trips, so
#      scheduler noise dwarfs the per-event write).
#
# Run from the workspace root (dune does this via the @serve-smoke alias):
#   VHDLC=bin/vhdlc.exe VHDLFUZZ=bin/vhdlfuzz.exe sh tools/serve_smoke.sh
set -eu

VHDLC="${VHDLC:-bin/vhdlc.exe}"
VHDLFUZZ="${VHDLFUZZ:-bin/vhdlfuzz.exe}"
SHOTS="${SERVE_SMOKE_SHOTS:-120}"

TMP="$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")"
DAEMON_PID=""
PLAIN_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "$PLAIN_PID" ] && kill "$PLAIN_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "serve_smoke: FAIL: $1" >&2
  [ -f "$TMP/chaos.log" ] && tail -40 "$TMP/chaos.log" >&2
  exit 1
}

# ---- 1. chaos burst ------------------------------------------------------
"$VHDLFUZZ" --serve-chaos --shots "$SHOTS" --quiet > "$TMP/chaos.log" 2>&1 \
  || fail "chaos campaign exited non-zero"
grep -q "zero daemon deaths, all invariants hold" "$TMP/chaos.log" \
  || fail "chaos campaign did not report the zero-deaths invariant"
grep -q "invariants: all hold" "$TMP/chaos.log" \
  || fail "telemetry ledger check missing from the campaign summary"
grep -q "event log OK" "$TMP/chaos.log" \
  || fail "event-log grammar check missing from the campaign summary"
grep -q "slo window p99" "$TMP/chaos.log" \
  || fail "slo-vs-histogram check missing from the campaign summary"

# ---- 2. lifecycle (with the observability surface on) --------------------
SOCK="$TMP/serve.sock"
EVENTS="$TMP/events.jsonl"
printf 'entity smoke is end smoke;\n' > "$TMP/u.vhd"

"$VHDLC" serve --socket "$SOCK" --quiet --allow-faults --grace 0.3 \
  --events "$EVENTS" --flight-dir "$TMP/dumps" &
DAEMON_PID=$!

"$VHDLC" request --socket "$SOCK" --wait-ready "$TMP/u.vhd" > /dev/null \
  || fail "healthy request failed"

# a poisoned request is answered [internal] (exit 2) while the daemon lives
rc=0
"$VHDLC" request --socket "$SOCK" --poison entity:SMOKE "$TMP/u.vhd" \
  > /dev/null 2> "$TMP/poison.err" || rc=$?
[ "$rc" -eq 2 ] || fail "poisoned request: expected exit 2 (internal), got $rc"
kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on a poisoned request"
"$VHDLC" request --socket "$SOCK" --ping > /dev/null \
  || fail "daemon does not answer after containing a fault"

# the firewall trip left a flight dump named after the rid the client saw
poison_rid=$(sed -n 's/.*rid=\([0-9]*\).*/\1/p' "$TMP/poison.err")
[ -n "$poison_rid" ] || fail "poisoned response did not echo a request id"
ls "$TMP/dumps" | grep -q -- "-rid${poison_rid}-firewall" \
  || fail "no firewall flight dump named after rid $poison_rid (have: $(ls "$TMP/dumps" 2>/dev/null | tr '\n' ' '))"

# the SLO window answers live
"$VHDLC" request --socket "$SOCK" --slo | grep -q '^window' \
  || fail "slo query did not answer"

# ---- 3. warmth: warm p50 must beat one-shot p50 --------------------------
ms_now() { date +%s%N; }
p50_of() { sort -n | awk '{ a[NR] = $1 } END { print a[int((NR + 1) / 2)] }'; }

warm_p50_on() {
  _sock=$1; _n=$2
  i=0
  while [ $i -lt "$_n" ]; do
    t0=$(ms_now)
    "$VHDLC" request --socket "$_sock" "$TMP/u.vhd" > /dev/null
    echo $((($(ms_now) - t0) / 1000))
    i=$((i + 1))
  done | p50_of
}

warm_p50=$(warm_p50_on "$SOCK" 15)
oneshot_p50=$(
  i=0
  while [ $i -lt 5 ]; do
    t0=$(ms_now)
    "$VHDLC" compile --work "$TMP/work" "$TMP/u.vhd" > /dev/null
    echo $((($(ms_now) - t0) / 1000))
    i=$((i + 1))
  done | p50_of
)
[ "$warm_p50" -lt "$oneshot_p50" ] \
  || fail "warm p50 (${warm_p50}us) not below one-shot p50 (${oneshot_p50}us)"

# ---- 3b. steady heap: 50 warm requests must not grow the live heap -------
# (the daemon is warm after the p50 burst above, so major-heap growth
# here is a leak, not cache warm-up; 15% headroom absorbs GC timing)
live_words() {
  "$VHDLC" request --socket "$SOCK" --stats --json \
    | sed -n 's/.*"live_words":\([0-9][0-9]*\).*/\1/p'
}
heap_before=$(live_words)
[ -n "$heap_before" ] || fail "stats JSON carries no heap.live_words"
i=0
while [ $i -lt 50 ]; do
  "$VHDLC" request --socket "$SOCK" "$TMP/u.vhd" > /dev/null
  i=$((i + 1))
done
heap_after=$(live_words)
[ $((heap_after * 100)) -le $((heap_before * 115)) ] \
  || fail "heap not steady across 50 warm requests (live words ${heap_before} -> ${heap_after})"

# ---- 5a. overhead: full-observability daemon vs bare daemon --------------
# (measured before the drain so both daemons are equally warm; verdict
# computed below once the bare daemon has answered its burst.  The bare
# daemon runs --span-cap 0 so the comparison prices the always-on span
# buffer as well as the event log.)
PLAIN_SOCK="$TMP/plain.sock"
"$VHDLC" serve --socket "$PLAIN_SOCK" --quiet --span-cap 0 &
PLAIN_PID=$!
"$VHDLC" request --socket "$PLAIN_SOCK" --wait-ready "$TMP/u.vhd" > /dev/null \
  || fail "plain daemon did not come up"

check_overhead() {
  events_p50=$(warm_p50_on "$SOCK" 20)
  plain_p50=$(warm_p50_on "$PLAIN_SOCK" 20)
  # events p50 <= plain p50 + 5%
  [ $((events_p50 * 100)) -le $((plain_p50 * 105)) ]
}
overhead_ok=1
check_overhead || check_overhead || overhead_ok=0
[ "$overhead_ok" -eq 1 ] \
  || fail "observability (events + span buffer) costs more than 5% at p50 (full ${events_p50}us vs bare ${plain_p50}us)"

"$VHDLC" request --socket "$PLAIN_SOCK" --shutdown > /dev/null \
  || fail "plain daemon shutdown failed"
wait "$PLAIN_PID" || fail "plain daemon exited non-zero"
PLAIN_PID=""

# ---- graceful drain ------------------------------------------------------
"$VHDLC" request --socket "$SOCK" --shutdown > /dev/null \
  || fail "shutdown request failed"
wait "$DAEMON_PID" || fail "daemon exited non-zero after drain"
DAEMON_PID=""
[ ! -S "$SOCK" ] || fail "socket file left behind after drain"

# ---- 4. event log: well-formed JSONL, monotone rids, balanced pairs ------
[ -s "$EVENTS" ] || fail "event log is missing or empty"
awk '
  !/^\{"ts":[0-9]/ { malformed++ }
  /"ev":"accept"/ {
    rid = $0; sub(/.*"rid":/, "", rid); sub(/[^0-9].*/, "", rid)
    accepts++
    if (rid + 0 <= last) mono_bad++
    last = rid + 0
  }
  /"ev":"start"/ { starts++ }
  /"ev":"finish"/ { finishes++ }
  END {
    if (malformed > 0) { print "EVLOG malformed lines: " malformed; exit 1 }
    if (accepts == 0) { print "EVLOG no accept events"; exit 1 }
    if (mono_bad > 0) { print "EVLOG non-monotone accept rids: " mono_bad; exit 1 }
    if (starts == 0 || starts != finishes) {
      print "EVLOG unbalanced start/finish: " starts " vs " finishes; exit 1
    }
    print "event log: " NR " lines, " accepts " accepts, " starts " start/finish pairs"
  }' "$EVENTS" || fail "event log validation failed"

# ---- 4b. analyze: the offline analytics digest the smoke log cleanly -----
"$VHDLC" analyze "$EVENTS" > "$TMP/analyze.out" 2> "$TMP/analyze.err" \
  || fail "vhdlc analyze exited non-zero on the smoke event log ($(cat "$TMP/analyze.err"))"
[ ! -s "$TMP/analyze.err" ] \
  || fail "vhdlc analyze reported warnings/violations on a clean log: $(cat "$TMP/analyze.err")"
grep -q "^event log:" "$TMP/analyze.out" \
  || fail "vhdlc analyze output missing the event-log summary line"
grep -q "finishes" "$TMP/analyze.out" \
  || fail "vhdlc analyze output missing the finish count"

echo "serve_smoke: OK ($SHOTS chaos shots, zero deaths; warm p50 ${warm_p50}us vs one-shot ${oneshot_p50}us; events p50 ${events_p50}us vs bare p50 ${plain_p50}us; heap ${heap_before}w -> ${heap_after}w over 50 warm requests)"
