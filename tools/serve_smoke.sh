#!/bin/sh
# serve_smoke.sh — CI gate for the resilient compile service.
#
# Three checks:
#   1. chaos burst: vhdlfuzz --serve-chaos forks a daemon and fires a mixed
#      healthy/faulty campaign; the zero-deaths invariant and the telemetry
#      ledger (requests = answered + shed + client_gone) must hold;
#   2. lifecycle: a daemon we boot ourselves answers a healthy request, then
#      a poisoned request as [internal] while staying up, then drains
#      gracefully on a shutdown request (socket removed, clean exit);
#   3. warmth: the daemon's p50 request latency must beat one-shot
#      `vhdlc compile` p50 — the reason the daemon exists.
#
# Run from the workspace root (dune does this via the @serve-smoke alias):
#   VHDLC=bin/vhdlc.exe VHDLFUZZ=bin/vhdlfuzz.exe sh tools/serve_smoke.sh
set -eu

VHDLC="${VHDLC:-bin/vhdlc.exe}"
VHDLFUZZ="${VHDLFUZZ:-bin/vhdlfuzz.exe}"
SHOTS="${SERVE_SMOKE_SHOTS:-120}"

TMP="$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "serve_smoke: FAIL: $1" >&2
  [ -f "$TMP/chaos.log" ] && tail -40 "$TMP/chaos.log" >&2
  exit 1
}

# ---- 1. chaos burst ------------------------------------------------------
"$VHDLFUZZ" --serve-chaos --shots "$SHOTS" --quiet > "$TMP/chaos.log" 2>&1 \
  || fail "chaos campaign exited non-zero"
grep -q "zero daemon deaths, all invariants hold" "$TMP/chaos.log" \
  || fail "chaos campaign did not report the zero-deaths invariant"
grep -q "invariants: all hold" "$TMP/chaos.log" \
  || fail "telemetry ledger check missing from the campaign summary"

# ---- 2. lifecycle --------------------------------------------------------
SOCK="$TMP/serve.sock"
printf 'entity smoke is end smoke;\n' > "$TMP/u.vhd"

"$VHDLC" serve --socket "$SOCK" --quiet --allow-faults --grace 0.3 &
DAEMON_PID=$!

"$VHDLC" request --socket "$SOCK" --wait-ready "$TMP/u.vhd" > /dev/null \
  || fail "healthy request failed"

# a poisoned request is answered [internal] (exit 2) while the daemon lives
rc=0
"$VHDLC" request --socket "$SOCK" --poison entity:SMOKE "$TMP/u.vhd" \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "poisoned request: expected exit 2 (internal), got $rc"
kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on a poisoned request"
"$VHDLC" request --socket "$SOCK" --ping > /dev/null \
  || fail "daemon does not answer after containing a fault"

# ---- 3. warmth: warm p50 must beat one-shot p50 --------------------------
ms_now() { date +%s%N; }
p50_of() { sort -n | awk '{ a[NR] = $1 } END { print a[int((NR + 1) / 2)] }'; }

warm_p50=$(
  i=0
  while [ $i -lt 15 ]; do
    t0=$(ms_now)
    "$VHDLC" request --socket "$SOCK" "$TMP/u.vhd" > /dev/null
    echo $((($(ms_now) - t0) / 1000))
    i=$((i + 1))
  done | p50_of
)
oneshot_p50=$(
  i=0
  while [ $i -lt 5 ]; do
    t0=$(ms_now)
    "$VHDLC" compile --work "$TMP/work" "$TMP/u.vhd" > /dev/null
    echo $((($(ms_now) - t0) / 1000))
    i=$((i + 1))
  done | p50_of
)
[ "$warm_p50" -lt "$oneshot_p50" ] \
  || fail "warm p50 (${warm_p50}us) not below one-shot p50 (${oneshot_p50}us)"

# ---- graceful drain ------------------------------------------------------
"$VHDLC" request --socket "$SOCK" --shutdown > /dev/null \
  || fail "shutdown request failed"
wait "$DAEMON_PID" || fail "daemon exited non-zero after drain"
DAEMON_PID=""
[ ! -S "$SOCK" ] || fail "socket file left behind after drain"

echo "serve_smoke: OK ($SHOTS chaos shots, zero deaths; warm p50 ${warm_p50}us vs one-shot ${oneshot_p50}us)"
