#!/bin/sh
# Small-quota benchmark regression gate against the checked-in baseline.
#
#   tools/bench_gate.sh [BASELINE]
#
# Runs the `vhdlc bench` suite under a tiny per-experiment quota and
# diffs it against BASELINE (default: BENCH_report.json at the repo
# root) with a deliberately generous threshold, so tier-1 stays green
# across machines while a genuine order-of-magnitude regression still
# fails the build.  Exit status is vhdlc's: 0 clean, 1 regression(s),
# 2 unreadable baseline.
#
# Environment:
#   VHDLC                 path to a built vhdlc executable; when unset
#                         the script builds bin/vhdlc.exe itself (do NOT
#                         leave it unset inside a dune rule — nested dune
#                         invocations deadlock on the build lock)
#   BENCH_GATE_BASELINE   baseline report path (overrides $1)
#   BENCH_GATE_THRESHOLD  regression threshold fraction (default 3.0,
#                         i.e. flag only >4x slowdowns; tightened from
#                         6.0 when the cascade memo + plan evaluator
#                         landed so the win stays locked in)
#   BENCH_GATE_QUOTA      per-experiment measurement quota in seconds
#                         (default 0.25)
#   BENCH_GATE_REPEATS    measured repetitions per experiment (default 3)
#   BENCH_GATE_ALLOC_THRESHOLD
#                         allocation (bytes/compile) regression threshold
#                         fraction (default 0.5 — allocation is near-
#                         deterministic rep to rep, so +50% is far above
#                         noise while a planted 2x blow-up fails the gate)
set -eu
cd "$(dirname "$0")/.."

BASELINE=${BENCH_GATE_BASELINE:-${1:-BENCH_report.json}}
THRESHOLD=${BENCH_GATE_THRESHOLD:-3.0}
ALLOC_THRESHOLD=${BENCH_GATE_ALLOC_THRESHOLD:-0.5}
QUOTA=${BENCH_GATE_QUOTA:-0.25}
REPEATS=${BENCH_GATE_REPEATS:-3}

if [ ! -f "$BASELINE" ]; then
  echo "bench_gate: no baseline at $BASELINE — run 'vhdlc bench --save-baseline $BASELINE' first" >&2
  exit 2
fi

if [ -z "${VHDLC:-}" ]; then
  dune build bin/vhdlc.exe
  VHDLC=_build/default/bin/vhdlc.exe
fi

exec "$VHDLC" bench --against "$BASELINE" --threshold "$THRESHOLD" \
  --alloc-threshold "$ALLOC_THRESHOLD" --quota "$QUOTA" --repeats "$REPEATS" \
  --warmup 0
