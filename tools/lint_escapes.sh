#!/bin/sh
# Lint for exception escapes in the user-facing compiler layers.
#
# Any failwith / invalid_arg / assert false in lib/front, lib/sem, or
# lib/elab is a potential crash on user input: it bypasses Diag and can
# only be contained (not explained) by the Supervisor firewall.  Sites
# proven unreachable from user input live in tools/escape_allowlist.txt
# with a justification; anything new fails this lint.
#
# Usage: tools/lint_escapes.sh [REPO_ROOT]

set -eu
root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
allow="$root/tools/escape_allowlist.txt"

hits=$(grep -rn -E 'failwith|invalid_arg|assert false' \
  "$root/lib/front" "$root/lib/sem" "$root/lib/elab" \
  --include='*.ml' 2>/dev/null \
  | sed "s#^$root/##" || true)

bad=""
while IFS= read -r line; do
  [ -n "$line" ] || continue
  ok=0
  while IFS= read -r pat; do
    case $pat in ''|'#'*) continue ;; esac
    if printf '%s\n' "$line" | grep -qE "$pat"; then
      ok=1
      break
    fi
  done < "$allow"
  if [ "$ok" -eq 0 ]; then
    bad="$bad$line
"
  fi
done <<EOF
$hits
EOF

if [ -n "$bad" ]; then
  echo "lint_escapes: unallowlisted exception escapes in user-facing layers:" >&2
  printf '%s' "$bad" >&2
  echo "Convert these to Diag errors, or justify them in tools/escape_allowlist.txt." >&2
  exit 1
fi
echo "lint_escapes: ok"
