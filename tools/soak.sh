#!/bin/sh
# Long-running differential-fuzzing soak, separate from tier-1 tests.
#
#   tools/soak.sh [SEED] [COUNT] [SIZE] [extra vhdlfuzz flags...]
#
# Defaults: seed 1000, 5000 designs, size 3.  Reproducers for any
# divergence or crash are shrunk and written to test/corpus/ so the
# next `dune runtest` replays them.  Exit status is vhdlfuzz's: 0 iff
# the campaign was clean.
set -eu
cd "$(dirname "$0")/.."

SEED=${1:-1000}
COUNT=${2:-5000}
SIZE=${3:-3}
[ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift

dune build bin/vhdlfuzz.exe
exec dune exec bin/vhdlfuzz.exe -- --soak \
  --seed "$SEED" --count "$COUNT" --size "$SIZE" \
  --corpus test/corpus "$@"
