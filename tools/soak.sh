#!/bin/sh
# Long-running differential-fuzzing soak, separate from tier-1 tests.
#
#   tools/soak.sh [SEED] [COUNT] [SIZE] [extra vhdlfuzz flags...]
#
# Defaults: seed 1000, 5000 designs, size 3.  Reproducers for any
# divergence or crash are shrunk and written to test/corpus/ so the
# next `dune runtest` replays them.  Exit status is vhdlfuzz's: 0 iff
# the campaign was clean.
#
# Each campaign appends its one-line telemetry summary (tokens, attrs,
# memo hits, cascade evaluations, ...) to the soak log — default
# _soak/soak.log, override with SOAK_LOG — so throughput across
# campaigns can be compared over time.
set -eu
cd "$(dirname "$0")/.."

SEED=${1:-1000}
COUNT=${2:-5000}
SIZE=${3:-3}
[ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift

LOG=${SOAK_LOG:-_soak/soak.log}
mkdir -p "$(dirname "$LOG")"

dune build bin/vhdlfuzz.exe

OUT=$(mktemp "${TMPDIR:-/tmp}/soak.XXXXXX")
trap 'rm -f "$OUT"' EXIT

STATUS=0
dune exec bin/vhdlfuzz.exe -- --soak \
  --seed "$SEED" --count "$COUNT" --size "$SIZE" \
  --corpus test/corpus "$@" > "$OUT" 2>&1 || STATUS=$?
cat "$OUT"

# the campaign's one-line telemetry summary, stamped with the campaign
# parameters, goes into the soak log
{
  printf '%s seed=%s count=%s size=%s status=%s ' \
    "$(date -u '+%Y-%m-%dT%H:%M:%SZ')" "$SEED" "$COUNT" "$SIZE" "$STATUS"
  grep '^telemetry:' "$OUT" | tail -1 || echo 'telemetry: (none)'
} >> "$LOG"

exit "$STATUS"
