#!/bin/sh
# Long-running differential-fuzzing soak, separate from tier-1 tests.
#
#   tools/soak.sh [SEED] [COUNT] [SIZE] [extra vhdlfuzz flags...]
#
# Defaults: seed 1000, 5000 designs, size 3.  Reproducers for any
# divergence or crash are shrunk and written to test/corpus/ so the
# next `dune runtest` replays them.  Exit status is vhdlfuzz's: 0 iff
# the campaign was clean.
#
# Each campaign appends its one-line telemetry summary (tokens, attrs,
# memo hits, cascade evaluations, peak heap, ...) plus its wall-clock
# time to the soak log — default _soak/soak.log, override with
# SOAK_LOG — so throughput and memory across campaigns can be compared
# over time.
set -eu
cd "$(dirname "$0")/.."

SEED=${1:-1000}
COUNT=${2:-5000}
SIZE=${3:-3}
[ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift

LOG=${SOAK_LOG:-_soak/soak.log}
mkdir -p "$(dirname "$LOG")"

# Size-based rotation so long chaos/soak runs never fill the disk: once
# the log passes SOAK_LOG_MAX bytes (default 1 MiB) it is rotated to
# "$LOG.1", replacing any previous rotation — at most two files (current
# + one previous generation) ever exist.
MAX=${SOAK_LOG_MAX:-1048576}
if [ -f "$LOG" ] && [ "$(wc -c < "$LOG")" -gt "$MAX" ]; then
  mv -f "$LOG" "$LOG.1"
fi

dune build bin/vhdlfuzz.exe

OUT=$(mktemp "${TMPDIR:-/tmp}/soak.XXXXXX")
trap 'rm -f "$OUT"' EXIT

STATUS=0
T0=$(date +%s)
dune exec bin/vhdlfuzz.exe -- --soak \
  --seed "$SEED" --count "$COUNT" --size "$SIZE" \
  --corpus test/corpus "$@" > "$OUT" 2>&1 || STATUS=$?
WALL=$(( $(date +%s) - T0 ))
cat "$OUT"

# the campaign's one-line telemetry summary (which ends with the peak
# heap), stamped with the campaign parameters and wall-clock seconds,
# goes into the soak log
{
  printf '%s seed=%s count=%s size=%s status=%s wall_s=%s ' \
    "$(date -u '+%Y-%m-%dT%H:%M:%SZ')" "$SEED" "$COUNT" "$SIZE" "$STATUS" "$WALL"
  grep '^telemetry:' "$OUT" | tail -1 || echo 'telemetry: (none)'
} >> "$LOG"

exit "$STATUS"
