let () =
  let c = Vhdl_compiler.create () in
  (try ignore (Vhdl_compiler.compile c {|
entity tb is end tb;
architecture t of tb is
  type cell;  -- hmm, incomplete types may not parse; skip forward refs
begin
end t;
|}) with Vhdl_compiler.Compile_error _ -> print_endline "incomplete type decl: rejected (expected for now)");
  let c = Vhdl_compiler.create () in
  (try ignore (Vhdl_compiler.compile c {|
entity tb is end tb;
architecture t of tb is
  type int_ptr is access integer;
  signal a : integer := 0;
  signal b : integer := 0;
  signal c_ok : integer := 0;
begin
  p : process
    variable p1 : int_ptr;
    variable p2 : int_ptr;
    variable ok : integer := 0;
  begin
    p1 := new integer'(41);
    p1.all := p1.all + 1;
    a <= p1.all;                  -- 42
    p2 := p1;                     -- shared cell
    p2.all := 7;
    b <= p1.all;                  -- 7 via aliasing
    if p1 = p2 and p1 /= null then ok := ok + 1; end if;
    deallocate(p1);
    if p1 = null then ok := ok + 10; end if;
    c_ok <= ok;
    wait;
  end process;
end t;
|}) with Vhdl_compiler.Compile_error m -> List.iter (fun d -> Format.printf "compile: %a@." Diag.pp d) m);
  let sim = Vhdl_compiler.elaborate c ~top:"tb" () in
  let _ = Vhdl_compiler.run c sim ~max_ns:10 in
  let v p = match Vhdl_compiler.value sim p with Some v -> Value.as_int v | None -> -1 in
  Printf.printf "a=%d (42) b=%d (7) c_ok=%d (11)\n" (v ":tb:A") (v ":tb:B") (v ":tb:C_OK")
