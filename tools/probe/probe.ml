(* Scratch pad: a tiny harness for trying VHDL snippets against the
   compiler during development.  Edit the source below and run
   [dune exec tools/probe/probe.exe]. *)

let source =
  {|
entity scratch is end scratch;
architecture a of scratch is
  signal s : integer := 0;
begin
  p : process
  begin
    s <= 41 + 1;
    wait;
  end process;
end a;
|}

let () =
  let c = Vhdl_compiler.create () in
  (try ignore (Vhdl_compiler.compile c source)
   with Vhdl_compiler.Compile_error msgs ->
     List.iter (fun d -> Format.printf "%a@." Diag.pp d) msgs);
  let sim = Vhdl_compiler.elaborate c ~top:"scratch" () in
  ignore (Vhdl_compiler.run c sim ~max_ns:10);
  match Vhdl_compiler.value sim ":scratch:S" with
  | Some v -> Format.printf "s = %a@." Value.pp v
  | None -> print_endline "signal not found"
