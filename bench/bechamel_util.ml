(* Thin wrapper over Bechamel: run a set of tests, return ns/run. *)

open Bechamel
open Toolkit

let ols =
  Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]

let run_tests ?(quota = 1.0) (tests : Test.t list) : (string * float) list =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name est acc ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> (name, ns) :: acc
          | _ -> acc)
        results []
      |> List.sort compare)
    tests

let pp_results title results =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-');
  List.iter
    (fun (name, ns) ->
      let v, unit =
        if ns > 1e9 then (ns /. 1e9, "s")
        else if ns > 1e6 then (ns /. 1e6, "ms")
        else if ns > 1e3 then (ns /. 1e3, "us")
        else (ns, "ns")
      in
      Printf.printf "  %-44s %10.2f %s/run\n" name v unit)
    results
