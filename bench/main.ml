(* The benchmark harness: regenerates every quantified table/figure/claim of
   the paper's evaluation (see DESIGN.md's experiment index and
   EXPERIMENTS.md for paper-vs-measured numbers).

   Usage:
     dune exec bench/main.exe            -- run every experiment
     dune exec bench/main.exe -- fig2    -- compiler size summary (Figure 2)
     dune exec bench/main.exe -- ag-stats  -- the section 4.1 AG statistics table
     dune exec bench/main.exe -- speed     -- PERF-SPEED lines/minute
     dune exec bench/main.exe -- phases    -- PERF-PHASE time breakdown
     dune exec bench/main.exe -- config    -- PERF-CONFIG configuration units
     dune exec bench/main.exe -- env       -- ABL-ENV list vs balanced tree
     dune exec bench/main.exe -- cascade   -- ABL-CASCADE cascade vs united
     dune exec bench/main.exe -- micro     -- Bechamel microbenchmarks *)

(* Bechamel also has an [Analyze]; capture the front end's before opening *)
module Front_analyze = Analyze

open Bechamel

let heading title = Printf.printf "\n==== %s ====\n\n" title

let now () = Sys.time ()

(* ------------------------------------------------------------------ *)
(* TBL-AG *)

let ag_stats () =
  heading "TBL-AG: AG statistics (cf. paper section 4.1)";
  let s1 = Stats.of_grammar ~name:"VHDL AG" (Main_grammar.grammar ()) in
  let s2 = Stats.of_grammar ~name:"expr AG" (Expr_eval.grammar ()) in
  Format.printf "%a@." Stats.pp_table [ s1; s2 ];
  Printf.printf
    "\npaper:  VHDL AG 503 prods / 355 syms / 3509 attrs / 8862 rules (6363 implicit) / 3 visits\n";
  Printf.printf
    "        expr AG 160 prods / 101 syms /  446 attrs / 2132 rules (1061 implicit) / 4 visits\n";
  Printf.printf "\nimplicit-rule fraction (paper: \"more than half\"): %.0f%% / %.0f%%\n"
    (100.0 *. Stats.implicit_fraction s1)
    (100.0 *. Stats.implicit_fraction s2)

(* ------------------------------------------------------------------ *)
(* PERF-SPEED *)

let compile_sources srcs =
  let c = Vhdl_compiler.create () in
  List.iter (fun s -> ignore (Vhdl_compiler.compile c s)) srcs;
  c

let time_compile srcs =
  let lines = List.fold_left (fun acc s -> acc + Lexer.source_lines s) 0 srcs in
  let start = now () in
  let reps = 3 in
  for _ = 1 to reps do
    ignore (compile_sources srcs)
  done;
  let dt = (now () -. start) /. float_of_int reps in
  (lines, dt, float_of_int lines /. dt *. 60.0)

let speed () =
  heading "PERF-SPEED: compilation throughput (paper: ~1000 lines/minute on an Apollo DN4000)";
  let workloads =
    [
      ("behavioral FSM (20 states)", [ Workload.behavioral ~name:"B1" ~states:20 ~exprs:40 ]);
      ("structural netlist (60 gates)", [ Workload.structural ~name:"N1" ~instances:60 ]);
      ("expression-heavy (120 constants)", [ Workload.expression_heavy ~n:120 ]);
      ("packages (40 functions)", [ Workload.package ~name:"P1" ~n:40 ]);
      ( "mixed project",
        [
          Workload.package ~name:"P2" ~n:15;
          Workload.behavioral ~name:"B2" ~states:10 ~exprs:20;
          Workload.structural ~name:"N2" ~instances:25;
        ] );
    ]
  in
  Printf.printf "%-36s %8s %9s %14s\n" "workload" "lines" "seconds" "lines/minute";
  List.iter
    (fun (name, srcs) ->
      let lines, dt, lpm = time_compile srcs in
      Printf.printf "%-36s %8d %9.3f %14.0f\n" name lines dt lpm)
    workloads

(* ------------------------------------------------------------------ *)
(* PERF-PHASE *)

let phases () =
  heading
    "PERF-PHASE: phase breakdown (paper: VIF 40-60%, C compile 20-30%, attribute evaluation 'a very small percent')";
  let dir = Filename.temp_file "vhdlbench" "" in
  Sys.remove dir;
  let c = Vhdl_compiler.create ~work_dir:dir () in
  let n_packages = 8 in
  for i = 1 to n_packages do
    ignore (Vhdl_compiler.compile c (Workload.package ~name:(Printf.sprintf "LIB%d" i) ~n:40))
  done;
  let c2 = Vhdl_compiler.create ~work_dir:dir () in
  let uses =
    String.concat ""
      (List.init n_packages (fun i -> Printf.sprintf "use work.lib%d.all;\n" (i + 1)))
  in
  (* several user units; the library cache is dropped between units so each
     compilation re-reads its foreign VIF, as each compiler invocation did
     in the original system *)
  List.iter
    (fun src ->
      Library.clear_cache (Vhdl_compiler.work_library c2);
      ignore (Vhdl_compiler.compile c2 src))
    [
      uses ^ Workload.behavioral ~name:"TOP1" ~states:15 ~exprs:30;
      uses ^ Workload.behavioral ~name:"TOP2" ~states:10 ~exprs:20;
      uses ^ Workload.expression_heavy ~n:30;
      Workload.structural ~name:"NET" ~instances:25;
    ];
  let sim = Vhdl_compiler.elaborate ~trace:false c2 ~top:"NET" () in
  let _ = Vhdl_compiler.run c2 sim ~max_ns:100 in
  Format.printf "%a@." Vhdl_util.Phase_timer.pp (Vhdl_compiler.timer c2);
  Printf.printf
    "\nnote: 'codegen+link (elaboration)' is our analog of the paper's host C\ncompilation of the generated model (their 20-30%% slot).\n"

(* ------------------------------------------------------------------ *)
(* PERF-CONFIG *)

let config () =
  heading
    "PERF-CONFIG: configuration units (paper footnote 3: few source lines, lots of foreign VIF reading/editing)";
  let dir = Filename.temp_file "vhdlcfg" "" in
  Sys.remove dir;
  let c = Vhdl_compiler.create ~work_dir:dir () in
  ignore (Vhdl_compiler.compile c (Workload.multi_arch_library ~archs:3));
  let netlist, config_src = Workload.config_workload ~style:`All ~instances:600 () in
  ignore (Vhdl_compiler.compile c netlist);
  let time_one label srcs =
    let lines = List.fold_left (fun a s -> a + Lexer.source_lines s) 0 srcs in
    let c2 = Vhdl_compiler.create ~work_dir:dir () in
    let start = now () in
    List.iter (fun s -> ignore (Vhdl_compiler.compile c2 s)) srcs;
    let dt = now () -. start in
    let io = Library.io_stats (Vhdl_compiler.work_library c2) in
    Printf.printf "%-28s %6d lines  %8.4fs  %10.0f lines/min  %3d VIF reads\n" label lines
      dt
      (float_of_int lines /. dt *. 60.0)
      io.Library.io_reads
  in
  time_one "ordinary unit (behavioral)" [ Workload.behavioral ~name:"ORD" ~states:20 ~exprs:40 ];
  time_one "configuration unit" [ config_src ];
  Printf.printf
    "\nshape to check: configuration lines/minute well below the ordinary unit's,\nwith the VIF reads column explaining the difference.\n"

(* ------------------------------------------------------------------ *)
(* ABL-ENV *)

let env_ablation () =
  heading "ABL-ENV: ENV as linear list vs applicative balanced tree (paper section 4.3)";
  let denot name =
    Denot.Dobject
      {
        name;
        cls = Denot.Cconstant;
        ty = Std.integer;
        mode = None;
        slot = Denot.Sl_static (Value.Vint 1);
      }
  in
  let sizes = [ 16; 64; 256; 1024 ] in
  Printf.printf "%-10s %16s %16s %10s\n" "bindings" "list lookup(ns)" "tree lookup(ns)" "speedup";
  List.iter
    (fun n ->
      let names = List.init n (fun i -> Printf.sprintf "NAME%04d" i) in
      let list_env =
        List.fold_left
          (fun e name -> Env.Env_list.extend e name (denot name))
          Env.Env_list.empty names
      in
      let tree_env =
        List.fold_left
          (fun e name -> Env.Env_tree.extend e name (denot name))
          Env.Env_tree.empty names
      in
      let probe = List.filteri (fun i _ -> i mod 7 = 0) names in
      let results =
        Bechamel_util.run_tests ~quota:0.3
          [
            Test.make ~name:"list"
              (Staged.stage (fun () ->
                   List.iter (fun name -> ignore (Env.Env_list.lookup list_env name)) probe));
            Test.make ~name:"tree"
              (Staged.stage (fun () ->
                   List.iter (fun name -> ignore (Env.Env_tree.lookup tree_env name)) probe));
          ]
      in
      let get name = try List.assoc name results with Not_found -> nan in
      let l = get "list" and t = get "tree" in
      Printf.printf "%-10d %16.0f %16.0f %9.1fx\n" n l t (l /. t))
    sizes;
  Printf.printf
    "\nshape to check: the tree wins and the gap widens with scope size (the\npaper adopted applicative balanced trees 'to make the search more efficient').\n"

(* ------------------------------------------------------------------ *)
(* ABL-CASCADE *)

let cascade_inputs () =
  let arr_ty =
    Types.subtype
      {
        Types.base = "WORK.B.ARR";
        kind = Types.Karray { index = Std.integer; elem = Std.integer };
        constr = None;
      }
      ~constr:(Types.Crange (0, Types.To, 63))
  in
  let fsig =
    {
      Denot.ss_name = "F";
      ss_mangled = "WORK.B:F/INTEGER";
      ss_kind = `Function;
      ss_params =
        [
          {
            Denot.p_name = "X";
            p_mode = Kir.Arg_in;
            p_class = Denot.Cconstant;
            p_ty = Std.integer;
            p_default = None;
          };
        ];
      ss_ret = Some Std.integer;
      ss_builtin = false;
    }
  in
  let env =
    Env.extend_many (Std.env ())
      [
        ( "V",
          Denot.Dobject
            {
              name = "V";
              cls = Denot.Cvariable;
              ty = arr_ty;
              mode = None;
              slot = Denot.Sl_frame { level = 0; index = 0 };
            } );
        ("F", Denot.Dsubprog fsig);
        ("ARR", Denot.Dtype arr_ty);
        ( "N",
          Denot.Dobject
            {
              name = "N";
              cls = Denot.Cconstant;
              ty = Std.integer;
              mode = None;
              slot = Denot.Sl_static (Value.Vint 5);
            } );
      ]
  in
  let exprs =
    [
      "V(3) + F(N) * 2";
      "V(1 to 4)";
      "F(V(N)) + N ** 2";
      "(N + 1) * (N - 1) mod 7";
      "V(0) + V(1) + V(2) + V(3) + V(4) + V(5)";
      "F(F(F(N)))";
      "N < 10 and V(0) = 3";
      "abs (-N) + (2 ** 8)";
    ]
  in
  (env, exprs)

let cascade () =
  heading "ABL-CASCADE: cascaded evaluation vs united productions (paper section 4.1)";
  let env, exprs = cascade_inputs () in
  let session = Session.in_memory [] in
  Session.with_session session (fun () ->
      List.iter
        (fun src ->
          let toks = Lexer.tokenize src in
          let united = United.eval_string ~env ~level:0 src in
          let lef = Cascade_driver.classify_tokens ~env toks in
          let casc = Expr_eval.eval ~level:0 ~line:1 lef in
          if not (Types.same_base united.Pval.x_ty casc.Pval.x_ty) then
            Printf.printf "  DISAGREE on %s: united %s vs cascade %s\n" src
              (Types.short_name united.Pval.x_ty)
              (Types.short_name casc.Pval.x_ty))
        exprs);
  let results =
    Bechamel_util.run_tests ~quota:1.0
      [
        Test.make ~name:"cascade (LEF + expression AG)"
          (Staged.stage (fun () ->
               Session.with_session session (fun () ->
                   List.iter
                     (fun src ->
                       let lef = Cascade_driver.classify_tokens ~env (Lexer.tokenize src) in
                       ignore (Expr_eval.eval ~level:0 ~line:1 lef))
                     exprs)));
        Test.make ~name:"united (RD parse + post-hoc)"
          (Staged.stage (fun () ->
               Session.with_session session (fun () ->
                   List.iter (fun src -> ignore (United.eval_string ~env ~level:0 src)) exprs)));
      ]
  in
  Bechamel_util.pp_results "expression compilation strategies" results;
  Printf.printf
    "\nshape to check: comparable magnitude — the paper chose the cascade for\nmaintainability (no duplicate semantics, no parsing-conflict bookkeeping),\naccepting AG overhead of roughly this gap.\n"

(* ------------------------------------------------------------------ *)
(* SIM-THROUGHPUT: kernel event rate (the simulator half of the system;
   the paper's companion reference [4] is "A State of the Art VHDL
   Simulator") *)

let divider_chain ~stages =
  Printf.sprintf
    {|
entity tff is
  port (clk : in bit; q : out bit);
end tff;
architecture behav of tff is
  signal state : bit := '0';
begin
  flip : process (clk)
  begin
    if clk'event and clk = '0' then
      state <= not state;
    end if;
  end process;
  q <= state;
end behav;

entity chain is end chain;
architecture t of chain is
  component tff
    port (clk : in bit; q : out bit);
  end component;
  type taps_t is array (0 to %d) of bit;
  signal taps : taps_t;
  signal clk : bit := '0';
begin
  first : tff port map (clk => clk, q => taps(0));
  g : for i in 1 to %d generate
    s : tff port map (clk => taps(i - 1), q => taps(i));
  end generate;
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait for 5 ns;
  end process;
end t;
|}
    stages stages

let sim_throughput () =
  heading "SIM-THROUGHPUT: kernel event rate (divider chain)";
  Printf.printf "%-10s %10s %12s %12s %14s
" "stages" "sim ns" "events" "proc runs" "events/sec";
  List.iter
    (fun stages ->
      let c = Vhdl_compiler.create () in
      ignore (Vhdl_compiler.compile c (divider_chain ~stages));
      let sim = Vhdl_compiler.elaborate ~trace:false c ~top:"chain" () in
      let start = now () in
      let _ = Vhdl_compiler.run c sim ~max_ns:20000 in
      let dt = now () -. start in
      let st = Kernel.stats (Vhdl_compiler.kernel sim) in
      Printf.printf "%-10d %10d %12d %12d %14.0f
" stages 20000 st.Kernel.events
        st.Kernel.process_runs
        (float_of_int st.Kernel.events /. dt))
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmark suite *)

let micro () =
  heading "Bechamel microbenchmarks (one Test.make per table/figure)";
  let behav = Workload.behavioral ~name:"MB" ~states:10 ~exprs:20 in
  let net = Workload.structural ~name:"MN" ~instances:20 in
  let exprsrc = Workload.expression_heavy ~n:40 in
  let multi = Workload.multi_arch_library ~archs:3 in
  let netlist, cfg = Workload.config_workload ~instances:10 () in
  let env, exprs = cascade_inputs () in
  let session = Session.in_memory [] in
  let results =
    Bechamel_util.run_tests ~quota:1.0
      [
        Test.make ~name:"speed/behavioral"
          (Staged.stage (fun () -> ignore (compile_sources [ behav ])));
        Test.make ~name:"speed/structural"
          (Staged.stage (fun () -> ignore (compile_sources [ net ])));
        Test.make ~name:"speed/expressions"
          (Staged.stage (fun () -> ignore (compile_sources [ exprsrc ])));
        Test.make ~name:"config/configuration-unit"
          (Staged.stage (fun () -> ignore (compile_sources [ multi; netlist; cfg ])));
        Test.make ~name:"ag/analysis-expr-grammar"
          (Staged.stage (fun () -> ignore (Analysis.compute (Expr_eval.grammar ()))));
        Test.make ~name:"cascade/cascade"
          (Staged.stage (fun () ->
               Session.with_session session (fun () ->
                   List.iter
                     (fun src ->
                       let lef = Cascade_driver.classify_tokens ~env (Lexer.tokenize src) in
                       ignore (Expr_eval.eval ~level:0 ~line:1 lef))
                     exprs)));
        Test.make ~name:"cascade/united"
          (Staged.stage (fun () ->
               Session.with_session session (fun () ->
                   List.iter (fun src -> ignore (United.eval_string ~env ~level:0 src)) exprs)));
        Test.make ~name:"evaluator/demand"
          (Staged.stage
             (let g = Main_grammar.grammar () in
              let parser_ = Main_grammar.parser_ () in
              let session = Session.in_memory [] in
              let src = Workload.behavioral ~name:"EV" ~states:8 ~exprs:15 in
              fun () ->
                Session.with_session session (fun () ->
                    let tokens = Front_analyze.tokens_of_source src in
                    let tree = Parsing.parse_list parser_ ~eof_value:Pval.Unit tokens in
                    let ev =
                      Evaluator.create
                        ~token_line:(fun n -> Pval.Int n)
                        g
                        ~root_inherited:
                          [
                            ("ENV", Pval.Env Env.empty); ("LEVEL", Pval.Int (-1));
                            ("UNITNAME", Pval.Str "WORK.X"); ("CTX", Pval.Str "arch");
                            ("SLOTBASE", Pval.Int 0); ("SIGBASE", Pval.Int 0);
                            ("LOOPDEPTH", Pval.Int 0); ("RETTY", Pval.Opt None);
                            ("CTXOUT", Pval.Out Pval.out_empty); ("NLINES", Pval.Int 50);
                          ]
                        tree
                    in
                    ignore (Evaluator.goal ev "UNITS"))));
        Test.make ~name:"evaluator/staged"
          (Staged.stage
             (let g = Main_grammar.grammar () in
              let parser_ = Main_grammar.parser_ () in
              let partitions = Analysis.visit_partitions (Analysis.compute g) in
              let session = Session.in_memory [] in
              let src = Workload.behavioral ~name:"EV" ~states:8 ~exprs:15 in
              fun () ->
                Session.with_session session (fun () ->
                    let tokens = Front_analyze.tokens_of_source src in
                    let tree = Parsing.parse_list parser_ ~eof_value:Pval.Unit tokens in
                    let ev =
                      Evaluator.create
                        ~token_line:(fun n -> Pval.Int n)
                        g
                        ~root_inherited:
                          [
                            ("ENV", Pval.Env Env.empty); ("LEVEL", Pval.Int (-1));
                            ("UNITNAME", Pval.Str "WORK.X"); ("CTX", Pval.Str "arch");
                            ("SLOTBASE", Pval.Int 0); ("SIGBASE", Pval.Int 0);
                            ("LOOPDEPTH", Pval.Int 0); ("RETTY", Pval.Opt None);
                            ("CTXOUT", Pval.Out Pval.out_empty); ("NLINES", Pval.Int 50);
                          ]
                        tree
                    in
                    ignore (Evaluator.evaluate_staged ev ~partitions))));
        Test.make ~name:"fig2/lalr-table-expr-grammar"
          (Staged.stage (fun () ->
               ignore (Parsing.create ~name:"bench" (Expr_grammar.build ()) ~eof:"LEOF")));
      ]
  in
  Bechamel_util.pp_results "microbenchmarks" results

(* ------------------------------------------------------------------ *)

(* ABL-VIF: the in-memory unit cache in front of the VIF files.  The paper
   measures intermediate-file traffic at 40-60% of compilation; DESIGN.md
   calls out the loaded_files cache as our mitigation.  This ablation
   quantifies it: resolving every unit of a disk library with the cache
   dropped before each run (every [find] re-reads and re-parses VIF)
   versus with the cache warm. *)
let vif_cache_ablation () =
  heading "ABL-VIF: library cache off vs on (design choice in DESIGN.md)";
  let dir = Filename.temp_file "vifcache" "" in
  Sys.remove dir;
  let c = Vhdl_compiler.create ~work_dir:dir () in
  for i = 1 to 12 do
    ignore (Vhdl_compiler.compile c (Workload.package ~name:(Printf.sprintf "LIB%d" i) ~n:30))
  done;
  ignore (Vhdl_compiler.compile c (Workload.multi_arch_library ~archs:4));
  let lib = Library.create ~dir ~name:"WORK" () in
  let keys =
    List.map (fun (u : Unit_info.compiled_unit) -> u.Unit_info.u_key) (Library.all lib)
  in
  Printf.printf "library: %d units on disk

" (List.length keys);
  let resolve_all () =
    List.iter
      (fun key -> ignore (Library.find lib ~library:"WORK" ~key))
      keys
  in
  let results =
    Bechamel_util.run_tests ~quota:1.0
      [
        Test.make ~name:"cold (cache dropped per run)"
          (Staged.stage (fun () ->
               Library.clear_cache lib;
               resolve_all ()));
        Test.make ~name:"warm (cache kept)" (Staged.stage resolve_all);
      ]
  in
  let get name = try List.assoc name results with Not_found -> nan in
  let cold = get "cold (cache dropped per run)" and warm = get "warm (cache kept)" in
  Printf.printf "  %-32s %12.1f us/run
" "cold (cache dropped per run)" (cold /. 1e3);
  Printf.printf "  %-32s %12.1f us/run
" "warm (cache kept)" (warm /. 1e3);
  Printf.printf "  cache speedup: %.0fx
" (cold /. warm);
  Printf.printf
    "
shape to check: cold resolution is orders of magnitude slower — the
     paper's 40-60%% VIF share assumes per-invocation re-reads, which the
     PERF-PHASE workload mirrors by clearing this cache per unit.
"

let all () =
  Size_report.print ".";
  ag_stats ();
  speed ();
  phases ();
  config ();
  sim_throughput ();
  env_ablation ();
  cascade ();
  vif_cache_ablation ();
  micro ()

(* ------------------------------------------------------------------ *)
(* Result files: every run leaves a BENCH_<experiment>.json with the
   headline telemetry counters the workload racked up (memo hit rate,
   delta cycles, VIF traffic, ...) next to the printed report, so a run
   can be diffed against a previous one without re-reading the text. *)

module Telemetry = Vhdl_telemetry.Telemetry

let write_bench_json label elapsed_s =
  let module J = Telemetry.Json in
  let path = Printf.sprintf "BENCH_%s.json" label in
  Vhdl_util.Unix_compat.write_file path
    (J.obj
       [
         ("experiment", J.str label);
         ("elapsed_s", J.float elapsed_s);
         ("telemetry", Telemetry.metrics_json ());
       ]);
  Printf.printf "\n[%s: telemetry written to %s]\n" label path

let run_experiment label f =
  Telemetry.reset ();
  let start = now () in
  f ();
  write_bench_json label (now () -. start)

let () =
  let label, f =
    match Array.to_list Sys.argv with
    | _ :: "fig2" :: _ -> ("fig2", fun () -> Size_report.print ".")
    | _ :: "ag-stats" :: _ -> ("ag-stats", ag_stats)
    | _ :: "speed" :: _ -> ("speed", speed)
    | _ :: "phases" :: _ -> ("phases", phases)
    | _ :: "config" :: _ -> ("config", config)
    | _ :: "sim" :: _ -> ("sim", sim_throughput)
    | _ :: "env" :: _ -> ("env", env_ablation)
    | _ :: "cascade" :: _ -> ("cascade", cascade)
    | _ :: "vif-cache" :: _ -> ("vif-cache", vif_cache_ablation)
    | _ :: "micro" :: _ -> ("micro", micro)
    | _ -> ("all", all)
  in
  run_experiment label f
