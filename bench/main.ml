(* The benchmark harness: regenerates every quantified table/figure/claim of
   the paper's evaluation (see DESIGN.md's experiment index and
   EXPERIMENTS.md for paper-vs-measured numbers).

   Usage:
     dune exec bench/main.exe            -- run every experiment
     dune exec bench/main.exe -- fig2    -- compiler size summary (Figure 2)
     dune exec bench/main.exe -- ag-stats  -- the section 4.1 AG statistics table
     dune exec bench/main.exe -- speed     -- PERF-SPEED lines/minute
     dune exec bench/main.exe -- phases    -- PERF-PHASE time breakdown
     dune exec bench/main.exe -- config    -- PERF-CONFIG configuration units
     dune exec bench/main.exe -- env       -- ABL-ENV list vs balanced tree
     dune exec bench/main.exe -- cascade   -- ABL-CASCADE cascade vs united
     dune exec bench/main.exe -- micro     -- Bechamel microbenchmarks *)

(* Bechamel also has an [Analyze]; capture the front end's before opening *)
module Front_analyze = Analyze

open Bechamel
module Perf = Vhdl_perf.Perf

let heading title = Printf.printf "\n==== %s ====\n\n" title

(* Monotonic wall clock — never [Sys.time]: CPU time undercounts IO and
   descheduling, which is fatal to throughput numbers. *)
let now () = Vhdl_util.Unix_compat.now ()

(* Every measured experiment pushes its sample here; the run's samples
   are serialized to the canonical BENCH_report.json at exit, so any two
   bench runs can be diffed with `vhdlc bench --against`-style tooling
   (Perf.Diff) instead of eyeballing stdout. *)
let collected : Perf.Sample.t list ref = ref []

let collect sample =
  collected := sample :: !collected;
  sample

(* ------------------------------------------------------------------ *)
(* TBL-AG *)

let ag_stats () =
  heading "TBL-AG: AG statistics (cf. paper section 4.1)";
  let s1 = Stats.of_grammar ~name:"VHDL AG" (Main_grammar.grammar ()) in
  let s2 = Stats.of_grammar ~name:"expr AG" (Expr_eval.grammar ()) in
  Format.printf "%a@." Stats.pp_table [ s1; s2 ];
  Printf.printf
    "\npaper:  VHDL AG 503 prods / 355 syms / 3509 attrs / 8862 rules (6363 implicit) / 3 visits\n";
  Printf.printf
    "        expr AG 160 prods / 101 syms /  446 attrs / 2132 rules (1061 implicit) / 4 visits\n";
  Printf.printf "\nimplicit-rule fraction (paper: \"more than half\"): %.0f%% / %.0f%%\n"
    (100.0 *. Stats.implicit_fraction s1)
    (100.0 *. Stats.implicit_fraction s2)

(* ------------------------------------------------------------------ *)
(* PERF-SPEED *)

let compile_sources srcs =
  let c = Vhdl_compiler.create () in
  List.iter (fun s -> ignore (Vhdl_compiler.compile c s)) srcs;
  c

(* Statistical benchmark session per workload: warmup + repetitions on
   the monotonic clock, median/MAD (robust to GC/scheduler outliers), and
   the telemetry counter deltas riding along into the report. *)
let time_compile ~name srcs =
  let lines = List.fold_left (fun acc s -> acc + Lexer.source_lines s) 0 srcs in
  let sample =
    Perf.run ~warmup:1 ~repeats:5 ~name (fun () -> ignore (compile_sources srcs))
  in
  let dt = Perf.Sample.median sample in
  let lpm = float_of_int lines /. dt *. 60.0 in
  ignore
    (collect
       (Perf.Sample.with_metrics sample
          [ ("lines", float_of_int lines); ("lines_per_min", lpm) ]));
  (lines, sample, lpm)

let speed () =
  heading "PERF-SPEED: compilation throughput (paper: ~1000 lines/minute on an Apollo DN4000)";
  let workloads =
    [
      ( "speed/behavioral-fsm-20",
        "behavioral FSM (20 states)",
        [ Workload.behavioral ~name:"B1" ~states:20 ~exprs:40 ] );
      ( "speed/structural-60",
        "structural netlist (60 gates)",
        [ Workload.structural ~name:"N1" ~instances:60 ] );
      ( "speed/expression-120",
        "expression-heavy (120 constants)",
        [ Workload.expression_heavy ~n:120 ] );
      ( "speed/packages-40",
        "packages (40 functions)",
        [ Workload.package ~name:"P1" ~n:40 ] );
      ( "speed/mixed",
        "mixed project",
        [
          Workload.package ~name:"P2" ~n:15;
          Workload.behavioral ~name:"B2" ~states:10 ~exprs:20;
          Workload.structural ~name:"N2" ~instances:25;
        ] );
    ]
  in
  Printf.printf "%-36s %8s %11s %11s %14s\n" "workload" "lines" "median(s)" "mad(s)"
    "lines/minute";
  List.iter
    (fun (key, label, srcs) ->
      let lines, sample, lpm = time_compile ~name:key srcs in
      Printf.printf "%-36s %8d %11.4f %11.4f %14.0f\n" label lines
        (Perf.Sample.median sample) (Perf.Sample.mad sample) lpm)
    workloads

(* ------------------------------------------------------------------ *)
(* PERF-PHASE *)

let phases () =
  heading
    "PERF-PHASE: phase breakdown (paper: VIF 40-60%, C compile 20-30%, attribute evaluation 'a very small percent')";
  let dir = Filename.temp_file "vhdlbench" "" in
  Sys.remove dir;
  let c = Vhdl_compiler.create ~work_dir:dir () in
  let n_packages = 8 in
  for i = 1 to n_packages do
    ignore (Vhdl_compiler.compile c (Workload.package ~name:(Printf.sprintf "LIB%d" i) ~n:40))
  done;
  let c2 = Vhdl_compiler.create ~work_dir:dir () in
  let uses =
    String.concat ""
      (List.init n_packages (fun i -> Printf.sprintf "use work.lib%d.all;\n" (i + 1)))
  in
  (* several user units; the library cache is dropped between units so each
     compilation re-reads its foreign VIF, as each compiler invocation did
     in the original system *)
  List.iter
    (fun src ->
      Library.clear_cache (Vhdl_compiler.work_library c2);
      ignore (Vhdl_compiler.compile c2 src))
    [
      uses ^ Workload.behavioral ~name:"TOP1" ~states:15 ~exprs:30;
      uses ^ Workload.behavioral ~name:"TOP2" ~states:10 ~exprs:20;
      uses ^ Workload.expression_heavy ~n:30;
      Workload.structural ~name:"NET" ~instances:25;
    ];
  let sim = Vhdl_compiler.elaborate ~trace:false c2 ~top:"NET" () in
  let _ = Vhdl_compiler.run c2 sim ~max_ns:100 in
  Format.printf "%a@." Vhdl_util.Phase_timer.pp (Vhdl_compiler.timer c2);
  Printf.printf
    "\nnote: 'codegen+link (elaboration)' is our analog of the paper's host C\ncompilation of the generated model (their 20-30%% slot).\n"

(* ------------------------------------------------------------------ *)
(* PERF-CONFIG *)

let config () =
  heading
    "PERF-CONFIG: configuration units (paper footnote 3: few source lines, lots of foreign VIF reading/editing)";
  let dir = Filename.temp_file "vhdlcfg" "" in
  Sys.remove dir;
  let c = Vhdl_compiler.create ~work_dir:dir () in
  ignore (Vhdl_compiler.compile c (Workload.multi_arch_library ~archs:3));
  let netlist, config_src = Workload.config_workload ~style:`All ~instances:600 () in
  ignore (Vhdl_compiler.compile c netlist);
  let time_one key label srcs =
    let lines = List.fold_left (fun a s -> a + Lexer.source_lines s) 0 srcs in
    let reads = ref 0 in
    (* a fresh compiler per repetition keeps the library cache cold — the
       per-invocation re-reads are the effect being measured *)
    let sample =
      Perf.run ~warmup:0 ~repeats:3 ~name:key (fun () ->
          let c2 = Vhdl_compiler.create ~work_dir:dir () in
          List.iter (fun s -> ignore (Vhdl_compiler.compile c2 s)) srcs;
          reads := (Library.io_stats (Vhdl_compiler.work_library c2)).Library.io_reads)
    in
    let dt = Perf.Sample.median sample in
    let lpm = float_of_int lines /. dt *. 60.0 in
    ignore
      (collect
         (Perf.Sample.with_metrics sample
            [
              ("lines", float_of_int lines);
              ("lines_per_min", lpm);
              ("vif_reads", float_of_int !reads);
            ]));
    Printf.printf "%-28s %6d lines  %8.4fs  %10.0f lines/min  %3d VIF reads\n" label lines
      dt lpm !reads
  in
  time_one "config/ordinary-unit" "ordinary unit (behavioral)"
    [ Workload.behavioral ~name:"ORD" ~states:20 ~exprs:40 ];
  time_one "config/configuration-unit" "configuration unit" [ config_src ];
  Printf.printf
    "\nshape to check: configuration lines/minute well below the ordinary unit's,\nwith the VIF reads column explaining the difference.\n"

(* ------------------------------------------------------------------ *)
(* ABL-ENV *)

let env_ablation () =
  heading "ABL-ENV: ENV as linear list vs applicative balanced tree (paper section 4.3)";
  let denot name =
    Denot.Dobject
      {
        name;
        cls = Denot.Cconstant;
        ty = Std.integer;
        mode = None;
        slot = Denot.Sl_static (Value.Vint 1);
      }
  in
  let sizes = [ 16; 64; 256; 1024 ] in
  Printf.printf "%-10s %16s %16s %10s\n" "bindings" "list lookup(ns)" "tree lookup(ns)" "speedup";
  List.iter
    (fun n ->
      let names = List.init n (fun i -> Printf.sprintf "NAME%04d" i) in
      let list_env =
        List.fold_left
          (fun e name -> Env.Env_list.extend e name (denot name))
          Env.Env_list.empty names
      in
      let tree_env =
        List.fold_left
          (fun e name -> Env.Env_tree.extend e name (denot name))
          Env.Env_tree.empty names
      in
      let probe = List.filteri (fun i _ -> i mod 7 = 0) names in
      let results =
        Bechamel_util.run_tests ~quota:0.3
          [
            Test.make ~name:"list"
              (Staged.stage (fun () ->
                   List.iter (fun name -> ignore (Env.Env_list.lookup list_env name)) probe));
            Test.make ~name:"tree"
              (Staged.stage (fun () ->
                   List.iter (fun name -> ignore (Env.Env_tree.lookup tree_env name)) probe));
          ]
      in
      let get name = try List.assoc name results with Not_found -> nan in
      let l = get "list" and t = get "tree" in
      Printf.printf "%-10d %16.0f %16.0f %9.1fx\n" n l t (l /. t))
    sizes;
  Printf.printf
    "\nshape to check: the tree wins and the gap widens with scope size (the\npaper adopted applicative balanced trees 'to make the search more efficient').\n"

(* ------------------------------------------------------------------ *)
(* ABL-CASCADE *)

let cascade_inputs () =
  let arr_ty =
    Types.subtype
      {
        Types.base = "WORK.B.ARR";
        kind = Types.Karray { index = Std.integer; elem = Std.integer };
        constr = None;
      }
      ~constr:(Types.Crange (0, Types.To, 63))
  in
  let fsig =
    {
      Denot.ss_name = "F";
      ss_mangled = "WORK.B:F/INTEGER";
      ss_kind = `Function;
      ss_params =
        [
          {
            Denot.p_name = "X";
            p_mode = Kir.Arg_in;
            p_class = Denot.Cconstant;
            p_ty = Std.integer;
            p_default = None;
          };
        ];
      ss_ret = Some Std.integer;
      ss_builtin = false;
    }
  in
  let env =
    Env.extend_many (Std.env ())
      [
        ( "V",
          Denot.Dobject
            {
              name = "V";
              cls = Denot.Cvariable;
              ty = arr_ty;
              mode = None;
              slot = Denot.Sl_frame { level = 0; index = 0 };
            } );
        ("F", Denot.Dsubprog fsig);
        ("ARR", Denot.Dtype arr_ty);
        ( "N",
          Denot.Dobject
            {
              name = "N";
              cls = Denot.Cconstant;
              ty = Std.integer;
              mode = None;
              slot = Denot.Sl_static (Value.Vint 5);
            } );
      ]
  in
  let exprs =
    [
      "V(3) + F(N) * 2";
      "V(1 to 4)";
      "F(V(N)) + N ** 2";
      "(N + 1) * (N - 1) mod 7";
      "V(0) + V(1) + V(2) + V(3) + V(4) + V(5)";
      "F(F(F(N)))";
      "N < 10 and V(0) = 3";
      "abs (-N) + (2 ** 8)";
    ]
  in
  (env, exprs)

let cascade () =
  heading "ABL-CASCADE: cascaded evaluation vs united productions (paper section 4.1)";
  let env, exprs = cascade_inputs () in
  let session = Session.in_memory [] in
  Session.with_session session (fun () ->
      List.iter
        (fun src ->
          let toks = Lexer.tokenize src in
          let united = United.eval_string ~env ~level:0 src in
          let lef = Cascade_driver.classify_tokens ~env toks in
          let casc = Expr_eval.eval ~level:0 ~line:1 lef in
          if not (Types.same_base united.Pval.x_ty casc.Pval.x_ty) then
            Printf.printf "  DISAGREE on %s: united %s vs cascade %s\n" src
              (Types.short_name united.Pval.x_ty)
              (Types.short_name casc.Pval.x_ty))
        exprs);
  let results =
    Bechamel_util.run_tests ~quota:1.0
      [
        (* cold cascade: the ablation measures the cascade's parse+eval
           cost itself, which the LEF→tree memo would otherwise hide
           after the first repetition *)
        Test.make ~name:"cascade (LEF + expression AG)"
          (Staged.stage (fun () ->
               Expr_eval.with_cold_cascade (fun () ->
                   Session.with_session session (fun () ->
                       List.iter
                         (fun src ->
                           let lef = Cascade_driver.classify_tokens ~env (Lexer.tokenize src) in
                           ignore (Expr_eval.eval ~level:0 ~line:1 lef))
                         exprs))));
        Test.make ~name:"cascade (warm memo)"
          (Staged.stage (fun () ->
               Session.with_session session (fun () ->
                   List.iter
                     (fun src ->
                       let lef = Cascade_driver.classify_tokens ~env (Lexer.tokenize src) in
                       ignore (Expr_eval.eval ~level:0 ~line:1 lef))
                     exprs)));
        Test.make ~name:"united (RD parse + post-hoc)"
          (Staged.stage (fun () ->
               Session.with_session session (fun () ->
                   List.iter (fun src -> ignore (United.eval_string ~env ~level:0 src)) exprs)));
      ]
  in
  Bechamel_util.pp_results "expression compilation strategies" results;
  Printf.printf
    "\nshape to check: comparable magnitude — the paper chose the cascade for\nmaintainability (no duplicate semantics, no parsing-conflict bookkeeping),\naccepting AG overhead of roughly this gap.\n"

(* ------------------------------------------------------------------ *)
(* SIM-THROUGHPUT: kernel event rate (the simulator half of the system;
   the paper's companion reference [4] is "A State of the Art VHDL
   Simulator") *)

let sim_throughput () =
  heading "SIM-THROUGHPUT: kernel event rate (divider chain)";
  Printf.printf "%-10s %10s %12s %12s %14s\n" "stages" "sim ns" "events" "proc runs"
    "events/sec";
  List.iter
    (fun stages ->
      (* the kernel event rate comes from the run section alone (the
         compile and elaborate ahead of it are measured by the sample) *)
      let events = ref 0 and process_runs = ref 0 and run_s = ref 1.0 in
      let sample =
        Perf.run ~warmup:1 ~repeats:3
          ~name:(Printf.sprintf "sim/divider-%d" stages)
          (fun () ->
            let c = Vhdl_compiler.create () in
            ignore (Vhdl_compiler.compile c (Workload.divider_chain ~stages));
            let sim = Vhdl_compiler.elaborate ~trace:false c ~top:"chain" () in
            let start = now () in
            let _ = Vhdl_compiler.run c sim ~max_ns:20000 in
            run_s := now () -. start;
            let st = Kernel.stats (Vhdl_compiler.kernel sim) in
            events := st.Kernel.events;
            process_runs := st.Kernel.process_runs)
      in
      let eps = float_of_int !events /. !run_s in
      ignore
        (collect
           (Perf.Sample.with_metrics sample
              [
                ("stages", float_of_int stages);
                ("sim_ns", 20000.0);
                ("events_per_s", eps);
              ]));
      Printf.printf "%-10d %10d %12d %12d %14.0f\n" stages 20000 !events !process_runs
        eps)
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmark suite *)

let micro () =
  heading "Bechamel microbenchmarks (one Test.make per table/figure)";
  let behav = Workload.behavioral ~name:"MB" ~states:10 ~exprs:20 in
  let net = Workload.structural ~name:"MN" ~instances:20 in
  let exprsrc = Workload.expression_heavy ~n:40 in
  let multi = Workload.multi_arch_library ~archs:3 in
  let netlist, cfg = Workload.config_workload ~instances:10 () in
  let env, exprs = cascade_inputs () in
  let session = Session.in_memory [] in
  let results =
    Bechamel_util.run_tests ~quota:1.0
      [
        Test.make ~name:"speed/behavioral"
          (Staged.stage (fun () -> ignore (compile_sources [ behav ])));
        Test.make ~name:"speed/structural"
          (Staged.stage (fun () -> ignore (compile_sources [ net ])));
        Test.make ~name:"speed/expressions"
          (Staged.stage (fun () -> ignore (compile_sources [ exprsrc ])));
        Test.make ~name:"config/configuration-unit"
          (Staged.stage (fun () -> ignore (compile_sources [ multi; netlist; cfg ])));
        Test.make ~name:"ag/analysis-expr-grammar"
          (Staged.stage (fun () -> ignore (Analysis.compute (Expr_eval.grammar ()))));
        Test.make ~name:"cascade/cascade"
          (Staged.stage (fun () ->
               (* cold: measure parse+eval, not memo hits *)
               Expr_eval.with_cold_cascade (fun () ->
                   Session.with_session session (fun () ->
                       List.iter
                         (fun src ->
                           let lef = Cascade_driver.classify_tokens ~env (Lexer.tokenize src) in
                           ignore (Expr_eval.eval ~level:0 ~line:1 lef))
                         exprs))));
        Test.make ~name:"cascade/united"
          (Staged.stage (fun () ->
               Session.with_session session (fun () ->
                   List.iter (fun src -> ignore (United.eval_string ~env ~level:0 src)) exprs)));
        Test.make ~name:"evaluator/demand"
          (Staged.stage
             (let g = Main_grammar.grammar () in
              let parser_ = Main_grammar.parser_ () in
              let session = Session.in_memory [] in
              let src = Workload.behavioral ~name:"EV" ~states:8 ~exprs:15 in
              fun () ->
                Session.with_session session (fun () ->
                    let tokens = Front_analyze.tokens_of_source src in
                    let tree = Parsing.parse_list parser_ ~eof_value:Pval.Unit tokens in
                    let ev =
                      Evaluator.create
                        ~token_line:(fun n -> Pval.Int n)
                        g
                        ~root_inherited:
                          [
                            ("ENV", Pval.Env Env.empty); ("LEVEL", Pval.Int (-1));
                            ("UNITNAME", Pval.Str "WORK.X"); ("CTX", Pval.Str "arch");
                            ("SLOTBASE", Pval.Int 0); ("SIGBASE", Pval.Int 0);
                            ("LOOPDEPTH", Pval.Int 0); ("RETTY", Pval.Opt None);
                            ("CTXOUT", Pval.Out Pval.out_empty); ("NLINES", Pval.Int 50);
                          ]
                        tree
                    in
                    ignore (Evaluator.goal ev "UNITS"))));
        Test.make ~name:"evaluator/staged"
          (Staged.stage
             (let g = Main_grammar.grammar () in
              let parser_ = Main_grammar.parser_ () in
              let partitions = Analysis.visit_partitions (Analysis.compute g) in
              let session = Session.in_memory [] in
              let src = Workload.behavioral ~name:"EV" ~states:8 ~exprs:15 in
              fun () ->
                Session.with_session session (fun () ->
                    let tokens = Front_analyze.tokens_of_source src in
                    let tree = Parsing.parse_list parser_ ~eof_value:Pval.Unit tokens in
                    let ev =
                      Evaluator.create
                        ~token_line:(fun n -> Pval.Int n)
                        g
                        ~root_inherited:
                          [
                            ("ENV", Pval.Env Env.empty); ("LEVEL", Pval.Int (-1));
                            ("UNITNAME", Pval.Str "WORK.X"); ("CTX", Pval.Str "arch");
                            ("SLOTBASE", Pval.Int 0); ("SIGBASE", Pval.Int 0);
                            ("LOOPDEPTH", Pval.Int 0); ("RETTY", Pval.Opt None);
                            ("CTXOUT", Pval.Out Pval.out_empty); ("NLINES", Pval.Int 50);
                          ]
                        tree
                    in
                    ignore (Evaluator.evaluate_staged ev ~partitions))));
        Test.make ~name:"fig2/lalr-table-expr-grammar"
          (Staged.stage (fun () ->
               ignore (Parsing.create ~name:"bench" (Expr_grammar.build ()) ~eof:"LEOF")));
      ]
  in
  Bechamel_util.pp_results "microbenchmarks" results

(* ------------------------------------------------------------------ *)

(* ABL-VIF: the in-memory unit cache in front of the VIF files.  The paper
   measures intermediate-file traffic at 40-60% of compilation; DESIGN.md
   calls out the loaded_files cache as our mitigation.  This ablation
   quantifies it: resolving every unit of a disk library with the cache
   dropped before each run (every [find] re-reads and re-parses VIF)
   versus with the cache warm. *)
let vif_cache_ablation () =
  heading "ABL-VIF: library cache off vs on (design choice in DESIGN.md)";
  let dir = Filename.temp_file "vifcache" "" in
  Sys.remove dir;
  let c = Vhdl_compiler.create ~work_dir:dir () in
  for i = 1 to 12 do
    ignore (Vhdl_compiler.compile c (Workload.package ~name:(Printf.sprintf "LIB%d" i) ~n:30))
  done;
  ignore (Vhdl_compiler.compile c (Workload.multi_arch_library ~archs:4));
  let lib = Library.create ~dir ~name:"WORK" () in
  let keys =
    List.map (fun (u : Unit_info.compiled_unit) -> u.Unit_info.u_key) (Library.all lib)
  in
  Printf.printf "library: %d units on disk

" (List.length keys);
  let resolve_all () =
    List.iter
      (fun key -> ignore (Library.find lib ~library:"WORK" ~key))
      keys
  in
  let results =
    Bechamel_util.run_tests ~quota:1.0
      [
        Test.make ~name:"cold (cache dropped per run)"
          (Staged.stage (fun () ->
               Library.clear_cache lib;
               resolve_all ()));
        Test.make ~name:"warm (cache kept)" (Staged.stage resolve_all);
      ]
  in
  let get name = try List.assoc name results with Not_found -> nan in
  let cold = get "cold (cache dropped per run)" and warm = get "warm (cache kept)" in
  Printf.printf "  %-32s %12.1f us/run
" "cold (cache dropped per run)" (cold /. 1e3);
  Printf.printf "  %-32s %12.1f us/run
" "warm (cache kept)" (warm /. 1e3);
  Printf.printf "  cache speedup: %.0fx
" (cold /. warm);
  Printf.printf
    "
shape to check: cold resolution is orders of magnitude slower — the
     paper's 40-60%% VIF share assumes per-invocation re-reads, which the
     PERF-PHASE workload mirrors by clearing this cache per unit.
"

let all () =
  Size_report.print ".";
  ag_stats ();
  speed ();
  phases ();
  config ();
  sim_throughput ();
  env_ablation ();
  cascade ();
  vif_cache_ablation ();
  micro ()

(* ------------------------------------------------------------------ *)
(* Result file: every run leaves one canonical BENCH_report.json (the
   lib/perf schema: per-experiment repetition times, median/MAD/CI, GC
   and telemetry-counter deltas, machine/commit metadata), so any two
   runs — here or from `vhdlc bench` — diff with the same noise-aware
   gate instead of being eyeballed from stdout. *)

module Telemetry = Vhdl_telemetry.Telemetry

let run_experiment label f =
  Telemetry.reset ();
  let start = now () in
  f ();
  let elapsed = now () -. start in
  (* the whole experiment as a one-repetition sample: even the
     bechamel-driven and one-shot experiments land in the report *)
  let harness =
    {
      Perf.Sample.s_name = "harness/" ^ label;
      s_warmup = 0;
      s_times = [| elapsed |];
      s_allocs = [||];
      s_gc = Perf.Gc_delta.zero;
      s_counters = [];
      s_phases = [];
      s_metrics = [];
    }
  in
  let report =
    Perf.Report.make
      ~meta:[ ("suite", label) ]
      (List.rev (harness :: !collected))
  in
  let path = "BENCH_report.json" in
  Perf.Report.save path report;
  Printf.printf "\n[%s: %d experiment samples written to %s]\n" label
    (List.length (harness :: !collected))
    path

let () =
  let label, f =
    match Array.to_list Sys.argv with
    | _ :: "fig2" :: _ -> ("fig2", fun () -> Size_report.print ".")
    | _ :: "ag-stats" :: _ -> ("ag-stats", ag_stats)
    | _ :: "speed" :: _ -> ("speed", speed)
    | _ :: "phases" :: _ -> ("phases", phases)
    | _ :: "config" :: _ -> ("config", config)
    | _ :: "sim" :: _ -> ("sim", sim_throughput)
    | _ :: "env" :: _ -> ("env", env_ablation)
    | _ :: "cascade" :: _ -> ("cascade", cascade)
    | _ :: "vif-cache" :: _ -> ("vif-cache", vif_cache_ablation)
    | _ :: "micro" :: _ -> ("micro", micro)
    | _ -> ("all", all)
  in
  run_experiment label f
