(* FIG2: regenerate the shape of the paper's Figure 2 — the compiler size
   summary, with stripped source-line counts per component and the sizes of
   the artifacts the toolset generates from the AG (parse tables and
   implicit semantic rules, our analog of the generated C). *)

module U = Vhdl_util.Unix_compat

let count_dir ?(ext = ".ml") files =
  List.fold_left
    (fun acc path ->
      if Sys.file_exists path && Filename.check_suffix path ext then
        acc + U.stripped_line_count (U.read_file path)
      else acc)
    0 files

let ls dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.map (Filename.concat dir)
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
  else []

(* component map mirroring Figure 2's rows (see DESIGN.md): the AG
   definitions, the VIF description, the out-of-line semantic functions,
   and the interface code.  The AG engine, LALR generator, simulation
   kernel, and elaborator are counted separately, as the paper excludes the
   kernel and the TWS from its 46 kloc. *)
let components root =
  let p f = Filename.concat root f in
  [
    ( "AG (grammar definitions)",
      [
        p "lib/front/main_grammar.ml"; p "lib/front/grammar_exprs.ml";
        p "lib/front/grammar_decls.ml"; p "lib/front/grammar_stmts.ml";
        p "lib/front/grammar_units.ml"; p "lib/front/expr_grammar.ml";
        p "lib/front/gram_util.ml"; p "lib/front/pval.ml"; p "lib/front/lef.ml";
      ] );
    ("VIF description", ls (p "lib/vif"));
    ( "out-of-line functions",
      [
        p "lib/front/decl_sem.ml"; p "lib/front/stmt_sem.ml"; p "lib/front/conc_sem.ml";
        p "lib/front/unit_sem.ml"; p "lib/front/expr_sem.ml"; p "lib/front/expr_eval.ml";
        p "lib/sem/types.ml"; p "lib/sem/value.ml"; p "lib/sem/value_ops.ml";
        p "lib/sem/const_eval.ml"; p "lib/sem/denot.ml"; p "lib/sem/env.ml";
        p "lib/sem/std.ml"; p "lib/sem/kir.ml"; p "lib/sem/kir_util.ml";
        p "lib/sem/diag.ml"; p "lib/sem/unit_info.ml";
      ] );
    ( "interface code",
      [
        p "lib/front/lexer.ml"; p "lib/front/token.ml"; p "lib/front/session.ml";
        p "lib/front/analyze.ml"; p "lib/core/vhdl_compiler.ml"; p "bin/vhdlc.ml";
      ] @ ls (p "lib/util") );
  ]

let excluded_components root =
  let p f = Filename.concat root f in
  [
    ("AG engine + LALR generator (the 'Linguist')", ls (p "lib/ag") @ ls (p "lib/lalr"));
    ("simulation kernel + runtime", ls (p "lib/sim") @ [ p "lib/elab/elaborate.ml" ]);
  ]

let table_entries (tbl : Vhdl_lalr.Table.t) =
  tbl.Vhdl_lalr.Table.n_states * tbl.Vhdl_lalr.Table.cfg.Vhdl_lalr.Cfg.n_symbols * 2

let print root =
  Printf.printf "FIG2: compiler size summary (cf. paper Figure 2)\n\n";
  let comps = components root in
  let counts = List.map (fun (name, files) -> (name, count_dir files)) comps in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 counts in
  Printf.printf "%-38s %8s\n" "" "source";
  List.iter
    (fun (name, n) ->
      Printf.printf "%-38s %8d  (%3.0f%%)\n" name n
        (100.0 *. float_of_int n /. float_of_int (max 1 total)))
    counts;
  Printf.printf "%-38s %8s\n" "" "--------";
  Printf.printf "%-38s %8d  (100%%)\n\n" "total (compiler proper)" total;
  Printf.printf "excluded, as in the paper (kernel, TWS):\n";
  List.iter
    (fun (name, files) -> Printf.printf "%-38s %8d\n" name (count_dir files))
    (excluded_components root);
  (* generated artifacts: our analog of the paper's generated-C column *)
  Printf.printf "\ngenerated artifacts (analog of the [generated] C column):\n";
  let g_princ = Main_grammar.grammar () in
  let g_expr = Expr_eval.grammar () in
  let stats name g =
    let s = Stats.of_grammar ~name g in
    Printf.printf "  %-22s %5d total rules, %5d implicit (%.0f%%)\n" name
      s.Stats.rules_total s.Stats.rules_implicit
      (100.0 *. Stats.implicit_fraction s)
  in
  stats "principal AG" g_princ;
  stats "expression AG" g_expr;
  let t1 = Main_grammar.parser_ () and t2 = Expr_eval.parser_ () in
  Printf.printf "  %-22s %5d states, %d table entries\n" "principal parse table"
    (t1.Parsing.table.Vhdl_lalr.Table.n_states)
    (table_entries t1.Parsing.table);
  Printf.printf "  %-22s %5d states, %d table entries\n" "expression parse table"
    (t2.Parsing.table.Vhdl_lalr.Table.n_states)
    (table_entries t2.Parsing.table)
