(* The offline-analytics battery: the tolerant event-log reader (a torn
   trailing line is a warning, mid-file corruption an error), the
   analyze engine's aggregation (percentile agreement with a live
   window, tail attribution, slowest requests, timeline), and the
   --against diff — a planted 2x phase regression is flagged while
   sub-threshold jitter is not. *)

module E = Obs_event
module Perf = Vhdl_perf.Perf

let temp_path suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "vhdl-analyze-test-%d-%d%s" (Unix.getpid ())
       (Random.int 100000) suffix)

(* ------------------------------------------------------------------ *)
(* Tolerant reader *)

let good_line ~ts ~rid kind fields =
  E.to_line { E.e_ts = ts; e_kind = kind; e_rid = Some rid; e_fields = fields }

let write_log path lines =
  Vhdl_util.Unix_compat.write_file path (String.concat "" lines)

let test_read_log_skips_torn_tail () =
  let path = temp_path ".jsonl" in
  write_log path
    [
      good_line ~ts:1.0 ~rid:1 E.Accept [];
      good_line ~ts:1.1 ~rid:1 E.Start [ ("verb", E.S "compile") ];
      (* the writer died mid-line: no trailing newline, no closing brace *)
      "{\"ts\":1.2,\"ev\":\"fini";
    ];
  (match E.read_log path with
  | Error msg -> Alcotest.failf "torn tail failed the read: %s" msg
  | Ok (events, warnings) ->
    Alcotest.(check int) "the well-formed prefix survives" 2 (List.length events);
    Alcotest.(check int) "one counted warning" 1 (List.length warnings);
    Alcotest.(check bool) "warning says truncated" true
      (Astring_contains.contains (List.hd warnings) "truncated"));
  Sys.remove path

let test_read_log_rejects_midfile_corruption () =
  let path = temp_path ".jsonl" in
  write_log path
    [
      good_line ~ts:1.0 ~rid:1 E.Accept [];
      "this is not json\n";
      good_line ~ts:1.2 ~rid:1 E.Start [ ("verb", E.S "compile") ];
    ];
  (match E.read_log path with
  | Error msg ->
    Alcotest.(check bool) "error names the line" true
      (Astring_contains.contains msg ":2:")
  | Ok _ -> Alcotest.fail "mid-file corruption must fail the read");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* The analyze engine over a synthetic log *)

(* one request's full lifecycle, finishing at [ts] having taken
   [service_us] split into [phases] *)
let request ~ts ~rid ?(verb = "compile") ?(status = "ok") ~service_us phases =
  [
    { E.e_ts = ts -. 0.002; e_kind = E.Accept; e_rid = Some rid; e_fields = [] };
    {
      E.e_ts = ts -. 0.001;
      e_kind = E.Start;
      e_rid = Some rid;
      e_fields = [ ("verb", E.S verb) ];
    };
    {
      E.e_ts = ts;
      e_kind = E.Finish;
      e_rid = Some rid;
      e_fields =
        ("status", E.S status)
        :: ("service_us", E.F service_us)
        :: Obs_attr.fields phases;
    };
  ]

(* a run whose cascade phase costs [cascade_us] (+- small jitter) on
   every request: the raw material for the --against tests *)
let run_with ~cascade_us ~n =
  List.concat
    (List.init n (fun i ->
         let jitter = float_of_int (i mod 5) in
         let cascade = cascade_us +. jitter in
         let parse = 50.0 +. jitter in
         let service = cascade +. parse +. 100.0 in
         request
           ~ts:(1.0 +. (0.1 *. float_of_int i))
           ~rid:(i + 1) ~service_us:service
           [ ("parse", parse); ("cascade", cascade); ("other", 100.0) ]))

let test_analyze_report () =
  let events =
    run_with ~cascade_us:100.0 ~n:20
    @ request ~ts:10.0 ~rid:100 ~service_us:50_000.0
        [ ("cascade", 49_000.0); ("other", 1000.0) ]
    @ [
        {
          E.e_ts = 10.1;
          e_kind = E.Shed;
          e_rid = Some 101;
          e_fields = [ ("reason", E.S "overload") ];
        };
      ]
  in
  (* the shed names an unaccepted rid only because we built it by hand;
     analyze is aggregation, not the grammar checker *)
  let r = Obs_analyze.analyze ~window_s:5.0 events in
  Alcotest.(check int) "finishes" 21 r.Obs_analyze.a_finishes;
  Alcotest.(check int) "sheds" 1 r.Obs_analyze.a_sheds;
  Alcotest.(check (option int)) "status table" (Some 21)
    (List.assoc_opt "ok" r.Obs_analyze.a_statuses);
  (* the whole-log percentiles are the live estimator's own numbers *)
  let slo = Obs_slo.create ~window_s:3600.0 () in
  List.iter
    (fun (e : E.t) ->
      if e.E.e_kind = E.Finish then
        Obs_slo.observe slo ~now:e.E.e_ts
          ?latency_us:(E.field_num e "service_us")
          ~shed:false ~internal:false ())
    events;
  let live = Obs_slo.summary slo ~now:10.2 in
  Alcotest.(check (float 1e-6)) "p99 matches a live window"
    live.Obs_slo.s_p99_us r.Obs_analyze.a_summary.Obs_slo.s_p99_us;
  (* the slow outlier leads the slowest table and dominates the tail *)
  (match r.Obs_analyze.a_slowest with
  | s :: _ ->
    Alcotest.(check int) "slowest rid" 100 s.Obs_analyze.sl_rid;
    Alcotest.(check (float 1e-6)) "slowest latency" 50_000.0 s.Obs_analyze.sl_service_us
  | [] -> Alcotest.fail "no slowest table");
  (match r.Obs_analyze.a_tail_phase_us with
  | (top, _) :: _ -> Alcotest.(check string) "tail driven by cascade" "cascade" top
  | [] -> Alcotest.fail "no tail attribution");
  Alcotest.(check bool) "timeline has multiple slices" true
    (List.length r.Obs_analyze.a_slices > 1);
  (* the JSON rendering parses and carries the schema marker *)
  match Perf.Json_in.parse (Obs_analyze.to_json r) with
  | Error msg -> Alcotest.failf "report JSON unparseable: %s" msg
  | Ok j ->
    Alcotest.(check (option string)) "schema" (Some "vhdl-analyze/1")
      (Option.bind (Perf.Json_in.mem "schema" j) Perf.Json_in.to_str)

(* daemon-verb answers are excluded from the latency replay, matching
   the live window's observe_latency:false rule *)
let test_analyze_excludes_inline_verbs () =
  let events =
    run_with ~cascade_us:100.0 ~n:10
    @ request ~ts:20.0 ~rid:200 ~verb:"stats" ~service_us:2.0 [ ("other", 2.0) ]
  in
  let r = Obs_analyze.analyze events in
  Alcotest.(check int) "all finishes counted" 11 r.Obs_analyze.a_finishes;
  Alcotest.(check int) "inline latency not sampled" 10
    r.Obs_analyze.a_summary.Obs_slo.s_observed

(* ------------------------------------------------------------------ *)
(* --against: the noise-aware diff *)

let verdict_of rows name =
  List.find_map
    (fun (r : Perf.Diff.row) ->
      if r.Perf.Diff.d_name = name then Some r.Perf.Diff.d_verdict else None)
    rows

let test_against_flags_planted_regression () =
  let base = run_with ~cascade_us:100.0 ~n:20 in
  let cur = run_with ~cascade_us:200.0 ~n:20 in
  let rows = Obs_analyze.against ~base ~cur () in
  Alcotest.(check (option string)) "2x cascade flagged" (Some "REGRESSION")
    (Option.map Perf.Diff.verdict_name (verdict_of rows "cascade"));
  Alcotest.(check (option string)) "untouched phase unchanged" (Some "unchanged")
    (Option.map Perf.Diff.verdict_name (verdict_of rows "parse"));
  Alcotest.(check bool) "regressions nonempty" true
    (Perf.Diff.regressions rows <> [])

let test_against_ignores_jitter () =
  let base = run_with ~cascade_us:100.0 ~n:20 in
  (* 8% shift: well under the 25% threshold — noise, not a regression *)
  let cur = run_with ~cascade_us:108.0 ~n:20 in
  let rows = Obs_analyze.against ~base ~cur () in
  Alcotest.(check (list string)) "no regressions" []
    (List.map
       (fun (r : Perf.Diff.row) -> r.Perf.Diff.d_name)
       (Perf.Diff.regressions rows))

let test_against_improvement_direction () =
  let base = run_with ~cascade_us:200.0 ~n:20 in
  let cur = run_with ~cascade_us:100.0 ~n:20 in
  let rows = Obs_analyze.against ~base ~cur () in
  Alcotest.(check (option string)) "halved cascade is an improvement"
    (Some "improvement")
    (Option.map Perf.Diff.verdict_name (verdict_of rows "cascade"));
  Alcotest.(check (list string)) "improvements are not regressions" []
    (List.map
       (fun (r : Perf.Diff.row) -> r.Perf.Diff.d_name)
       (Perf.Diff.regressions rows))

let test_against_min_samples_guard () =
  let base = run_with ~cascade_us:100.0 ~n:2 in
  let cur = run_with ~cascade_us:500.0 ~n:2 in
  let rows = Obs_analyze.against ~base ~cur () in
  Alcotest.(check (option string)) "two samples prove nothing" (Some "unchanged")
    (Option.map Perf.Diff.verdict_name (verdict_of rows "cascade"))

let suite =
  [
    Alcotest.test_case "read_log skips a torn trailing line" `Quick
      test_read_log_skips_torn_tail;
    Alcotest.test_case "read_log rejects mid-file corruption" `Quick
      test_read_log_rejects_midfile_corruption;
    Alcotest.test_case "analyze aggregates a synthetic log" `Quick
      test_analyze_report;
    Alcotest.test_case "analyze excludes inline daemon verbs" `Quick
      test_analyze_excludes_inline_verbs;
    Alcotest.test_case "against flags a planted 2x phase regression" `Quick
      test_against_flags_planted_regression;
    Alcotest.test_case "against ignores sub-threshold jitter" `Quick
      test_against_ignores_jitter;
    Alcotest.test_case "against classifies improvements" `Quick
      test_against_improvement_direction;
    Alcotest.test_case "against needs min samples" `Quick
      test_against_min_samples_guard;
  ]
