(* The performance observatory (lib/perf): robust statistics, the
   benchmark session runner, BENCH_report.json round-trips, the
   noise-aware baseline diff (detects a 2x slowdown, ignores sub-noise
   jitter), and the collapsed-stack exporter whose folded totals must
   match the telemetry span self-times. *)

module Tm = Vhdl_telemetry.Telemetry
module P = Vhdl_perf.Perf

(* ------------------------------------------------------------------ *)
(* Statistics *)

let test_stat () =
  Alcotest.(check (float 1e-9)) "odd median" 3.0 (P.Stat.median [| 5.0; 1.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "even median" 2.5 (P.Stat.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (P.Stat.mean [| 1.0; 2.0; 3.0 |]);
  (* MAD of [1;2;3;4;100]: median 3, |x-3| = [2;1;0;1;97], median 1 — the
     outlier does not move it *)
  Alcotest.(check (float 1e-9)) "mad robust to outlier" 1.0
    (P.Stat.mad [| 1.0; 2.0; 3.0; 4.0; 100.0 |]);
  Alcotest.(check bool) "empty median is nan" true (Float.is_nan (P.Stat.median [||]))

let test_bootstrap_ci () =
  let lo, hi = P.Stat.bootstrap_ci [| 5.0; 5.0; 5.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "constant sample: lo" 5.0 lo;
  Alcotest.(check (float 1e-9)) "constant sample: hi" 5.0 hi;
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 |] in
  let lo, hi = P.Stat.bootstrap_ci a in
  let m = P.Stat.median a in
  Alcotest.(check bool) "lo <= median" true (lo <= m);
  Alcotest.(check bool) "median <= hi" true (m <= hi);
  Alcotest.(check bool) "interval is proper" true (lo < hi);
  (* deterministic: same input, same interval *)
  let lo', hi' = P.Stat.bootstrap_ci a in
  Alcotest.(check (float 1e-12)) "deterministic lo" lo lo';
  Alcotest.(check (float 1e-12)) "deterministic hi" hi hi'

(* ------------------------------------------------------------------ *)
(* The session runner *)

let test_runner () =
  Tm.reset ();
  let scratch = Tm.counter "test.perf_runner_scratch" in
  let calls = ref 0 in
  let s =
    P.run ~warmup:2 ~repeats:3 ~name:"runner/unit" (fun () ->
        incr calls;
        Tm.add scratch 10)
  in
  Alcotest.(check int) "warmup + repeats calls" 5 !calls;
  Alcotest.(check int) "three repetitions recorded" 3 (P.Sample.reps s);
  Array.iter
    (fun t -> Alcotest.(check bool) "times non-negative" true (t >= 0.0))
    s.P.Sample.s_times;
  (* counter deltas cover the measured portion only, not the warmup *)
  Alcotest.(check (option int)) "counter delta excludes warmup" (Some 30)
    (List.assoc_opt "test.perf_runner_scratch" s.P.Sample.s_counters);
  match P.Sample.rate s "test.perf_runner_scratch" with
  | Some r -> Alcotest.(check bool) "rate is positive" true (r > 0.0)
  | None -> Alcotest.fail "rate of a bumped counter"

let test_runner_quota () =
  (* a generous repeat count under a tiny quota stops early, never below
     one repetition *)
  let s =
    P.run ~warmup:0 ~repeats:1000 ~quota_s:0.02 ~name:"runner/quota" (fun () ->
        let t0 = Tm.now_s () in
        while Tm.now_s () -. t0 < 0.005 do () done)
  in
  let n = P.Sample.reps s in
  Alcotest.(check bool) "at least one repetition" true (n >= 1);
  Alcotest.(check bool) (Printf.sprintf "stopped early (%d reps)" n) true (n < 1000)

let test_perturb_parsing () =
  Unix.putenv P.perturb_env "compile:50";
  Alcotest.(check (float 1e-9)) "matching experiment slowed" 0.05
    (P.perturb_s ~name:"compile/behavioral");
  Alcotest.(check (float 1e-9)) "other experiment untouched" 0.0
    (P.perturb_s ~name:"simulate/divider");
  Unix.putenv P.perturb_env "25";
  Alcotest.(check (float 1e-9)) "bare ms perturbs everything" 0.025
    (P.perturb_s ~name:"anything");
  Unix.putenv P.perturb_env "";
  Alcotest.(check (float 1e-9)) "empty value is inert" 0.0
    (P.perturb_s ~name:"anything")

(* ------------------------------------------------------------------ *)
(* Report round-trip *)

let sample_a =
  {
    P.Sample.s_name = "compile/alpha";
    s_warmup = 1;
    s_times = [| 0.011; 0.0105; 0.0112 |];
    s_allocs = [| 120000.0; 119000.0; 121000.0 |];
    s_gc =
      {
        P.Gc_delta.minor_collections = 7;
        major_collections = 2;
        compactions = 0;
        allocated_words = 123456.0;
        heap_words = 98304;
        top_heap_words = 131072;
      };
    s_counters = [ ("ag.attrs_evaluated", 2048); ("lexer.tokens", 512) ];
    s_phases = [ ("scanner", 0.001); ("attribute evaluation", 0.008) ];
    s_metrics = [ ("lines_per_min", 54000.0) ];
  }

let sample_b =
  {
    P.Sample.s_name = "simulate/beta";
    s_warmup = 0;
    s_times = [| 0.25 |];
    s_allocs = [||];
    s_gc = P.Gc_delta.zero;
    s_counters = [];
    s_phases = [];
    s_metrics = [];
  }

let test_report_roundtrip () =
  let report = P.Report.make ~meta:[ ("suite", "unit-test") ] [ sample_a; sample_b ] in
  let json = P.Report.to_json report in
  match P.Report.of_json json with
  | Error msg -> Alcotest.fail ("round-trip failed: " ^ msg)
  | Ok back ->
    Alcotest.(check string) "schema" P.Report.schema back.P.Report.r_schema;
    Alcotest.(check (option string)) "meta survives" (Some "unit-test")
      (List.assoc_opt "suite" back.P.Report.r_meta);
    Alcotest.(check bool) "machine meta present" true
      (List.mem_assoc "commit" back.P.Report.r_meta);
    Alcotest.(check int) "two experiments" 2 (List.length back.P.Report.r_samples);
    let a = List.nth back.P.Report.r_samples 0 in
    Alcotest.(check string) "name" "compile/alpha" a.P.Sample.s_name;
    Alcotest.(check int) "warmup" 1 a.P.Sample.s_warmup;
    Alcotest.(check int) "times length" 3 (Array.length a.P.Sample.s_times);
    Array.iteri
      (fun i t ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "time %d" i)
          sample_a.P.Sample.s_times.(i) t)
      a.P.Sample.s_times;
    Alcotest.(check int) "gc minors" 7 a.P.Sample.s_gc.P.Gc_delta.minor_collections;
    Alcotest.(check int) "gc peak heap" 131072 a.P.Sample.s_gc.P.Gc_delta.top_heap_words;
    Alcotest.(check (option int)) "counters survive" (Some 2048)
      (List.assoc_opt "ag.attrs_evaluated" a.P.Sample.s_counters);
    (match List.assoc_opt "attribute evaluation" a.P.Sample.s_phases with
    | Some v -> Alcotest.(check (float 1e-9)) "phase self-time survives" 0.008 v
    | None -> Alcotest.fail "phase entry lost");
    Alcotest.(check (option int)) "single-rep sample" (Some 1)
      (Option.map
         (fun (s : P.Sample.t) -> Array.length s.P.Sample.s_times)
         (List.nth_opt back.P.Report.r_samples 1))

let test_report_rejects_garbage () =
  (match P.Report.of_json "{\"schema\":\"somebody-else/9\",\"experiments\":[]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign schema accepted");
  match P.Report.of_json "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* ------------------------------------------------------------------ *)
(* Baseline diff: the regression gate *)

let mk_sample name times =
  {
    P.Sample.s_name = name;
    s_warmup = 0;
    s_times = times;
    s_allocs = [||];
    s_gc = P.Gc_delta.zero;
    s_counters = [];
    s_phases = [];
    s_metrics = [];
  }

let report_of samples = P.Report.make samples

let diff ?threshold base cur =
  P.Diff.compare_reports ?threshold ~baseline:(report_of base) ~current:(report_of cur) ()

let verdict_of name rows =
  match List.find_opt (fun (r : P.Diff.row) -> r.P.Diff.d_name = name) rows with
  | Some r -> r.P.Diff.d_verdict
  | None -> Alcotest.fail ("no diff row for " ^ name)

let vrd = Alcotest.testable (Fmt.of_to_string P.Diff.verdict_name) ( = )

let test_diff_detects_2x () =
  let base = [ mk_sample "e" [| 0.100; 0.102; 0.098; 0.101; 0.099 |] ] in
  let cur = [ mk_sample "e" [| 0.203; 0.199; 0.201; 0.205; 0.198 |] ] in
  Alcotest.check vrd "2x slowdown flagged" P.Diff.Regression
    (verdict_of "e" (diff base cur));
  (* and symmetrically, the other direction is an improvement *)
  Alcotest.check vrd "2x speedup is improvement" P.Diff.Improvement
    (verdict_of "e" (diff cur base))

let test_diff_ignores_jitter () =
  let base = [ mk_sample "e" [| 0.100; 0.104; 0.097; 0.101; 0.099 |] ] in
  (* +3% median shift, well inside both the 25% threshold and the noise *)
  let cur = [ mk_sample "e" [| 0.103; 0.101; 0.106; 0.099; 0.102 |] ] in
  Alcotest.check vrd "sub-noise jitter ignored" P.Diff.Unchanged
    (verdict_of "e" (diff base cur))

let test_diff_noise_gate () =
  (* the ratio clears the threshold but the spread is so wide the
     bootstrap intervals overlap: not significant, not flagged *)
  let base = [ mk_sample "e" [| 0.05; 0.30; 0.10; 0.25; 0.15 |] ] in
  let cur = [ mk_sample "e" [| 0.10; 0.60; 0.20; 0.50; 0.08 |] ] in
  Alcotest.check vrd "noisy 2x not significant" P.Diff.Unchanged
    (verdict_of "e" (diff base cur));
  (* tightening the spread makes the same ratio significant *)
  let base = [ mk_sample "e" [| 0.14; 0.15; 0.16; 0.15; 0.15 |] ] in
  let cur = [ mk_sample "e" [| 0.29; 0.30; 0.31; 0.30; 0.30 |] ] in
  Alcotest.check vrd "tight 2x is significant" P.Diff.Regression
    (verdict_of "e" (diff base cur))

let test_diff_added_removed () =
  let base = [ mk_sample "old" [| 0.1 |] ] in
  let cur = [ mk_sample "new" [| 0.1 |] ] in
  let rows = diff base cur in
  Alcotest.check vrd "new experiment is added" P.Diff.Added (verdict_of "new" rows);
  Alcotest.check vrd "missing experiment is removed" P.Diff.Removed
    (verdict_of "old" rows);
  Alcotest.(check int) "no regressions from add/remove" 0
    (List.length (P.Diff.regressions rows))

(* ------------------------------------------------------------------ *)
(* Collapsed stacks *)

let spin_s seconds =
  let t0 = Tm.now_s () in
  while Tm.now_s () -. t0 < seconds do
    ()
  done

(* a small span tree with measurable self time at every level:
   root (5ms self) > left (2ms self) > leaf (2ms), root > right (2ms) *)
let record_tree () =
  Tm.with_span ~cat:"test" "root" (fun () ->
      spin_s 0.003;
      Tm.with_span ~cat:"test" "left" (fun () ->
          spin_s 0.002;
          Tm.with_span ~cat:"test" "leaf" (fun () -> spin_s 0.002));
      Tm.with_span ~cat:"test" "right" (fun () -> spin_s 0.002);
      spin_s 0.002)

let with_tracing f =
  Tm.reset ();
  Tm.set_tracing true;
  Fun.protect
    ~finally:(fun () ->
      Tm.set_tracing false;
      Tm.reset ())
    f

let parse_folded text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "")
  |> List.map (fun line ->
         match String.rindex_opt line ' ' with
         | None -> Alcotest.fail ("unparsable folded line: " ^ line)
         | Some i ->
           let stack = String.sub line 0 i in
           let v = String.sub line (i + 1) (String.length line - i - 1) in
           (match int_of_string_opt v with
           | Some n when n > 0 -> (String.split_on_char ';' stack, n)
           | _ -> Alcotest.fail ("bad folded value: " ^ line)))

let test_flame_folded () =
  with_tracing @@ fun () ->
  record_tree ();
  let spans = Tm.spans () in
  let folded = P.Flame.folded spans in
  let lines = parse_folded folded in
  Alcotest.(check bool) "has lines" true (lines <> []);
  (* every stack is rooted at "root" and nesting paths appear *)
  List.iter
    (fun (stack, _) ->
      Alcotest.(check string) "rooted" "root" (List.hd stack))
    lines;
  let find path =
    match List.assoc_opt path lines with
    | Some v -> v
    | None -> Alcotest.fail ("missing stack " ^ String.concat ";" path)
  in
  let root_self = find [ "root" ] in
  let leaf_self = find [ "root"; "left"; "leaf" ] in
  Alcotest.(check bool) "root self ~5ms" true
    (root_self > 3000 && root_self < 60_000);
  Alcotest.(check bool) "leaf self ~2ms" true
    (leaf_self > 1000 && leaf_self < 30_000);
  (* folded totals equal span self-times within rounding: group folded
     values by leaf frame and compare against Flame.self_times *)
  let selfs = P.Flame.self_times spans in
  List.iter
    (fun (name, self_s) ->
      let folded_us =
        List.fold_left
          (fun acc (stack, v) ->
            if List.nth stack (List.length stack - 1) = name then acc + v else acc)
          0 lines
      in
      let self_us = self_s *. 1e6 in
      let tolerance = 2.0 +. (self_us /. 100.0) (* rounding + 1% *) in
      Alcotest.(check bool)
        (Printf.sprintf "%s folded %dus matches self %.0fus" name folded_us self_us)
        true
        (Float.abs (float_of_int folded_us -. self_us) <= tolerance))
    selfs;
  (* conservation: total folded time equals the root span's duration *)
  let total_us = List.fold_left (fun acc (_, v) -> acc + v) 0 lines in
  let root_span = List.find (fun sp -> sp.Tm.sp_name = "root") spans in
  let dur_us = root_span.Tm.sp_dur *. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "folded total %dus ~ root duration %.0fus" total_us dur_us)
    true
    (Float.abs (float_of_int total_us -. dur_us) <= 10.0 +. (dur_us /. 50.0))

let test_flame_of_compile () =
  (* end to end over a real pipeline: the folded export of a compile's
     span tree parses and covers the phase frames *)
  with_tracing @@ fun () ->
  let c = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile c (Workload.behavioral ~name:"FL" ~states:8 ~exprs:15));
  let folded = P.Flame.folded (Tm.spans ()) in
  let lines = parse_folded folded in
  Alcotest.(check bool) "compile appears as a root frame" true
    (List.exists (fun (stack, _) -> List.hd stack = "compile") lines);
  Alcotest.(check bool) "phase frames nest under compile" true
    (List.exists
       (fun (stack, _) ->
         match stack with
         | "compile" :: rest -> List.mem "attribute evaluation" rest
         | _ -> false)
       lines)

let suite =
  [
    Alcotest.test_case "median/mad/mean" `Quick test_stat;
    Alcotest.test_case "bootstrap CI" `Quick test_bootstrap_ci;
    Alcotest.test_case "session runner" `Quick test_runner;
    Alcotest.test_case "quota stops early" `Quick test_runner_quota;
    Alcotest.test_case "perturb hook parsing" `Quick test_perturb_parsing;
    Alcotest.test_case "report JSON round-trip" `Quick test_report_roundtrip;
    Alcotest.test_case "report rejects foreign schema" `Quick test_report_rejects_garbage;
    Alcotest.test_case "diff detects 2x slowdown" `Quick test_diff_detects_2x;
    Alcotest.test_case "diff ignores sub-noise jitter" `Quick test_diff_ignores_jitter;
    Alcotest.test_case "diff noise gate on wide spread" `Quick test_diff_noise_gate;
    Alcotest.test_case "diff added/removed" `Quick test_diff_added_removed;
    Alcotest.test_case "folded totals match self times" `Quick test_flame_folded;
    Alcotest.test_case "folded export of a compile" `Quick test_flame_of_compile;
  ]
