(* The allocation observatory's unit battery.

   The load-bearing invariants:
   - span allocation accounting is conservative: a span's [sp_alloc_w]
     covers its children, the self-allocation table subtracts them, and
     a span that allocates nothing reports exactly 0.0 (the snapshot
     path itself is allocation-free);
   - the allocation flamegraph conserves exactly: the folded lines'
     byte total equals the per-name self-allocation total with no
     tolerance (word counts are integral, so the per-line rounding is
     exact);
   - the phase timer's allocation table sums to the region's measured
     GC allocation delta within 5%;
   - [Obs_event.check_log] enforces the [al_*]-sum-vs-[alloc_b]
     invariant on finish events;
   - the bench diff's [alloc] rows flag a planted 2x allocation
     regression while 8% jitter passes. *)

module Telemetry = Vhdl_telemetry.Telemetry
module Phase_timer = Vhdl_util.Phase_timer
module Perf = Vhdl_perf.Perf
module E = Obs_event

(* allocate [n] words' worth of boxed data the optimizer cannot elide *)
let churn_words n =
  let blocks = n / 256 in
  for _ = 1 to max 1 blocks do
    ignore (Sys.opaque_identity (Bytes.create (254 * Telemetry.bytes_per_word)))
  done

let with_tracing f =
  Telemetry.clear_spans ();
  Telemetry.set_tracing true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_tracing false;
      Telemetry.clear_spans ())
    f

(* a span whose body allocates nothing reports sp_alloc_w = 0.0 exactly:
   the snapshot mechanism is Gc.minor_words, unboxed and allocation-free *)
let test_zero_alloc_span_is_zero () =
  with_tracing @@ fun () ->
  Telemetry.with_span "idle" (fun () -> ());
  match Telemetry.spans () with
  | [ sp ] ->
    Alcotest.(check (float 0.0)) "exactly zero words" 0.0 sp.Telemetry.sp_alloc_w
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

(* nested spans: the parent's total covers the child, and the self table
   subtracts it *)
let test_span_alloc_covers_children () =
  with_tracing @@ fun () ->
  Telemetry.with_span "parent" (fun () ->
      churn_words 50_000;
      Telemetry.with_span "child" (fun () -> churn_words 200_000));
  let spans = Telemetry.spans () in
  let find name =
    List.find (fun sp -> sp.Telemetry.sp_name = name) spans
  in
  let parent = find "parent" and child = find "child" in
  Alcotest.(check bool) "child allocated" true (child.Telemetry.sp_alloc_w > 0.0);
  Alcotest.(check bool) "parent total covers child" true
    (parent.Telemetry.sp_alloc_w >= child.Telemetry.sp_alloc_w);
  let selfs = Perf.Flame.self_allocs spans in
  let self name = Option.value (List.assoc_opt name selfs) ~default:nan in
  Alcotest.(check (float 1.0)) "parent self = total - child"
    (parent.Telemetry.sp_alloc_w -. child.Telemetry.sp_alloc_w)
    (self "parent");
  Alcotest.(check (float 1.0)) "child self = child total"
    child.Telemetry.sp_alloc_w (self "child")

(* exact conservation: the folded lines' byte total equals the
   self-allocation byte total with zero tolerance *)
let test_folded_alloc_conserves_exactly () =
  with_tracing @@ fun () ->
  Telemetry.with_span "root" (fun () ->
      churn_words 30_000;
      Telemetry.with_span "a" (fun () -> churn_words 120_000);
      Telemetry.with_span "b" (fun () ->
          churn_words 40_000;
          Telemetry.with_span "leaf" (fun () -> churn_words 80_000)));
  let spans = Telemetry.spans () in
  let folded_total =
    String.split_on_char '\n' (Perf.Flame.folded_alloc spans)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.fold_left
         (fun acc line ->
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "malformed folded line %S" line
           | Some i ->
             let n = String.length line in
             acc + int_of_string (String.sub line (i + 1) (n - i - 1)))
         0
  in
  let self_total =
    List.fold_left
      (fun acc (_, w) ->
        acc
        + int_of_float
            (Float.round (w *. float_of_int Telemetry.bytes_per_word)))
      0
      (Perf.Flame.self_allocs spans)
  in
  Alcotest.(check bool) "something was attributed" true (self_total > 0);
  Alcotest.(check int) "folded bytes == self-alloc bytes, exactly"
    self_total folded_total

(* the phase table's allocation column sums to the measured GC delta of
   the phased region within 5% *)
let test_phase_alloc_sums_to_gc_delta () =
  let t = Phase_timer.create () in
  let a0 = Telemetry.allocated_words_now () in
  Phase_timer.time t "parse" (fun () -> churn_words 300_000);
  Phase_timer.time t "attrs" (fun () ->
      churn_words 100_000;
      Phase_timer.time t "cascade" (fun () -> churn_words 500_000));
  let delta = Telemetry.allocated_words_now () -. a0 in
  let table_sum =
    List.fold_left (fun a (_, w) -> a +. w) 0.0 (Phase_timer.report_alloc t)
  in
  Alcotest.(check (float 1e-6)) "report_alloc sums to total_alloc"
    (Phase_timer.total_alloc t) table_sum;
  let tolerance = Float.max (0.05 *. delta) 2048.0 in
  if Float.abs (table_sum -. delta) > tolerance then
    Alcotest.failf "phase alloc table %.0fw disagrees with GC delta %.0fw"
      table_sum delta

(* check_log: the al_* fields of a finish must sum to alloc_b *)
let lifecycle ~rid finish =
  [
    E.make ~rid E.Accept;
    E.make ~rid ~fields:[ ("verb", E.S "compile") ] E.Start;
    finish;
  ]

let finish_alloc ~rid ~alloc_b allocs =
  E.make ~rid
    ~fields:
      (("status", E.S "ok")
      :: ("alloc_b", E.F alloc_b)
      :: List.map (fun (name, b) -> ("al_" ^ name, E.F b)) allocs)
    E.Finish

let test_check_log_alloc_sum () =
  let ok =
    lifecycle ~rid:1
      (finish_alloc ~rid:1 ~alloc_b:1_000_000.0
         [ ("parse", 300_000.0); ("cascade", 650_000.0); ("other", 50_000.0) ])
  in
  Alcotest.(check (list string)) "agreeing sum accepted" [] (E.check_log ok);
  let off =
    lifecycle ~rid:1
      (finish_alloc ~rid:1 ~alloc_b:1_000_000.0 [ ("parse", 300_000.0) ])
  in
  Alcotest.(check bool) "70% disagreement flagged" true (E.check_log off <> []);
  (* alloc-free logs (or pre-observatory ones) still check clean *)
  let bare = lifecycle ~rid:1 (finish_alloc ~rid:1 ~alloc_b:0.0 []) in
  Alcotest.(check (list string)) "alloc-field-free finish accepted" []
    (E.check_log bare);
  (* tiny requests never false-positive on counter granularity (4 KiB floor) *)
  let tiny =
    lifecycle ~rid:1 (finish_alloc ~rid:1 ~alloc_b:512.0 [ ("other", 3000.0) ])
  in
  Alcotest.(check (list string)) "4KiB tolerance floor holds" []
    (E.check_log tiny)

(* the regression gate's allocation axis: 2x trips, 8% jitter passes *)
let sample_with_allocs name words =
  {
    Perf.Sample.s_name = name;
    s_warmup = 0;
    s_times = [| 0.010; 0.011; 0.010; 0.012; 0.011 |];
    s_allocs = Array.map (fun x -> x *. words) [| 1.0; 1.001; 0.999; 1.0; 1.002 |];
    s_gc = Perf.Gc_delta.zero;
    s_counters = [];
    s_phases = [];
    s_metrics = [];
  }

let test_diff_alloc_gate () =
  let report samples = Perf.Report.make samples in
  let base = report [ sample_with_allocs "compile/adder" 1_000_000.0 ] in
  let doubled = report [ sample_with_allocs "compile/adder" 2_000_000.0 ] in
  let jitter = report [ sample_with_allocs "compile/adder" 1_080_000.0 ] in
  let rows = Perf.Diff.compare_reports ~baseline:base ~current:doubled () in
  let alloc_rows = List.filter Perf.Diff.is_alloc_row rows in
  Alcotest.(check int) "one alloc row" 1 (List.length alloc_rows);
  let regressed =
    List.exists Perf.Diff.is_alloc_row (Perf.Diff.regressions rows)
  in
  Alcotest.(check bool) "planted 2x allocation regression trips" true regressed;
  let rows = Perf.Diff.compare_reports ~baseline:base ~current:jitter () in
  Alcotest.(check bool) "8% allocation jitter passes" false
    (List.exists Perf.Diff.is_alloc_row (Perf.Diff.regressions rows));
  (* a baseline predating allocation capture yields no alloc row *)
  let old = report [ { (sample_with_allocs "compile/adder" 0.0) with Perf.Sample.s_allocs = [||] } ] in
  let rows = Perf.Diff.compare_reports ~baseline:old ~current:doubled () in
  Alcotest.(check int) "pre-capture baseline: no alloc row" 0
    (List.length (List.filter Perf.Diff.is_alloc_row rows))

(* the perturbation seam that lets the gate be tested end to end *)
let test_perturb_alloc_parsing () =
  let with_env v f =
    Unix.putenv Perf.perturb_alloc_env v;
    Fun.protect ~finally:(fun () -> Unix.putenv Perf.perturb_alloc_env "") f
  in
  with_env "adder:4096" (fun () ->
      Alcotest.(check int) "named experiment perturbed" 4096
        (Perf.perturb_alloc_b ~name:"compile/adder");
      Alcotest.(check int) "other experiments untouched" 0
        (Perf.perturb_alloc_b ~name:"compile/mux"));
  with_env "8192" (fun () ->
      Alcotest.(check int) "bare bytes perturb everything" 8192
        (Perf.perturb_alloc_b ~name:"anything"));
  Alcotest.(check int) "unset seam is inert" 0
    (Perf.perturb_alloc_b ~name:"compile/adder")

(* Perf.run captures per-repetition allocation and the report round-trips it *)
let test_run_captures_allocs () =
  let s =
    Perf.run ~warmup:0 ~repeats:3 ~name:"alloc-probe" (fun () ->
        churn_words 100_000)
  in
  Alcotest.(check int) "one alloc sample per rep" 3 (Array.length s.Perf.Sample.s_allocs);
  Alcotest.(check bool) "median sees the churn" true
    (Perf.Sample.alloc_median s >= 90_000.0);
  let path = Filename.temp_file "vhdl-alloc" ".json" in
  Perf.Report.save path (Perf.Report.make [ s ]);
  (match Perf.Report.load path with
  | Error msg -> Alcotest.fail msg
  | Ok r -> (
    match r.Perf.Report.r_samples with
    | [ s' ] ->
      (* the JSON floats keep 6 significant digits, so a ~1MB figure can
         drift a few bytes through the round-trip *)
      Alcotest.(check (float 16.0)) "bytes/compile round-trips"
        (Perf.Sample.alloc_bytes_median s)
        (Perf.Sample.alloc_bytes_median s')
    | ss -> Alcotest.failf "expected 1 sample, got %d" (List.length ss)));
  Sys.remove path

let suite =
  [
    Alcotest.test_case "zero-allocation span reports exactly 0" `Quick
      test_zero_alloc_span_is_zero;
    Alcotest.test_case "span allocation covers children; self subtracts" `Quick
      test_span_alloc_covers_children;
    Alcotest.test_case "folded_alloc conserves bytes exactly" `Quick
      test_folded_alloc_conserves_exactly;
    Alcotest.test_case "phase alloc table sums to the GC delta" `Quick
      test_phase_alloc_sums_to_gc_delta;
    Alcotest.test_case "check_log enforces the al_* sum invariant" `Quick
      test_check_log_alloc_sum;
    Alcotest.test_case "diff gates allocation: 2x trips, 8% passes" `Quick
      test_diff_alloc_gate;
    Alcotest.test_case "perturbation seam parses and scopes" `Quick
      test_perturb_alloc_parsing;
    Alcotest.test_case "bench runs capture per-rep allocation" `Quick
      test_run_captures_allocs;
  ]
