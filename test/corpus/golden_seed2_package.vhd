-- vhdlfuzz golden design
-- seed: 2
-- shape: package
-- top: FZTOP
-- max-ns: 20
package FZPKG is
  constant P0 : integer := (0) mod 9973;
  constant P1 : integer := ((-(3 mod 1))) mod 9973;
  constant P2 : integer := ((-(8 - P1))) mod 9973;
  constant P3 : integer := ((abs ((2 + P0)))) mod 9973;
  function FF0 (x : integer) return integer;
  function FF1 (x : integer) return integer;
end FZPKG;

package body FZPKG is
  function FF0 (x : integer) return integer is
  begin
    return (((abs (1)) - (P0 - P3))) mod 9973;
  end FF0;
  function FF1 (x : integer) return integer is
  begin
    return ((((x * P3) mod 5) ** 2)) mod 9973;
  end FF1;
end FZPKG;

use work.FZPKG.all;

entity FZTOP is
end FZTOP;

architecture fz of FZTOP is
  constant Q : integer := ((((P3 + P3) mod 5) ** 2)) mod 9973;
  signal r : integer := 0;
  signal u : integer := 0;
begin
  r <= (FF0((P1 mod 7)) + Q) mod 9973 after 2 ns;
  u <= (((((P0 mod 5) ** 2) mod 5) ** 2)) mod 9973 after 3 ns;
end fz;
