-- vhdlfuzz golden design
-- seed: 12
-- shape: configured
-- top: BOARD
-- max-ns: 20
entity CELL is
  port (a : in bit; y : out bit);
end CELL;

architecture A0 of CELL is
begin
  y <= not a after 1 ns;
end A0;

architecture A1 of CELL is
begin
  y <= not a after 2 ns;
end A1;

architecture A2 of CELL is
begin
  y <= not a after 3 ns;
end A2;

entity BOARD is
end BOARD;

architecture net of BOARD is
  component CELL
    port (a : in bit; y : out bit);
  end component;
  signal n0 : bit;
  signal n1 : bit;
  signal n2 : bit;
  signal n3 : bit;
begin
  c1 : CELL port map (a => n0, y => n1);
  c2 : CELL port map (a => n1, y => n2);
  c3 : CELL port map (a => n2, y => n3);
end net;

configuration CFG of BOARD is
  for net
    for all : CELL use entity WORK.CELL(A1);
    end for;
  end for;
end CFG;
