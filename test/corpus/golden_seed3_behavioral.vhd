-- vhdlfuzz golden design
-- seed: 3
-- shape: behavioral
-- top: FZBEH
-- max-ns: 40
entity FZBEH is
  port (clk : in bit; rst : in bit; dout : out integer);
end FZBEH;

architecture behav of FZBEH is
  type state_t is (S0, S1, S2, S3, S4);
  signal state : state_t := S0;
  signal acc : integer := 0;
begin
  fsm : process (clk)
  begin
    if clk'event and clk = '1' then
      if rst = '1' then
        state <= S0;
      else
        case state is
          when S0 => state <= S1;
          when S1 => state <= S2;
          when S2 => state <= S3;
          when S3 => state <= S4;
          when S4 => state <= S0;
        end case;
      end if;
    end if;
  end process;
  compute : process (state)
    variable t : integer := 0;
  begin
    t := (t + 1) * 3 mod 9973 + 2 - (t / 7);
    t := (t + 2) * 3 mod 9973 + 7 - (t / 7);
    t := (t + 3) * 3 mod 9973 + 12 - (t / 7);
    t := (t + 4) * 3 mod 9973 + 17 - (t / 7);
    t := (t + 5) * 3 mod 9973 + 22 - (t / 7);
    t := (t + 6) * 3 mod 9973 + 27 - (t / 7);
    t := (t + 7) * 3 mod 9973 + 32 - (t / 7);
    t := (t + 8) * 3 mod 9973 + 37 - (t / 7);
    acc <= t;
  end process;
  dout <= acc;
end behav;
