-- vhdlfuzz golden design
-- seed: 55
-- shape: structural
-- top: FZNET
-- max-ns: 30
entity GATE is
  port (a, b : in bit; y : out bit);
end GATE;
architecture rtl of GATE is
begin
  y <= a and b after 1 ns;
end rtl;

entity FZNET is
  port (x : in bit; y : out bit);
end FZNET;

architecture net of FZNET is
  component GATE
    port (a, b : in bit; y : out bit);
  end component;
  signal w0 : bit;
  signal w1 : bit;
  signal w2 : bit;
  signal w3 : bit;
  signal w4 : bit;
  signal w5 : bit;
  signal w6 : bit;
  signal w7 : bit;
  signal w8 : bit;
  signal w9 : bit;
  signal w10 : bit;
  signal w11 : bit;
  signal w12 : bit;
  signal w13 : bit;
  signal w14 : bit;
  signal w15 : bit;
begin
  w0 <= x;
  g1 : GATE port map (a => w0, b => w0, y => w1);
  g2 : GATE port map (a => w1, b => w1, y => w2);
  g3 : GATE port map (a => w2, b => w2, y => w3);
  g4 : GATE port map (a => w3, b => w3, y => w4);
  g5 : GATE port map (a => w4, b => w4, y => w5);
  g6 : GATE port map (a => w5, b => w5, y => w6);
  g7 : GATE port map (a => w6, b => w6, y => w7);
  g8 : GATE port map (a => w7, b => w7, y => w8);
  g9 : GATE port map (a => w8, b => w8, y => w9);
  g10 : GATE port map (a => w9, b => w9, y => w10);
  g11 : GATE port map (a => w10, b => w10, y => w11);
  g12 : GATE port map (a => w11, b => w11, y => w12);
  g13 : GATE port map (a => w12, b => w12, y => w13);
  g14 : GATE port map (a => w13, b => w13, y => w14);
  g15 : GATE port map (a => w14, b => w14, y => w15);
  y <= w15;
end net;
