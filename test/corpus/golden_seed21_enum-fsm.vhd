-- vhdlfuzz golden design
-- seed: 21
-- shape: enum-fsm
-- top: FZTOP
-- max-ns: 60
entity FZTOP is
end FZTOP;

architecture fz of FZTOP is
  type fz_state is (ST0, ST1, ST2, ST3);
  signal st : fz_state := ST0;
  signal clk : bit := '0';
  signal code : integer := 0;
  signal acc : integer := 0;
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait for 5 ns;
  end process;
  fsm : process (clk)
  begin
    if clk'event and clk = '1' then
      case st is
        when ST0 => st <= ST2;
        when ST1 => st <= ST0;
        when ST2 => st <= ST1;
        when ST3 => st <= ST0;
      end case;
      acc <= (((5 mod 7) mod 7)) mod 9973;
    end if;
  end process;
  code <= fz_state'pos(st);
end fz;
