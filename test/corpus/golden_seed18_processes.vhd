-- vhdlfuzz golden design
-- seed: 18
-- shape: processes
-- top: FZTOP
-- max-ns: 60
entity FZTOP is
end FZTOP;

architecture fz of FZTOP is
  signal clk : bit := '0';
  signal s0 : integer := 6;
  signal s1 : integer := 9;
  signal s2 : integer := 9;
  signal s3 : integer := 2;
  signal s4 : integer := 2;
  signal s5 : integer := 0;
  signal c0 : integer := 0;
  signal c1 : integer := 0;
  signal c2 : integer := 0;
  signal flag : bit := '0';
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait for 5 ns;
  end process;
  p0 : process (clk)
    variable t : integer := 0;
  begin
    if clk'event and clk = '1' then
      t := ((-(s3 / 5))) mod 9973;
      s0 <= (((((0 mod 5) ** 2) mod 5) ** 2)) mod 9973;
      s1 <= ((-(abs (7)))) mod 9973;
      if ((5 mod 2) /= (s5 - 4)) then
        flag <= not flag;
      end if;
      assert (true and false) report "fuzz invariant" severity note;
    end if;
  end process;
  p1 : process (clk)
    variable t : integer := 0;
  begin
    if clk'event and clk = '1' then
      t := ((-(4 mod 1))) mod 9973;
      s2 <= ((((s1 / 3) mod 5) ** 2)) mod 9973;
      s3 <= ((abs ((s4 / 5)))) mod 9973;
    end if;
  end process;
  p2 : process (clk)
    variable t : integer := 0;
  begin
    if clk'event and clk = '1' then
      t := (((4 - 9) * (abs (s0)))) mod 9973;
      s4 <= (((abs (s5)) + (-8))) mod 9973;
      s5 <= ((-(4 / 2))) mod 9973;
    end if;
  end process;
  c0 <= (((abs (s1)) + (abs (s2)))) mod 9973 after 2 ns;
  c1 <= ((-(abs (3)))) mod 9973 after 1 ns;
  c2 <= ((abs ((1 * 4)))) mod 9973 after 1 ns;
end fz;
