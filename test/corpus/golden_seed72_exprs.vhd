-- vhdlfuzz golden design
-- seed: 72
-- shape: exprs
-- top: FZTOP
-- max-ns: 40
entity FZTOP is
end FZTOP;

architecture fz of FZTOP is
  constant K0 : integer := ((((6 mod 5) ** 2) - 4)) mod 9973;
  constant K1 : integer := ((-((((K0 mod 5) ** 2) mod 5) ** 2))) mod 9973;
  constant K2 : integer := ((((K1 mod 5) ** 2) - ((K1 mod 5) ** 2))) mod 9973;
  constant K3 : integer := (((-6) mod 2)) mod 9973;
  constant K4 : integer := (((-4) * (5 - 5))) mod 9973;
  constant K5 : integer := (((((K3 / 4) * (abs (3))) mod 5) ** 2)) mod 9973;
  constant K6 : integer := (((8 * K4) - (7 / 3))) mod 9973;
  constant K7 : integer := ((-(-K2))) mod 9973;
  constant K8 : integer := (((K7 mod 5) ** 2)) mod 9973;
  constant K9 : integer := ((((K4 / 1) + (K6 / 8)) - (((9 mod 7) mod 5) ** 2))) mod 9973;
  constant K10 : integer := (((-8) / 5)) mod 9973;
  signal w0 : integer := 0;
  signal w1 : integer := 0;
  signal w2 : integer := 0;
  signal w3 : integer := 0;
  signal w4 : integer := 0;
begin
  w0 <= (((K4 * 7) mod 8)) mod 9973 after 3 ns;
  w1 <= ((-(3 - K10))) mod 9973 after 3 ns;
  w2 <= ((abs ((K3 - K9)))) mod 9973 after 1 ns;
  w3 <= (((K8 - K7) mod 3)) mod 9973 after 4 ns;
  w4 <= ((-(-0))) mod 9973 after 4 ns;
end fz;
