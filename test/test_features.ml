(* Second-wave language features: generate statements, user-defined
   physical types, 'LAST_EVENT, aliases, user-defined attributes. *)

let simulate ?(ns = 1000) ?(top = "TB") sources =
  let c = Vhdl_compiler.create () in
  List.iter (fun s -> ignore (Vhdl_compiler.compile c s)) sources;
  let sim = Vhdl_compiler.elaborate c ~top () in
  let _ = Vhdl_compiler.run c sim ~max_ns:ns in
  (c, sim)

let check_int sim path expected =
  match Vhdl_compiler.value sim path with
  | Some v -> Alcotest.(check int) path expected (Value.as_int v)
  | None -> Alcotest.failf "no signal %s" path

let test_for_generate_instances () =
  let _, sim =
    simulate
      [
        {|
entity buf is
  port (a : in bit; y : out bit);
end buf;
architecture r of buf is
begin
  y <= a after 1 ns;
end r;

entity tb is end tb;
architecture t of tb is
  component buf
    port (a : in bit; y : out bit);
  end component;
  signal src : bit := '0';
begin
  g : for i in 1 to 5 generate
    u : buf port map (a => src, y => open);
  end generate;
  src <= '1' after 10 ns;
end t;
|};
      ]
  in
  let ns = Vhdl_compiler.name_server sim in
  (* tb + 5 generated instances *)
  Alcotest.(check int) "instances" 6 (List.length (Name_server.instances ns));
  Alcotest.(check bool) "indexed path exists" true
    (Name_server.find_signal ns ":tb:G(3):U:Y" <> None)

let test_generate_parameter_in_expressions () =
  (* the generate parameter participates in expressions inside the body
     (it rides as a unit constant substituted per iteration) *)
  let _, sim =
    simulate
      [
        {|
entity stage is
  generic (weight : integer);
  port (tick : in bit; acc : out integer);
end stage;
architecture r of stage is
begin
  acc <= weight * 10;
end r;

entity tb is end tb;
architecture t of tb is
  component stage
    generic (weight : integer);
    port (tick : in bit; acc : out integer);
  end component;
  signal clk : bit := '0';
begin
  g : for i in 1 to 3 generate
    s : stage generic map (weight => i * i) port map (tick => clk, acc => open);
  end generate;
end t;
|};
      ]
  in
  let ns = Vhdl_compiler.name_server sim in
  let acc i =
    match Name_server.find_signal ns (Printf.sprintf ":tb:G(%d):S:ACC" i) with
    | Some s -> Value.as_int s.Rt.current
    | None -> Alcotest.failf "missing stage %d" i
  in
  Alcotest.(check int) "stage 1: 1*1*10" 10 (acc 1);
  Alcotest.(check int) "stage 2: 2*2*10" 40 (acc 2);
  Alcotest.(check int) "stage 3: 3*3*10" 90 (acc 3)

let test_physical_types () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  type distance is range 0 to 1000000000 units
    um;
    mm = 1000 um;
    m  = 1000 mm;
  end units;
  constant track : distance := 2 m;
  signal laps_um : integer := 0;
  signal total : integer := 0;
begin
  p : process
    variable d : distance := 500 mm;
  begin
    laps_um <= track / (1 um);
    d := d + 250000 um;          -- 750 mm
    total <= d / (1 mm);
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:LAPS_UM" 2_000_000;
  check_int sim ":tb:TOTAL" 750

let test_last_event () =
  let _, sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal s : bit := '0';
  signal age_ok : integer := 0;
begin
  s <= '1' after 10 ns;
  watcher : process
  begin
    wait for 25 ns;
    if s'last_event = 15 ns then
      age_ok <= 1;
    end if;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:AGE_OK" 1

let test_alias_declaration () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal counter_value : integer := 7;
  alias cv : integer is counter_value;
  signal r : integer := 0;
begin
  p : process
  begin
    r <= cv * 2;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:R" 14

let test_user_attributes () =
  (* §3.2's point: a user-defined attribute wins over the predefined one of
     the same name *)
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  attribute max_delay : integer;
  signal data : integer := 0;
  attribute max_delay of data : signal is 42;
  signal picked : integer := 0;
begin
  p : process
  begin
    picked <= data'max_delay;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:PICKED" 42

let test_nested_generate () =
  let _, sim =
    simulate
      [
        {|
entity cell is
  port (t : in bit);
end cell;
architecture r of cell is
begin
end r;

entity tb is end tb;
architecture t of tb is
  component cell
    port (t : in bit);
  end component;
  signal s : bit := '0';
begin
  rows : for i in 0 to 1 generate
    cols : for j in 0 to 2 generate
      c : cell port map (t => s);
    end generate;
  end generate;
end t;
|};
      ]
  in
  let ns = Vhdl_compiler.name_server sim in
  (* tb + 2*3 cells *)
  Alcotest.(check int) "2x3 grid" 7 (List.length (Name_server.instances ns));
  Alcotest.(check bool) "nested path" true
    (List.exists
       (fun (p, _, _) -> p = ":tb:ROWS(1):COLS(2):C")
       (Name_server.instances ns))

let test_element_association () =
  (* indexed signal actuals in port maps: implicit connector processes and
     per-element drivers on the composite *)
  let _, sim =
    simulate
      [
        {|
entity inv is
  port (a : in bit; y : out bit);
end inv;
architecture r of inv is
begin
  y <= not a after 1 ns;
end r;

entity tb is end tb;
architecture t of tb is
  component inv
    port (a : in bit; y : out bit);
  end component;
  type nibble is array (0 to 3) of bit;
  signal input : nibble := "0101";
  signal output : nibble := "0000";
begin
  g : for i in 0 to 3 generate
    u : inv port map (a => input(i), y => output(i));
  end generate;
end t;
|};
      ]
  in
  match Vhdl_compiler.value sim ":tb:OUTPUT" with
  | Some (Value.Varray { elems; _ }) ->
    Alcotest.(check (list int)) "output = not input, element-wise" [ 1; 0; 1; 0 ]
      (Array.to_list (Array.map Value.as_int elems))
  | _ -> Alcotest.fail "no output array"

let test_concurrent_procedure_call () =
  let _, sim =
    simulate ~ns:50
      [
        {|
package plib is
  procedure mirror (x : in integer; y : out integer);
end plib;
package body plib is
  procedure mirror (x : in integer; y : out integer) is
  begin
    y := x * 2;
  end mirror;
end plib;
|};
        {|
use work.plib.all;
entity tb is end tb;
architecture t of tb is
  signal src : integer := 0;
  signal doubled : integer := 0;
begin
  -- variable-class path of the same machinery (signal-class parameters
  -- are exercised in the signal-class tests below)
  p : process (src)
    variable tmp : integer := 0;
  begin
    mirror(src, tmp);
    doubled <= tmp;
  end process;
  src <= 21 after 10 ns;
end t;
|};
      ]
  in
  check_int sim ":tb:DOUBLED" 42

let test_if_generate () =
  let _, sim =
    simulate
      [
        {|
entity probe is
  port (t : in bit);
end probe;
architecture r of probe is
begin
end r;

entity tb is end tb;
architecture t of tb is
  component probe
    port (t : in bit);
  end component;
  constant debug_level : integer := 2;
  signal s : bit := '0';
begin
  dbg : if debug_level > 1 generate
    mon : probe port map (t => s);
  end generate;
  extra : if debug_level > 5 generate
    never : probe port map (t => s);
  end generate;
end t;
|};
      ]
  in
  let ns = Vhdl_compiler.name_server sim in
  Alcotest.(check bool) "condition-true instance exists" true
    (List.exists (fun (p, _, _) -> p = ":tb:DBG:MON") (Name_server.instances ns));
  Alcotest.(check bool) "condition-false instance absent" false
    (List.exists (fun (p, _, _) -> p = ":tb:EXTRA:NEVER") (Name_server.instances ns))

(* §3.4: the VHDL use clause can import individual names, "avoiding the
   homographic conflicts" a .all import would create *)
let test_selective_import () =
  let _, sim =
    simulate ~ns:10
      [
        {|
package p1 is
  constant width : integer := 8;
  constant depth : integer := 16;
end p1;
|};
        {|
package p2 is
  constant width : integer := 99;
end p2;
|};
        {|
use work.p1.width;
use work.p1.depth;
entity tb is end tb;
architecture t of tb is
  signal r : integer := 0;
begin
  p : process
  begin
    -- p2.width is NOT imported; the selective import wins unambiguously
    r <= width + depth;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:R" 24

let test_package_name_import () =
  (* use work.pkg (no .all): the package NAME becomes visible, items reached
     by selection *)
  let _, sim =
    simulate ~ns:10
      [
        {|
package p3 is
  constant k : integer := 5;
end p3;
|};
        {|
use work.p3;
entity tb is end tb;
architecture t of tb is
  signal r : integer := 0;
begin
  p : process
  begin
    r <= p3.k * 3;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:R" 15

let test_entity_declarative_part () =
  (* types and constants declared in the entity are visible in every
     architecture of that entity *)
  let c = Vhdl_compiler.create () in
  ignore
    (Vhdl_compiler.compile c
       {|
entity machine is
  port (clk : in bit; code : out integer);
  type mode_t is (idle, busy, fault);
  constant reset_mode : mode_t := idle;
end machine;
|});
  ignore
    (Vhdl_compiler.compile c
       {|
architecture a of machine is
  signal m : mode_t := reset_mode;
begin
  code <= mode_t'pos(m);
  step : process (clk)
  begin
    if clk'event and clk = '1' then
      m <= busy;
    end if;
  end process;
end a;
|});
  let sim = Vhdl_compiler.elaborate c ~top:"machine" () in
  let _ = Vhdl_compiler.run c sim ~max_ns:10 in
  match Vhdl_compiler.value sim ":machine:M" with
  | Some v -> Alcotest.(check bool) "initialized from entity constant" true
                (Value.equal v (Value.Venum 0))
  | None -> Alcotest.fail "no m"

let test_attribute_ranges_in_loops () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  type word is array (3 downto 0) of bit;
  constant w : word := "1011";
  signal n : integer := 0;
begin
  p : process
    variable acc : integer := 0;
  begin
    for i in w'range loop
      if w(i) = '1' then
        acc := acc + 1;
      end if;
    end loop;
    n <= acc + (w'left - w'right);   -- 3 ones + (3 - 0)
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:N" 6

(* Qualified expressions (LRM 7.3.4): [type'(expr)] forces the candidate
   set, disambiguating overloaded enumeration literals. *)
let test_qualified_expressions () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  type duo is (aa, bb);
  type uno is (bb, cc);
  signal s : bit := '0';
  signal pick : integer := 0;
begin
  p : process
  begin
    s <= bit'('1');
    pick <= duo'pos(duo'(bb)) * 10 + uno'pos(uno'(bb));
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:PICK" 10;
  match Vhdl_compiler.value sim ":tb:S" with
  | Some (Value.Venum 1) -> ()
  | Some v -> Alcotest.failf "s = %s, expected '1'" (Value.image v)
  | None -> Alcotest.fail "signal S not found"

(* Operator-symbol subprogram designators (LRM 2.1): [function "+"] adds a
   user overload alongside the predefined operator; the classified LEF op
   token carries the candidates into the expression AG. *)
let test_operator_functions () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  type trit is (lo, mid, hi);
  function "+" (a, b : trit) return trit is
  begin
    return trit'val((trit'pos(a) + trit'pos(b)) mod 3);
  end;
  function "not" (a : trit) return trit is
  begin
    return trit'val(2 - trit'pos(a));
  end;
  signal x : trit := lo;
  signal y : trit := lo;
  signal n : integer := 0;
begin
  p : process
  begin
    x <= mid + hi;        -- (1+2) mod 3 = lo
    y <= not (lo + mid);  -- not mid = mid
    n <= 2 + 3;           -- predefined "+" still visible
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:N" 5;
  let pos path =
    match Vhdl_compiler.value sim path with
    | Some (Value.Venum p) -> p
    | _ -> Alcotest.failf "%s missing" path
  in
  Alcotest.(check int) "mid + hi = lo" 0 (pos ":tb:X");
  Alcotest.(check int) "not (lo + mid) = mid" 1 (pos ":tb:Y")

let test_operator_functions_in_package () =
  let _, sim =
    simulate ~ns:10
      [
        {|
package vec_ops is
  type nibble is array (0 to 3) of bit;
  function "and" (a, b : nibble) return nibble;
end vec_ops;
package body vec_ops is
  function "and" (a, b : nibble) return nibble is
    variable r : nibble;
  begin
    for i in 0 to 3 loop
      if a(i) = '1' and b(i) = '1' then r(i) := '1'; else r(i) := '0'; end if;
    end loop;
    return r;
  end;
end vec_ops;
|};
        {|
use work.vec_ops;
entity tb is end tb;
architecture t of tb is
  use work.vec_ops;
  signal z : work.vec_ops.nibble;
begin
  p : process
    variable a : work.vec_ops.nibble := "1100";
    variable b : work.vec_ops.nibble := "1010";
  begin
    z <= a and b;
    wait;
  end process;
end t;
|};
      ]
  in
  match Vhdl_compiler.value sim ":tb:Z" with
  | Some (Value.Varray { elems; _ }) ->
    Alcotest.(check (list int))
      "1100 and 1010 = 1000" [ 1; 0; 0; 0 ]
      (Array.to_list elems
      |> List.map (function Value.Venum p -> p | _ -> -1))
  | _ -> Alcotest.fail "z missing"

let test_operator_selective_import () =
  let _, sim =
    simulate ~ns:10
      [
        {|
package vec_ops is
  type nibble is array (0 to 3) of bit;
  function "xor" (a, b : nibble) return nibble;
end vec_ops;
package body vec_ops is
  function "xor" (a, b : nibble) return nibble is
    variable r : nibble;
  begin
    for i in 0 to 3 loop
      if a(i) /= b(i) then r(i) := '1'; else r(i) := '0'; end if;
    end loop;
    return r;
  end;
end vec_ops;
|};
        {|
use work.vec_ops.nibble, work.vec_ops."xor";
entity tb is end tb;
architecture t of tb is
  signal z : nibble;
begin
  p : process
    variable a : nibble := "1100";
    variable b : nibble := "1010";
  begin
    z <= a xor b;
    wait;
  end process;
end t;
|};
      ]
  in
  match Vhdl_compiler.value sim ":tb:Z" with
  | Some (Value.Varray { elems; _ }) ->
    Alcotest.(check (list int))
      "1100 xor 1010 = 0110" [ 0; 1; 1; 0 ]
      (Array.to_list elems |> List.map (function Value.Venum p -> p | _ -> -1))
  | _ -> Alcotest.fail "z missing"

(* Deferred constants (LRM 4.3.1.1): declared without a value in the
   package, completed in the body; references late-bind at elaboration
   through the unit-constant slot. *)
let test_deferred_constants () =
  let _, sim =
    simulate ~ns:10
      [
        {|
package cfg is
  constant depth : integer;
  constant width : integer;
  function scaled (x : integer) return integer;
end cfg;
package body cfg is
  constant depth : integer := 8;
  constant width : integer := depth * 4;
  function scaled (x : integer) return integer is
  begin
    return x * width;
  end;
end cfg;
|};
        {|
use work.cfg.all;
entity tb is end tb;
architecture t of tb is
  signal a : integer := 0;
  signal b : integer := 0;
begin
  p : process
  begin
    a <= depth + width;
    b <= scaled(3);
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:A" 40;
  check_int sim ":tb:B" 96

let test_deferred_constant_vif_roundtrip () =
  let dir = Filename.temp_file "defer" "" in
  Sys.remove dir;
  let c1 = Vhdl_compiler.create ~work_dir:dir () in
  ignore
    (Vhdl_compiler.compile c1
       {|
package cfg is
  constant magic : integer;
end cfg;
package body cfg is
  constant magic : integer := 1789;
end cfg;

use work.cfg.all;
entity tb is end tb;
architecture t of tb is
  signal m : integer := 0;
begin
  p : process begin m <= magic; wait; end process;
end t;
|});
  (* a fresh session must recover the deferred value from disk alone *)
  let c2 = Vhdl_compiler.create ~work_dir:dir () in
  let sim = Vhdl_compiler.elaborate c2 ~top:"tb" () in
  let _ = Vhdl_compiler.run c2 sim ~max_ns:10 in
  check_int sim ":tb:M" 1789

(* LRM 7.3.5: conversions between abstract numeric types, and implicit
   conversion of universal (locally static) literals — but NOT of dynamic
   expressions of another integer type. *)
let test_numeric_conversions () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  type volt is range 0 to 5000;
  type amp is range 0 to 100;
  signal v : volt := 230;          -- universal literal into a distinct type
  signal w : integer := 0;
begin
  p : process
    variable a : amp := 2;
  begin
    v <= volt(integer(a) * 100);   -- int->int conversions both ways
    w <= integer(v) + 1;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:V" 200;
  check_int sim ":tb:W" 231

let test_no_implicit_dynamic_conversion () =
  let c = Vhdl_compiler.create () in
  match
    Vhdl_compiler.compile c
      {|
entity tb is end tb;
architecture t of tb is
  type volt is range 0 to 5000;
  signal i : integer := 3;
  signal v : volt := 0;
begin
  p : process
  begin
    v <= i;   -- dynamic INTEGER expression: needs an explicit conversion
    wait;
  end process;
end t;
|}
  with
  | exception Vhdl_compiler.Compile_error msgs ->
    let text = Format.asprintf "%a" Diag.pp_list msgs in
    Alcotest.(check bool) "type error reported" true
      (Astring_contains.contains text "does not match expected type VOLT")
  | _ -> Alcotest.fail "expected a type error"

(* Null waveforms (LRM 8.3): [s <= null after T] disconnects the driver
   when the transaction matures; legal only for guarded signals. *)
let test_null_waveform () =
  let _, sim =
    simulate ~ns:30
      [
        {|
entity tb is end tb;
architecture t of tb is
  function wired_or (bits : bit_vector) return bit is
  begin
    for i in bits'range loop
      if bits(i) = '1' then
        return '1';
      end if;
    end loop;
    return '0';
  end wired_or;
  signal line_s : wired_or bit bus := '0';
  signal seen_high : integer := 0;
  signal seen_drop : integer := 0;
begin
  low : process
  begin
    line_s <= '0';
    wait;
  end process;
  pulse : process
  begin
    line_s <= '1' after 2 ns;
    line_s <= transport null after 10 ns;
    wait;
  end process;
  watch : process
  begin
    wait for 5 ns;
    if line_s = '1' then seen_high <= 1; end if;
    wait for 10 ns;
    if line_s = '0' then seen_drop <= 1; end if;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:SEEN_HIGH" 1;
  check_int sim ":tb:SEEN_DROP" 1

let test_null_waveform_on_plain_signal_fails () =
  let c = Vhdl_compiler.create () in
  ignore
    (Vhdl_compiler.compile c
       {|
entity tb is end tb;
architecture t of tb is
  signal s : bit := '0';
begin
  p : process
  begin
    s <= null after 1 ns;
    wait;
  end process;
end t;
|});
  let sim = Vhdl_compiler.elaborate c ~top:"tb" () in
  match Vhdl_compiler.run c sim ~max_ns:10 with
  | exception Rt.Simulation_error _ -> ()
  | _ -> Alcotest.fail "null on an unguarded signal must be a simulation error"

(* Disconnection specifications (LRM 5.3): [disconnect s : t after T]
   delays the implicit disconnect when a guard falls. *)
let test_disconnect_specification () =
  let _, sim =
    simulate ~ns:30
      [
        {|
entity tb is end tb;
architecture t of tb is
  function wired_or (bits : bit_vector) return bit is
  begin
    for i in bits'range loop
      if bits(i) = '1' then return '1'; end if;
    end loop;
    return '0';
  end wired_or;
  signal line_s : wired_or bit bus := '0';
  disconnect line_s : bit after 4 ns;
  signal ctl : bit := '1';
  signal at_6 : integer := 9;
  signal at_12 : integer := 9;
begin
  low : process begin line_s <= '0'; wait; end process;
  b : block (ctl = '1')
  begin
    line_s <= guarded '1';
  end block;
  ctl_drv : process
  begin
    ctl <= '1';
    wait for 5 ns;
    ctl <= '0';
    wait;
  end process;
  watch : process
  begin
    wait for 6 ns;
    if line_s = '1' then at_6 <= 1; else at_6 <= 0; end if;
    wait for 6 ns;
    if line_s = '0' then at_12 <= 1; else at_12 <= 0; end if;
    wait;
  end process;
end t;
|};
      ]
  in
  (* guard falls at 5 ns but the spec holds the driver until 9 ns *)
  check_int sim ":tb:AT_6" 1;
  check_int sim ":tb:AT_12" 1

(* Signal-class subprogram parameters (LRM 2.1.1.2): the procedure drives
   the caller's signals through the calling process's drivers. *)
let test_signal_class_parameters () =
  let _, sim =
    simulate ~ns:30
      [
        {|
package drv is
  procedure pulse (signal clk : out bit; signal count : inout integer);
end drv;
package body drv is
  procedure pulse (signal clk : out bit; signal count : inout integer) is
  begin
    clk <= '1' after 1 ns, '0' after 2 ns;
    count <= count + 1;
  end pulse;
end drv;
|};
        {|
use work.drv.all;
entity tb is end tb;
architecture t of tb is
  signal clk : bit := '0';
  signal n : integer := 0;
  signal rises : integer := 0;
begin
  stim : process
  begin
    pulse(clk, n);
    wait for 10 ns;
    pulse(clk, n);
    wait;
  end process;
  watch : process (clk)
    variable r : integer := 0;
  begin
    if clk = '1' then
      r := r + 1;
      rises <= r;
    end if;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:RISES" 2;
  check_int sim ":tb:N" 2

let test_concurrent_call_with_signal_params () =
  let _, sim =
    simulate ~ns:30
      [
        {|
package mon is
  procedure mirror (signal src : in integer; signal dst : out integer);
end mon;
package body mon is
  procedure mirror (signal src : in integer; signal dst : out integer) is
  begin
    dst <= src * 2;
  end mirror;
end mon;
|};
        {|
use work.mon.all;
entity tb is end tb;
architecture t of tb is
  signal a : integer := 0;
  signal b : integer := 0;
begin
  mirror(a, b);
  stim : process
  begin
    a <= 21 after 5 ns;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:B" 42

let test_signal_param_requires_signal_actual () =
  let c = Vhdl_compiler.create () in
  match
    Vhdl_compiler.compile c
      {|
entity tb is end tb;
architecture t of tb is
  procedure drive (signal s : out bit) is
  begin
    s <= '1';
  end drive;
begin
  p : process
    variable v : bit := '0';
  begin
    drive(v);
    wait;
  end process;
end t;
|}
  with
  | exception Vhdl_compiler.Compile_error msgs ->
    let text = Format.asprintf "%a" Diag.pp_list msgs in
    Alcotest.(check bool) "diagnosed" true
      (Astring_contains.contains text "signal-class parameter requires a signal actual")
  | _ -> Alcotest.fail "expected a diagnostic"

(* Operator keys are quoted strings ("\"+\"" as an environment key): they
   must survive the s-expression escaping of the VIF round trip. *)
let test_operator_function_vif_roundtrip () =
  let dir = Filename.temp_file "opvif" "" in
  Sys.remove dir;
  let c1 = Vhdl_compiler.create ~work_dir:dir () in
  ignore
    (Vhdl_compiler.compile c1
       {|
package vec_ops is
  type duo is (lo, hi);
  function "+" (a, b : duo) return duo;
end vec_ops;
package body vec_ops is
  function "+" (a, b : duo) return duo is
  begin
    if a = hi or b = hi then return hi; else return lo; end if;
  end;
end vec_ops;
|});
  let c2 = Vhdl_compiler.create ~work_dir:dir () in
  ignore
    (Vhdl_compiler.compile c2
       {|
use work.vec_ops.all;
entity tb is end tb;
architecture t of tb is
  signal z : duo := lo;
begin
  p : process begin z <= lo + hi; wait; end process;
end t;
|});
  let sim = Vhdl_compiler.elaborate c2 ~top:"tb" () in
  let _ = Vhdl_compiler.run c2 sim ~max_ns:10 in
  match Vhdl_compiler.value sim ":tb:Z" with
  | Some (Value.Venum 1) -> ()
  | Some v -> Alcotest.failf "z = %s" (Value.image v)
  | None -> Alcotest.fail "z missing"

(* Multi-dimensional arrays lower to nested arrays: m(i, j) = m(i)(j),
   nested aggregates initialize them, and element assignment targets
   work through the same lowering. *)
let test_multidimensional_arrays () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  type matrix is array (0 to 2, 0 to 2) of integer;
  signal trace : integer := 0;
  signal corner : integer := 0;
  signal via_sig : integer := 0;
  signal grid : matrix := ((0, 0, 0), (0, 0, 0), (0, 0, 0));
begin
  p : process
    variable m : matrix := ((1, 2, 3), (4, 5, 6), (7, 8, 9));
    variable acc : integer := 0;
  begin
    for i in 0 to 2 loop
      acc := acc + m(i, i);
    end loop;
    trace <= acc;
    m(2, 0) := 70;
    corner <= m(2, 0) + m(0, 2);
    grid(1, 2) <= 55;
    wait for 1 ns;
    via_sig <= grid(1, 2);
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:TRACE" 15;
  check_int sim ":tb:CORNER" 73;
  check_int sim ":tb:VIA_SIG" 55

let test_operator_function_diagnostics () =
  let c = Vhdl_compiler.create () in
  match
    Vhdl_compiler.compile c
      {|
package bad is
  function "foo" (a : integer) return integer;
  function "not" (a, b : bit) return bit;
end bad;
|}
  with
  | exception Vhdl_compiler.Compile_error msgs ->
    let text = Format.asprintf "%a" Diag.pp_list msgs in
    Alcotest.(check bool) "rejects non-operator symbol" true
      (Astring_contains.contains text "not an operator symbol");
    Alcotest.(check bool) "rejects wrong arity" true
      (Astring_contains.contains text "cannot be declared with 2 parameters")
  | _ -> Alcotest.fail "expected diagnostics"

let suite =
  [
    Alcotest.test_case "for-generate expands instances" `Quick test_for_generate_instances;
    Alcotest.test_case "generate parameter in expressions" `Quick
      test_generate_parameter_in_expressions;
    Alcotest.test_case "user-defined physical types" `Quick test_physical_types;
    Alcotest.test_case "'LAST_EVENT" `Quick test_last_event;
    Alcotest.test_case "alias declarations" `Quick test_alias_declaration;
    Alcotest.test_case "user-defined attributes shadow predefined" `Quick
      test_user_attributes;
    Alcotest.test_case "nested generate" `Quick test_nested_generate;
    Alcotest.test_case "element association in port maps" `Quick test_element_association;
    Alcotest.test_case "procedure call through packages" `Quick
      test_concurrent_procedure_call;
    Alcotest.test_case "if-generate" `Quick test_if_generate;
    Alcotest.test_case "selective import (use work.pkg.item)" `Quick test_selective_import;
    Alcotest.test_case "package-name import (use work.pkg)" `Quick test_package_name_import;
    Alcotest.test_case "entity declarative part" `Quick test_entity_declarative_part;
    Alcotest.test_case "attribute ranges in for loops" `Quick test_attribute_ranges_in_loops;
    Alcotest.test_case "qualified expressions disambiguate overloads" `Quick
      test_qualified_expressions;
    Alcotest.test_case "operator-symbol functions" `Quick test_operator_functions;
    Alcotest.test_case "operator functions exported by packages" `Quick
      test_operator_functions_in_package;
    Alcotest.test_case "operator designator diagnostics" `Quick
      test_operator_function_diagnostics;
    Alcotest.test_case "selective import of operator functions" `Quick
      test_operator_selective_import;
    Alcotest.test_case "deferred constants" `Quick test_deferred_constants;
    Alcotest.test_case "deferred constants across sessions (VIF)" `Quick
      test_deferred_constant_vif_roundtrip;
    Alcotest.test_case "numeric type conversions" `Quick test_numeric_conversions;
    Alcotest.test_case "no implicit conversion of dynamic expressions" `Quick
      test_no_implicit_dynamic_conversion;
    Alcotest.test_case "null waveforms disconnect at maturity" `Quick test_null_waveform;
    Alcotest.test_case "null waveform on a plain signal fails" `Quick
      test_null_waveform_on_plain_signal_fails;
    Alcotest.test_case "disconnection specifications delay release" `Quick
      test_disconnect_specification;
    Alcotest.test_case "signal-class parameters drive caller signals" `Quick
      test_signal_class_parameters;
    Alcotest.test_case "concurrent call with signal parameters" `Quick
      test_concurrent_call_with_signal_params;
    Alcotest.test_case "signal parameter needs a signal actual" `Quick
      test_signal_param_requires_signal_actual;
    Alcotest.test_case "operator functions survive the VIF round trip" `Quick
      test_operator_function_vif_roundtrip;
    Alcotest.test_case "multi-dimensional arrays" `Quick test_multidimensional_arrays;
  ]
