(* The VHDL scanner: IEEE 1076-1987 lexical rules. *)

let toks src = List.map fst (Lexer.tokenize src)

let kinds src =
  toks src
  |> List.filter_map (fun t ->
         match t with
         | Token.Teof -> None
         | t -> Some (Token.terminal_name t))

let test_identifiers_case () =
  (match toks "Foo fOO FOO" with
  | [ Token.Tid a; Token.Tid b; Token.Tid c; Token.Teof ] ->
    Alcotest.(check string) "normalized" "FOO" a;
    Alcotest.(check string) "same" a b;
    Alcotest.(check string) "same again" b c
  | _ -> Alcotest.fail "expected three identifiers");
  match toks "Entity ENTITY entity" with
  | [ Token.Tkw a; Token.Tkw b; Token.Tkw c; Token.Teof ] ->
    Alcotest.(check string) "keyword lowercase" "entity" a;
    Alcotest.(check string) "kw2" "entity" b;
    Alcotest.(check string) "kw3" "entity" c
  | _ -> Alcotest.fail "expected keywords"

let test_numbers () =
  (match toks "42 16#FF# 2#1010# 1_000_000 1E3" with
  | [ Token.Tint a; Token.Tint b; Token.Tint c; Token.Tint d; Token.Tint e; Token.Teof ] ->
    Alcotest.(check int) "decimal" 42 a;
    Alcotest.(check int) "hex" 255 b;
    Alcotest.(check int) "binary" 10 c;
    Alcotest.(check int) "underscores" 1_000_000 d;
    Alcotest.(check int) "exponent" 1000 e
  | _ -> Alcotest.fail "expected five integers");
  match toks "3.14 2.5E2" with
  | [ Token.Treal a; Token.Treal b; Token.Teof ] ->
    Alcotest.(check (float 1e-9)) "real" 3.14 a;
    Alcotest.(check (float 1e-9)) "real exponent" 250.0 b
  | _ -> Alcotest.fail "expected two reals"

let test_strings_and_bitstrings () =
  (match toks {|"hello" "say ""hi"""|} with
  | [ Token.Tstring a; Token.Tstring b; Token.Teof ] ->
    Alcotest.(check string) "plain" "hello" a;
    Alcotest.(check string) "doubled quote" {|say "hi"|} b
  | _ -> Alcotest.fail "expected two strings");
  match toks {|B"1010" X"A5" O"17"|} with
  | [ Token.Tbitstr a; Token.Tbitstr b; Token.Tbitstr c; Token.Teof ] ->
    Alcotest.(check string) "binary" "1010" a;
    Alcotest.(check string) "hex expanded" "10100101" b;
    Alcotest.(check string) "octal expanded" "001111" c
  | _ -> Alcotest.fail "expected three bit strings"

(* the classic tick ambiguity: attribute mark vs character literal *)
let test_tick_disambiguation () =
  Alcotest.(check (list string)) "char literal" [ "CHAR" ] (kinds "'a'");
  Alcotest.(check (list string)) "attribute after identifier"
    [ "ID"; "'"; "ID" ] (kinds "X'LEFT");
  Alcotest.(check (list string)) "attribute then char"
    [ "ID"; "'"; "ID"; "("; "CHAR"; ")" ]
    (kinds "T'VAL('a')");
  Alcotest.(check (list string)) "qualified char literal"
    [ "ID"; "'"; "("; "CHAR"; ")" ]
    (kinds "bit'('1')")

let test_comments_and_lines () =
  let src = "a -- comment ' \" ( \nb\n-- whole line\nc" in
  (match Lexer.tokenize src with
  | [ (Token.Tid "A", 1); (Token.Tid "B", 2); (Token.Tid "C", 4); (Token.Teof, 4) ] -> ()
  | l ->
    Alcotest.failf "unexpected tokens/lines: %s"
      (String.concat ";" (List.map (fun (t, n) -> Printf.sprintf "%s@%d" (Token.describe t) n) l)));
  Alcotest.(check int) "stripped count ignores comments and blanks" 2
    (Lexer.source_lines "a := 1;\n-- note\n\nb := 2;\n")

let test_compound_delimiters () =
  Alcotest.(check (list string)) "compound"
    [ "**"; ":="; "<="; ">="; "=>"; "/="; "<>" ]
    (kinds "** := <= >= => /= <>");
  Alcotest.(check (list string)) "adjacent" [ "<"; "=>" ] (kinds "< =>")

let test_errors () =
  let expect_error src =
    match Lexer.tokenize src with
    | _ -> Alcotest.failf "expected lexical error for %s" src
    | exception Lexer.Lex_error _ -> ()
  in
  expect_error "\"unterminated";
  expect_error "16#GG#";
  expect_error "B\"012\"";
  expect_error "$"

let roundtrip_ident =
  QCheck.Test.make ~name:"identifier lexing is total and stable" ~count:300
    QCheck.(string_gen_of_size (Gen.int_range 1 12) (Gen.char_range 'a' 'z'))
    (fun s ->
      match toks s with
      | [ Token.Tid up; Token.Teof ] -> String.lowercase_ascii up = s
      | [ Token.Tkw kw; Token.Teof ] -> kw = s && Token.is_reserved s
      | _ -> false)

let suite =
  [
    Alcotest.test_case "case-insensitive identifiers and keywords" `Quick test_identifiers_case;
    Alcotest.test_case "abstract literals (based, underscores, exponents)" `Quick test_numbers;
    Alcotest.test_case "string and bit-string literals" `Quick test_strings_and_bitstrings;
    Alcotest.test_case "tick disambiguation" `Quick test_tick_disambiguation;
    Alcotest.test_case "comments and line numbers" `Quick test_comments_and_lines;
    Alcotest.test_case "compound delimiters" `Quick test_compound_delimiters;
    Alcotest.test_case "lexical errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest roundtrip_ident;
  ]
