(* Applicative environments (paper §4.3): Env_list and Env_tree implement
   the same signature; the ABL-ENV experiment compares their speed.  These
   properties pin down that they are observably identical, and that both
   are genuinely applicative (extension never mutates the old value). *)

let names = [| "A"; "B"; "C"; "D"; "E" |]

let variable name tag =
  Denot.Dobject
    {
      name;
      cls = Denot.Cvariable;
      ty = Std.integer;
      mode = None;
      slot = Denot.Sl_frame { level = 0; index = tag };
    }

let enum_lit tag = Denot.Denum_lit { ty = Std.integer; pos = tag; image = "LIT" }

(* a random binding: overloadable (enum literal) or hiding (variable) *)
let binding_gen =
  QCheck.Gen.(
    map3
      (fun i tag overload ->
        let name = names.(i mod Array.length names) in
        (name, if overload then enum_lit tag else variable name tag))
      (int_range 0 (Array.length names - 1))
      (int_range 0 99) bool)

let script_gen = QCheck.Gen.(list_size (int_range 0 40) binding_gen)

let script_arb =
  QCheck.make script_gen
    ~print:(fun script ->
      String.concat "; "
        (List.map
           (fun (n, d) ->
             match d with
             | Denot.Denum_lit { pos; _ } -> Printf.sprintf "%s=enum%d" n pos
             | _ -> Printf.sprintf "%s=var" n)
           script))

let build_list script =
  List.fold_left (fun env (n, d) -> Env.Env_list.extend env n d) Env.Env_list.empty script

let build (script : (string * Denot.t) list) =
  List.fold_left (fun env (n, d) -> Env.extend env n d) Env.empty script

let prop_agreement =
  QCheck.Test.make ~name:"Env_list and Env_tree agree on every lookup" ~count:300
    script_arb (fun script ->
      let l = build_list script in
      let t = build script in
      Array.for_all
        (fun n ->
          Env.Env_list.lookup l n = Env.Env_tree.lookup t n
          && Env.Env_list.mem l n = Env.Env_tree.mem t n)
        names)

let prop_persistence =
  QCheck.Test.make ~name:"extension never changes the old environment" ~count:300
    script_arb (fun script ->
      let t = build script in
      let before = List.map (fun n -> Env.lookup t n) (Array.to_list names) in
      let _t' = Env.extend t "A" (variable "A" 12345) in
      let _t'' = Env.extend_many t [ ("B", enum_lit 7); ("C", variable "C" 9) ] in
      before = List.map (fun n -> Env.lookup t n) (Array.to_list names))

let prop_hiding =
  QCheck.Test.make ~name:"a variable hides everything older with its name" ~count:300
    script_arb (fun script ->
      let t = build script in
      let t = Env.extend t "A" (variable "A" 777) in
      Env.lookup t "A" = [ variable "A" 777 ])

let prop_overload_accumulates =
  QCheck.Test.make ~name:"enumeration literals accumulate, newest first" ~count:300
    QCheck.(int_range 1 8)
    (fun n ->
      let t =
        List.fold_left
          (fun env i -> Env.extend env "A" (enum_lit i))
          Env.empty
          (List.init n (fun i -> i))
      in
      Env.lookup t "A" = List.rev_map enum_lit (List.init n (fun i -> i)))

let test_empty () =
  Alcotest.(check bool) "lookup in empty" true (Env.lookup Env.empty "X" = []);
  Alcotest.(check bool) "mem in empty" false (Env.mem Env.empty "X")

let test_bindings_order () =
  let t =
    Env.extend_many Env.empty [ ("A", variable "A" 1); ("B", variable "B" 2) ]
  in
  match Env.bindings t with
  | (n1, _) :: _ -> Alcotest.(check string) "most recent first" "B" n1
  | [] -> Alcotest.fail "no bindings"

let suite =
  [
    Alcotest.test_case "empty environment" `Quick test_empty;
    Alcotest.test_case "bindings order" `Quick test_bindings_order;
    QCheck_alcotest.to_alcotest prop_agreement;
    QCheck_alcotest.to_alcotest prop_persistence;
    QCheck_alcotest.to_alcotest prop_hiding;
    QCheck_alcotest.to_alcotest prop_overload_accumulates;
  ]
