(* The unified telemetry layer: counter/reset semantics, span nesting,
   Chrome trace-event export of a full compile+simulate, a golden metrics
   snapshot on a fixed corpus design, and the overhead guard for the
   always-on counters. *)

module Tm = Vhdl_telemetry.Telemetry

let corpus_path name =
  let dir =
    if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"
  in
  Filename.concat dir name

let read_corpus name = Vhdl_util.Unix_compat.read_file (corpus_path name)

(* Tests that arm tracing must disarm it on every exit path — the flag is
   process-wide and other suites assume the null sink. *)
(* a disk-backed compiler, so VIF writes actually hit files *)
let disk_compiler () =
  let dir = Filename.temp_file "vhdltelemetry" "" in
  Sys.remove dir;
  Vhdl_compiler.create ~work_dir:dir ()

let with_tracing f =
  Tm.reset ();
  Tm.set_tracing true;
  Fun.protect
    ~finally:(fun () ->
      Tm.set_tracing false;
      Tm.clear_spans ())
    f

(* ------------------------------------------------------------------ *)
(* Counters and reset *)

let test_counters () =
  Tm.reset ();
  let c = Tm.counter "test.scratch_counter" in
  Alcotest.(check int) "starts at zero" 0 (Tm.value c);
  Tm.incr c;
  Tm.incr c;
  Tm.add c 40;
  Alcotest.(check int) "monotone accumulation" 42 (Tm.value c);
  (* registration is idempotent: same name, same cell *)
  let c' = Tm.counter "test.scratch_counter" in
  Tm.incr c';
  Alcotest.(check int) "same cell by name" 43 (Tm.value c);
  Alcotest.(check int) "counter_value by name" 43
    (Tm.counter_value "test.scratch_counter");
  Alcotest.(check int) "unregistered name reads zero" 0
    (Tm.counter_value "test.never_registered");
  let h = Tm.histogram "test.scratch_histogram" in
  Tm.observe h 2.0;
  Tm.observe h 6.0;
  Alcotest.(check int) "histogram count" 2 h.Tm.h_count;
  Alcotest.(check (float 1e-9)) "histogram sum" 8.0 h.Tm.h_sum;
  Tm.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Tm.value c);
  Alcotest.(check int) "reset zeroes histograms" 0 h.Tm.h_count;
  Tm.incr c;
  Alcotest.(check int) "usable after reset" 1 (Tm.value c)

(* histogram percentile estimates: power-of-two buckets, so estimates are
   exact at bucket boundaries and always clamped into [min, max] *)
let test_percentiles () =
  Tm.reset ();
  let h = Tm.histogram "test.scratch_percentiles" in
  (* 90 small observations and 10 large ones: p50 small, p99 large *)
  for _ = 1 to 90 do
    Tm.observe h 2.0
  done;
  for _ = 1 to 10 do
    Tm.observe h 1000.0
  done;
  let p50 = Tm.percentile h 0.50 in
  let p90 = Tm.percentile h 0.90 in
  let p99 = Tm.percentile h 0.99 in
  (* the estimate is exact to within a factor of two *)
  Alcotest.(check bool) "p50 lands in the small bucket" true
    (p50 >= 2.0 && p50 <= 4.0);
  Alcotest.(check bool) "p90 <= p99" true (p90 <= p99);
  Alcotest.(check bool) "p99 reaches the tail" true (p99 > 100.0);
  Alcotest.(check bool) "clamped to max" true (p99 <= 1000.0);
  Alcotest.(check bool) "p50 >= min" true (p50 >= 2.0);
  (* single observation: every percentile is that value *)
  Tm.reset ();
  Tm.observe h 7.0;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single observation p%.0f" (p *. 100.))
        7.0 (Tm.percentile h p))
    [ 0.5; 0.9; 0.99 ]

(* counter snapshot/delta: the supervisor's per-unit attribution *)
let test_snapshot_delta () =
  Tm.reset ();
  let a = Tm.counter "test.delta_a" in
  let b = Tm.counter "test.delta_b" in
  Tm.add a 5;
  let snap = Tm.snapshot () in
  Tm.add a 3;
  Tm.incr b;
  let d = Tm.delta snap in
  Alcotest.(check (option int)) "a delta" (Some 3) (List.assoc_opt "test.delta_a" d);
  Alcotest.(check (option int)) "b delta" (Some 1) (List.assoc_opt "test.delta_b" d);
  (* untouched counters do not appear *)
  Alcotest.(check bool) "only nonzero increments" true
    (List.for_all (fun (_, n) -> n <> 0) d)

(* ------------------------------------------------------------------ *)
(* Span nesting *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  Tm.with_span ~cat:"test" "root" (fun () ->
      Tm.with_span ~cat:"test" "child1" (fun () -> ());
      Tm.with_span ~cat:"test" "child2" (fun () ->
          Tm.with_span ~cat:"test" "grand" (fun () -> ())));
  let sps = Tm.spans () in
  let depth name =
    (List.find (fun sp -> sp.Tm.sp_name = name) sps).Tm.sp_depth
  in
  Alcotest.(check int) "four spans" 4 (List.length sps);
  Alcotest.(check int) "root depth" 0 (depth "root");
  Alcotest.(check int) "child1 depth" 1 (depth "child1");
  Alcotest.(check int) "child2 depth" 1 (depth "child2");
  Alcotest.(check int) "grand depth" 2 (depth "grand");
  (* every deeper span's interval lies inside the root's *)
  let span name = List.find (fun sp -> sp.Tm.sp_name = name) sps in
  let inside a b =
    (* [Sys.time] is coarse, so containment is checked up to equality *)
    a.Tm.sp_start >= b.Tm.sp_start
    && a.Tm.sp_start +. a.Tm.sp_dur <= b.Tm.sp_start +. b.Tm.sp_dur +. 1e-9
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " inside root") true (inside (span n) (span "root")))
    [ "child1"; "child2"; "grand" ];
  Alcotest.(check bool) "grand inside child2" true
    (inside (span "grand") (span "child2"))

let test_span_exception_safety () =
  with_tracing @@ fun () ->
  (try
     Tm.with_span ~cat:"test" "outer" (fun () ->
         Tm.with_span ~cat:"test" "thrower" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let sps = Tm.spans () in
  Alcotest.(check int) "both spans recorded" 2 (List.length sps);
  (* depth unwound: a fresh span opens at the root again *)
  Tm.with_span ~cat:"test" "after" (fun () -> ());
  let after = List.find (fun sp -> sp.Tm.sp_name = "after") (Tm.spans ()) in
  Alcotest.(check int) "depth unwound to root" 0 after.Tm.sp_depth

let test_null_sink () =
  Tm.reset ();
  Alcotest.(check bool) "tracing off by default" false (Tm.tracing ());
  Tm.with_span ~cat:"test" "invisible" (fun () -> ());
  Alcotest.(check int) "no spans recorded when off" 0 (List.length (Tm.spans ()))

(* ------------------------------------------------------------------ *)
(* A tiny JSON reader — just enough to validate the exporters' output
   without an external dependency. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then failwith "unexpected end of JSON";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while
      !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let lit word v =
    String.iter (fun c -> if next () <> c then failwith "bad literal") word;
    v
  in
  let string_body () =
    if next () <> '"' then failwith "expected string";
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (match next () with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'u' ->
          pos := !pos + 4;
          Buffer.add_char buf '?'
        | c -> Buffer.add_char buf c);
        go ()
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    while
      !pos < len
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then failwith "bad JSON value";
    Jnum (float_of_string (String.sub s start (!pos - start)))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Jstr (string_body ())
    | Some 't' -> lit "true" (Jbool true)
    | Some 'f' -> lit "false" (Jbool false)
    | Some 'n' -> lit "null" Jnull
    | _ -> number ()
  and arr () =
    ignore (next ());
    skip_ws ();
    if peek () = Some ']' then (
      ignore (next ());
      Jarr [])
    else
      let rec items acc =
        let v = value () in
        skip_ws ();
        match next () with
        | ',' -> items (v :: acc)
        | ']' -> Jarr (List.rev (v :: acc))
        | _ -> failwith "bad array"
      in
      items []
  and obj () =
    ignore (next ());
    skip_ws ();
    if peek () = Some '}' then (
      ignore (next ());
      Jobj [])
    else
      let rec fields acc =
        skip_ws ();
        let k = string_body () in
        skip_ws ();
        if next () <> ':' then failwith "expected colon";
        let v = value () in
        skip_ws ();
        match next () with
        | ',' -> fields ((k, v) :: acc)
        | '}' -> Jobj (List.rev ((k, v) :: acc))
        | _ -> failwith "bad object"
      in
      fields []
  in
  let v = value () in
  skip_ws ();
  if !pos <> len then failwith "trailing JSON garbage";
  v

let field name = function
  | Jobj fields -> List.assoc_opt name fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Chrome trace of a full compile + simulate *)

let test_chrome_trace () =
  with_tracing @@ fun () ->
  let src = read_corpus "golden_seed18_processes.vhd" in
  let c = disk_compiler () in
  ignore (Vhdl_compiler.compile c src);
  let sim = Vhdl_compiler.elaborate ~trace:false c ~top:"FZTOP" () in
  ignore (Vhdl_compiler.run c sim ~max_ns:100);
  let events =
    match parse_json (Tm.to_chrome_trace ()) with
    | Jarr events -> events
    | _ -> Alcotest.fail "trace is not a JSON array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 5);
  let names = ref [] in
  List.iter
    (fun ev ->
      match field "ph" ev with
      | Some (Jstr "M") -> () (* metadata *)
      | Some (Jstr "X") ->
        (* complete events carry the full Chrome trace-event shape *)
        (match (field "name" ev, field "cat" ev) with
        | Some (Jstr n), Some (Jstr _) -> names := n :: !names
        | _ -> Alcotest.fail "X event missing name/cat");
        (match (field "ts" ev, field "dur" ev) with
        | Some (Jnum ts), Some (Jnum dur) ->
          Alcotest.(check bool) "ts/dur non-negative" true (ts >= 0.0 && dur >= 0.0)
        | _ -> Alcotest.fail "X event missing ts/dur");
        (match (field "pid" ev, field "tid" ev) with
        | Some (Jnum _), Some (Jnum _) -> ()
        | _ -> Alcotest.fail "X event missing pid/tid")
      | _ -> Alcotest.fail "event with unexpected ph")
    events;
  (* the span tree covers every pipeline layer of compile + simulate *)
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("span " ^ expected) true (List.mem expected !names))
    [
      "compile";
      "scanner";
      "parser";
      "attribute evaluation";
      "expression evaluation (cascade)";
      "VIF write";
      "elaborate";
      "codegen+link (elaboration)";
      "simulate";
      "simulation";
    ]

let test_metrics_json () =
  Tm.reset ();
  let src = read_corpus "golden_seed3_behavioral.vhd" in
  let c = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile c src);
  match parse_json (Tm.metrics_json ()) with
  | Jobj _ as m ->
    let counters =
      match field "counters" m with
      | Some (Jobj cs) -> cs
      | _ -> Alcotest.fail "no counters object"
    in
    let counter name =
      match List.assoc_opt name counters with
      | Some (Jnum v) -> int_of_float v
      | _ -> Alcotest.failf "counter %s missing from JSON" name
    in
    Alcotest.(check int) "json mirrors registry" (Tm.counter_value "lexer.tokens")
      (counter "lexer.tokens");
    Alcotest.(check bool) "histograms present" true (field "histograms" m <> None)
  | _ -> Alcotest.fail "metrics_json is not an object"

(* ------------------------------------------------------------------ *)
(* Golden metrics snapshot: a fixed corpus design must rack up exactly
   these front-end numbers.  Scanner, parser and cascade counts are pure
   functions of the source text; update the snapshot deliberately when
   the front end changes. *)

let test_golden_metrics () =
  Tm.reset ();
  Expr_eval.clear_memo ();
  let src = read_corpus "golden_seed3_behavioral.vhd" in
  let c = disk_compiler () in
  ignore (Vhdl_compiler.compile c src);
  let v = Tm.counter_value in
  Alcotest.(check int) "lexer.lines" 46 (v "lexer.lines");
  Alcotest.(check int) "lexer.tokens" 323 (v "lexer.tokens");
  Alcotest.(check int) "cascade.evaluations" 43 (v "cascade.evaluations");
  Alcotest.(check int) "cascade.lef_tokens" 179 (v "cascade.lef_tokens");
  (* every expression of the design is distinct (content + line), so a
     cold cache parses each exactly once and hits nothing *)
  Alcotest.(check int) "cascade.reparses" 43 (v "cascade.reparses");
  Alcotest.(check int) "cascade.memo_misses" 43 (v "cascade.memo_misses");
  Alcotest.(check int) "cascade.memo_hits" 0 (v "cascade.memo_hits");
  Alcotest.(check int) "supervisor.units_compiled" 2 (v "supervisor.units_compiled");
  Alcotest.(check int) "vif.writes" 2 (v "vif.writes");
  (* evaluator work is non-zero but its exact count is not part of the
     snapshot — it moves with every semantic-rule change *)
  Alcotest.(check bool) "ag.attrs_evaluated > 0" true (v "ag.attrs_evaluated" > 0);
  Alcotest.(check bool) "ag.memo_hits > 0" true (v "ag.memo_hits" > 0);
  Alcotest.(check bool) "ag.copy_elisions > 0" true (v "ag.copy_elisions" > 0);
  Alcotest.(check bool) "lalr.shifts > 0" true (v "lalr.shifts" > 0);
  Alcotest.(check bool) "lalr.reduces > 0" true (v "lalr.reduces" > 0);
  Alcotest.(check int) "no parse errors" 0 (v "lalr.errors");
  (* recompiling the same source parses no expression a second time: the
     evaluation count doubles, the reparse count does not move *)
  let c2 = disk_compiler () in
  ignore (Vhdl_compiler.compile c2 src);
  Alcotest.(check int) "cascade.evaluations after recompile" 86 (v "cascade.evaluations");
  Alcotest.(check int) "cascade.reparses after recompile" 43 (v "cascade.reparses");
  Alcotest.(check int) "cascade.memo_hits after recompile" 43 (v "cascade.memo_hits")

(* ------------------------------------------------------------------ *)
(* Overhead guard: with tracing off, the only cost the telemetry layer
   adds to a compile is its counter bumps.  Bound that cost from above —
   (instrument ops during a compile) x (measured cost per op) — and
   require it under 3% of the compile's own time. *)

let test_overhead_guard () =
  Tm.reset ();
  Alcotest.(check bool) "tracing off" false (Tm.tracing ());
  let src = read_corpus "golden_seed18_processes.vhd" in
  let start = Sys.time () in
  let reps = 3 in
  for _ = 1 to reps do
    let c = Vhdl_compiler.create () in
    ignore (Vhdl_compiler.compile c src)
  done;
  let compile_s = (Sys.time () -. start) /. float_of_int reps in
  (* counter values over-count the ops: every op is an incr (+1) or an add
     (+n, counted here as n ops).  Byte-valued phase.alloc_b ledger
     counters are excluded — a single add of megabytes is one op, not
     millions *)
  let ops =
    List.fold_left
      (fun acc (name, i) ->
        match i with
        | Tm.Counter c ->
          if String.length name >= 13 && String.sub name 0 13 = "phase.alloc_b"
          then acc + 1
          else acc + Tm.value c
        | Tm.Gauge _ -> acc
        | Tm.Histogram h -> acc + h.Tm.h_count)
      0 (Tm.instruments ())
    / reps
  in
  Alcotest.(check bool) "the compile did real work" true (ops > 1000);
  let scratch = Tm.counter "test.overhead_scratch" in
  let n = 5_000_000 in
  let t0 = Sys.time () in
  for _ = 1 to n do
    Tm.incr scratch
  done;
  let per_op = (Sys.time () -. t0) /. float_of_int n in
  let budget = 0.03 *. compile_s in
  let cost = per_op *. float_of_int ops in
  if cost >= budget then
    Alcotest.failf
      "telemetry overhead bound %.6fs (%d ops x %.1fns) exceeds 3%% of %.4fs compile"
      cost ops (per_op *. 1e9) compile_s

let suite =
  [
    Alcotest.test_case "counters and reset" `Quick test_counters;
    Alcotest.test_case "histogram percentiles" `Quick test_percentiles;
    Alcotest.test_case "counter snapshot/delta" `Quick test_snapshot_delta;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "null sink when tracing off" `Quick test_null_sink;
    Alcotest.test_case "chrome trace of compile+simulate" `Quick test_chrome_trace;
    Alcotest.test_case "metrics JSON mirrors registry" `Quick test_metrics_json;
    Alcotest.test_case "golden metrics snapshot" `Quick test_golden_metrics;
    Alcotest.test_case "overhead guard" `Quick test_overhead_guard;
  ]
