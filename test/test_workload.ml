(* The synthetic workload generators must produce valid VHDL across their
   parameter spaces: they stand in for the paper's customer models, so a
   generator emitting rejected code would silently skew every PERF-*
   experiment. *)

let compiles_cleanly srcs =
  let c = Vhdl_compiler.create () in
  match List.iter (fun s -> ignore (Vhdl_compiler.compile c s)) srcs with
  | () -> Option.fold ~none:true ~some:(fun _ -> false)
            (List.find_opt Diag.is_error (Vhdl_compiler.diagnostics c))
  | exception Vhdl_compiler.Compile_error _ -> false

let check name srcs =
  Alcotest.(check bool) name true (compiles_cleanly srcs)

let test_generators () =
  check "package n=1" [ Workload.package ~name:"W1" ~n:1 ];
  check "package n=50" [ Workload.package ~name:"W2" ~n:50 ];
  check "behavioral minimal" [ Workload.behavioral ~name:"W3" ~states:2 ~exprs:1 ];
  check "behavioral large" [ Workload.behavioral ~name:"W4" ~states:40 ~exprs:80 ];
  check "structural minimal" [ Workload.structural ~name:"W5" ~instances:1 ];
  check "structural large" [ Workload.structural ~name:"W6" ~instances:100 ];
  check "expression-heavy" [ Workload.expression_heavy ~n:60 ];
  check "multi-arch library" [ Workload.multi_arch_library ~archs:5 ]

let test_config_workloads () =
  let netlist, cfg = Workload.config_workload ~instances:5 () in
  check "per-label configuration" [ Workload.multi_arch_library ~archs:3; netlist; cfg ];
  let netlist, cfg = Workload.config_workload ~style:`All ~instances:5 () in
  check "for-all configuration" [ Workload.multi_arch_library ~archs:3; netlist; cfg ]

(* workloads must also elaborate and simulate *)
let test_workloads_simulate () =
  let c = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile c (Workload.structural ~name:"WS" ~instances:10));
  let sim = Vhdl_compiler.elaborate c ~top:"WS" () in
  let _ = Vhdl_compiler.run c sim ~max_ns:50 in
  Alcotest.(check bool) "netlist elaborates with all instances" true
    (List.length (Name_server.instances (Vhdl_compiler.name_server sim)) = 11);
  let c2 = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile c2 (Workload.behavioral ~name:"WB" ~states:5 ~exprs:10));
  let sim2 = Vhdl_compiler.elaborate c2 ~top:"WB" () in
  let outcome = Vhdl_compiler.run c2 sim2 ~max_ns:50 in
  Alcotest.(check bool) "behavioral runs" true
    (match outcome with
    | Kernel.Quiescent | Kernel.Time_limit -> true
    | Kernel.Stopped | Kernel.Fuel_exhausted -> false)

let generator_fuzz =
  QCheck.Test.make ~name:"generators are valid over random parameters" ~count:25
    QCheck.(triple (int_range 1 12) (int_range 1 20) (int_range 1 20))
    (fun (a, b, c) ->
      compiles_cleanly [ Workload.package ~name:"F1" ~n:a ]
      && compiles_cleanly [ Workload.behavioral ~name:"F2" ~states:(a + 1) ~exprs:b ]
      && compiles_cleanly [ Workload.structural ~name:"F3" ~instances:c ])

let suite =
  [
    Alcotest.test_case "generators compile cleanly" `Quick test_generators;
    Alcotest.test_case "configuration workloads compile" `Quick test_config_workloads;
    Alcotest.test_case "workloads elaborate and simulate" `Quick test_workloads_simulate;
    QCheck_alcotest.to_alcotest generator_fuzz;
  ]
