let () =
  Alcotest.run "vhdl_ag"
    [
      ("sexp", Test_sexp.suite);
      ("lexer", Test_lexer.suite);
      ("std", Test_std.suite);
      ("lalr", Test_lalr.suite);
      ("ag", Test_ag.suite);
      ("expr", Test_expr.suite);
      ("value_ops", Test_value_ops.suite);
      ("env", Test_env.suite);
      ("united", Test_united.suite);
      ("vif", Test_vif.suite);
      ("sim", Test_sim.suite);
      ("features", Test_features.suite);
      ("semantics", Test_semantics.suite);
      ("compiler", Test_compiler.suite);
      ("workload", Test_workload.suite);
      ("robustness", Test_robustness.suite);
      ("telemetry", Test_telemetry.suite);
      ("provenance", Test_provenance.suite);
      ("trace", Test_trace.suite);
      ("perf", Test_perf.suite);
      ("generated", Test_generated.suite);
      ("cascade", Test_cascade_memo.suite);
      ("difftest", Test_difftest.suite);
      ("serve", Test_serve.suite);
      ("servobs", Test_obs.suite);
      ("analyze", Test_analyze.suite);
      ("alloc", Test_alloc.suite);
    ]
