(* The differential fuzzing harness under test: a deterministic smoke
   campaign (the same fixed seeds [bin/vhdlfuzz --smoke] uses), a
   fault-injection check that the oracle really can see a flipped
   semantic rule and the shrinker really can minimize it, and a replay
   of the committed reproducer corpus. *)

let test_smoke_campaign () =
  let summary =
    Difftest.run_campaign ~seeds:Difftest.smoke_seeds ~size:2 ()
  in
  Alcotest.(check int) "100 designs" 100 summary.Difftest.total;
  Alcotest.(check int) "all compiled by both sides" 100 summary.Difftest.compiled;
  Alcotest.(check int) "no divergences" 0 summary.Difftest.divergences;
  Alcotest.(check int) "no crashes" 0 summary.Difftest.crashes;
  Alcotest.(check bool) "most designs simulate" true (summary.Difftest.simulated >= 90)

(* A design with an integer literal on a path the fault perturbs: the
   armed fault bumps integer literals in the staged compiler only, so
   the two sides must disagree — and the disagreement must shrink to a
   small reproducer that still disagrees. *)
let fault_design = Difftest_gen.generate ~seed:1 ~size:2

let test_fault_is_caught () =
  Alcotest.(check bool) "fault not armed outside the test" false
    (Difftest_fault.active ());
  let clean = Difftest_oracle.check fault_design in
  (match clean with
  | Difftest_oracle.Agree _ -> ()
  | v -> Alcotest.failf "expected agreement without fault: %s" (Difftest_oracle.describe v));
  let verdict = Difftest_oracle.check ~inject_fault:true fault_design in
  match verdict with
  | Difftest_oracle.Divergence _ -> ()
  | v -> Alcotest.failf "injected fault not caught: %s" (Difftest_oracle.describe v)

let test_fault_shrinks_small () =
  let verdict = Difftest_oracle.check ~inject_fault:true fault_design in
  (match verdict with
  | Difftest_oracle.Divergence _ -> ()
  | v -> Alcotest.failf "injected fault not caught: %s" (Difftest_oracle.describe v));
  let interesting src =
    Difftest_oracle.same_class verdict
      (Difftest_oracle.check_source ~inject_fault:true
         ~max_ns:fault_design.Difftest_gen.d_max_ns
         ~top:fault_design.Difftest_gen.d_top src)
  in
  let minimized, stats =
    Difftest_shrink.shrink ~interesting fault_design.Difftest_gen.d_source
  in
  Alcotest.(check bool) "shrunk below 40 lines" true (stats.Difftest_shrink.lines_after <= 40);
  Alcotest.(check bool) "actually smaller" true
    (stats.Difftest_shrink.lines_after < stats.Difftest_shrink.lines_before);
  Alcotest.(check bool) "minimized source still diverges" true (interesting minimized);
  (* and without the fault the minimized source is clean *)
  match
    Difftest_oracle.check_source ~max_ns:fault_design.Difftest_gen.d_max_ns
      ~top:fault_design.Difftest_gen.d_top minimized
  with
  | Difftest_oracle.Agree _ -> ()
  | v ->
    Alcotest.failf "minimized source not clean without fault: %s"
      (Difftest_oracle.describe v)

(* Golden corpus replay: every committed reproducer must recompile and
   agree under both evaluation strategies on every [dune runtest]. *)
let corpus_files () =
  (* [dune runtest] runs in test/; [dune exec test/test_main.exe] from the
     project root — accept either working directory *)
  let dir =
    if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".vhd")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      match Difftest.replay path with
      | Difftest_oracle.Agree _ -> ()
      | v -> Alcotest.failf "%s: %s" path (Difftest_oracle.describe v))
    files

(* Generation is a pure function of the seed: same seed, same design. *)
let test_generation_deterministic () =
  List.iter
    (fun seed ->
      let a = Difftest_gen.generate ~seed ~size:3 in
      let b = Difftest_gen.generate ~seed ~size:3 in
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproducible" seed)
        a.Difftest_gen.d_source b.Difftest_gen.d_source)
    [ 1; 17; 99 ]

let suite =
  [
    Alcotest.test_case "generation is deterministic" `Quick test_generation_deterministic;
    Alcotest.test_case "injected fault is caught" `Quick test_fault_is_caught;
    Alcotest.test_case "injected fault shrinks to <= 40 lines" `Quick
      test_fault_shrinks_small;
    Alcotest.test_case "corpus replays cleanly" `Quick test_corpus_replay;
    Alcotest.test_case "smoke campaign: 100 seeds, zero divergences" `Quick
      test_smoke_campaign;
  ]
