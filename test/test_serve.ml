(* The serve battery: protocol framing, admission-queue bounds, per-request
   deadlines becoming structured timeouts, watchdog wedge recovery, and an
   in-process daemon socket round-trip.  The live end-to-end paths (cram,
   tools/serve_smoke.sh, vhdlfuzz --serve-chaos) build on what is pinned
   here. *)

module P = Serve_protocol

(* ------------------------------------------------------------------ *)
(* Protocol framing *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match P.parse_frame (P.frame payload) with
      | `Frame (got, consumed) ->
        Alcotest.(check string) "payload survives" payload got;
        Alcotest.(check int) "consumed all" (P.header_bytes + String.length payload) consumed
      | _ -> Alcotest.fail "expected a complete frame")
    [ ""; "x"; "hello\nworld"; String.make 100_000 'q' ]

let test_frame_incremental () =
  let full = P.frame "abcdef" in
  (* every strict prefix is Incomplete, never an error or a short frame *)
  for n = 0 to String.length full - 1 do
    match P.parse_frame (String.sub full 0 n) with
    | `Incomplete need -> Alcotest.(check bool) "needs more" true (need > 0)
    | `Frame _ -> Alcotest.failf "frame complete at %d/%d bytes" n (String.length full)
    | `Error e -> Alcotest.failf "error at %d bytes: %s" n (P.frame_error_to_string e)
  done;
  (* trailing bytes beyond the frame are not consumed *)
  match P.parse_frame (full ^ "extra") with
  | `Frame (_, consumed) -> Alcotest.(check int) "consumed" (String.length full) consumed
  | _ -> Alcotest.fail "expected a frame"

let test_frame_rejections () =
  (match P.parse_frame "NOPE\x00\x00\x00\x01x" with
  | `Error P.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic undetected");
  (* bad magic is detectable from the first bytes, before a full header *)
  (match P.parse_frame "NO" with
  | `Error P.Bad_magic -> ()
  | _ -> Alcotest.fail "early bad magic undetected");
  match P.parse_frame ~max_frame:16 (P.frame (String.make 17 'x')) with
  | `Error (P.Oversized 17) -> ()
  | _ -> Alcotest.fail "oversized declaration undetected"

let test_request_roundtrip () =
  let rq =
    P.request P.Simulate ~deadline_s:2.5 ~fuel:400 ~top:"TB" ~max_ns:77
      ~poison:"entity:BAD" ~spin_ms:9 ~source:"entity e is end e;\n-- body\n"
  in
  match P.decode_request (P.encode_request rq) with
  | Error e -> Alcotest.fail e
  | Ok got ->
    Alcotest.(check bool) "verb" true (got.P.rq_verb = P.Simulate);
    Alcotest.(check (option (float 1e-9))) "deadline" (Some 2.5) got.P.rq_deadline_s;
    Alcotest.(check (option int)) "fuel" (Some 400) got.P.rq_fuel;
    Alcotest.(check (option string)) "top" (Some "TB") got.P.rq_top;
    Alcotest.(check int) "ns" 77 got.P.rq_max_ns;
    Alcotest.(check (option string)) "poison" (Some "entity:BAD") got.P.rq_poison;
    Alcotest.(check int) "spin" 9 got.P.rq_spin_ms;
    Alcotest.(check string) "source" rq.P.rq_source got.P.rq_source

let test_response_roundtrip () =
  let rs = P.response P.Overload ~retry_after_s:0.25 ~body:"queue full\n" in
  (match P.decode_response (P.encode_response rs) with
  | Ok got ->
    Alcotest.(check bool) "status" true (got.P.rs_status = P.Overload);
    Alcotest.(check (option (float 1e-9))) "retry" (Some 0.25) got.P.rs_retry_after_s;
    Alcotest.(check string) "body" "queue full\n" got.P.rs_body
  | Error e -> Alcotest.fail e);
  let rs = P.response P.Timeout ~wedged:true in
  match P.decode_response (P.encode_response rs) with
  | Ok got -> Alcotest.(check bool) "wedged survives" true got.P.rs_wedged
  | Error e -> Alcotest.fail e

let test_decode_rejects () =
  let bad payload =
    match P.decode_request payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" payload
  in
  bad "";
  bad "not-the-version compile\nbody";
  bad "vhdl-serve/1 frobnicate\n";
  bad "vhdl-serve/1 compile deadline=abc\n"

(* ------------------------------------------------------------------ *)
(* Admission queue *)

let test_queue_bounds () =
  let q = Serve_queue.create ~capacity:2 in
  Alcotest.(check bool) "first admitted" true (Serve_queue.admit q 1 = Serve_queue.Admitted);
  Alcotest.(check bool) "second admitted" true (Serve_queue.admit q 2 = Serve_queue.Admitted);
  (match Serve_queue.admit q 3 with
  | Serve_queue.Shed { retry_after_s } ->
    Alcotest.(check bool) "positive retry hint" true (retry_after_s > 0.0)
  | Serve_queue.Admitted -> Alcotest.fail "third request must shed");
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Serve_queue.pop q);
  Alcotest.(check bool) "room again" true (Serve_queue.admit q 3 = Serve_queue.Admitted);
  Alcotest.(check (list int)) "drain in arrival order" [ 2; 3 ] (Serve_queue.drain q);
  Alcotest.(check int) "empty after drain" 0 (Serve_queue.length q)

let test_queue_retry_hint_tracks_service_time () =
  let q = Serve_queue.create ~capacity:8 in
  ignore (Serve_queue.admit q ());
  let before = Serve_queue.retry_after_s q in
  (* a run of slow requests must raise the hint *)
  for _ = 1 to 20 do
    Serve_queue.note_service_time q 1.0
  done;
  let after = Serve_queue.retry_after_s q in
  Alcotest.(check bool)
    (Printf.sprintf "hint grows with service time (%.3f -> %.3f)" before after)
    true (after > before)

(* EWMA edge cases: the hint before any measurement, after exactly one,
   and across a drain (which starts a new service epoch) *)

let test_queue_retry_hint_edges () =
  let q = Serve_queue.create ~capacity:4 in
  (* no completed request yet: the default service estimate, x backlog *)
  Alcotest.(check (float 1e-9)) "no samples, empty queue" 0.05
    (Serve_queue.retry_after_s q);
  ignore (Serve_queue.admit q ());
  Alcotest.(check (float 1e-9)) "no samples, one queued" 0.10
    (Serve_queue.retry_after_s q);
  ignore (Serve_queue.pop q);
  (* a single sample moves the EWMA one alpha step toward it *)
  Serve_queue.note_service_time q 1.0;
  Alcotest.(check (float 1e-9)) "single sample"
    ((0.8 *. 0.05) +. (0.2 *. 1.0))
    (Serve_queue.retry_after_s q);
  (* clock hiccups (negative elapsed) must not poison the average *)
  Serve_queue.note_service_time q (-5.0);
  Alcotest.(check (float 1e-9)) "negative sample ignored"
    ((0.8 *. 0.05) +. (0.2 *. 1.0))
    (Serve_queue.retry_after_s q)

let test_queue_drain_resets_ewma () =
  let q = Serve_queue.create ~capacity:4 in
  for _ = 1 to 50 do
    Serve_queue.note_service_time q 2.0
  done;
  Alcotest.(check bool) "hint reflects the slow regime" true
    (Serve_queue.retry_after_s q > 1.0);
  ignore (Serve_queue.drain q);
  Alcotest.(check (float 1e-9)) "drain starts a fresh epoch" 0.05
    (Serve_queue.retry_after_s q)

(* ------------------------------------------------------------------ *)
(* Worker: deadlines, firewall, watchdog *)

let worker_cfg =
  {
    Serve_worker.default_config with
    Serve_worker.w_allow_faults = true;
    w_watchdog_grace_s = 0.2;
  }

let test_worker_healthy () =
  let w = Serve_worker.create worker_cfg in
  let r = Serve_worker.handle w (P.request P.Compile ~source:"entity ok is end ok;\n") in
  Alcotest.(check bool) "ok status" true (r.P.rs_status = P.Ok_);
  Alcotest.(check bool) "names the unit" true
    (Astring_contains.contains r.P.rs_body "entity:OK")

let test_worker_fuel_timeout () =
  let w = Serve_worker.create worker_cfg in
  let r =
    Serve_worker.handle w
      (P.request P.Compile ~fuel:40 ~source:(Workload.expression_heavy ~n:40))
  in
  Alcotest.(check bool) "timeout status" true (r.P.rs_status = P.Timeout);
  Alcotest.(check bool) "budget diagnostic in body" true
    (Astring_contains.contains r.P.rs_body "fuel exhausted")

let test_worker_deadline_timeout () =
  let w = Serve_worker.create worker_cfg in
  (* a deadline no 300-constant cascade compile can meet: the evaluator's
     tick hook trips Supervisor.Deadline, which must arrive as a timeout *)
  let r =
    Serve_worker.handle w
      (P.request P.Compile ~deadline_s:0.001 ~source:(Workload.expression_heavy ~n:300))
  in
  Alcotest.(check bool) "timeout status" true (r.P.rs_status = P.Timeout);
  Alcotest.(check bool) "deadline diagnostic in body" true
    (Astring_contains.contains r.P.rs_body "deadline")

let test_worker_poison_contained () =
  let w = Serve_worker.create worker_cfg in
  let r =
    Serve_worker.handle w
      (P.request P.Compile ~poison:"entity:BAD"
         ~source:"entity bad is end bad;\nentity fine is end fine;\n")
  in
  Alcotest.(check bool) "internal status" true (r.P.rs_status = P.Internal);
  Alcotest.(check bool) "sibling still compiled" true
    (Astring_contains.contains r.P.rs_body "entity:FINE");
  (* the worker survives: the next request is healthy *)
  let r2 = Serve_worker.handle w (P.request P.Compile ~source:"entity n2 is end n2;\n") in
  Alcotest.(check bool) "worker keeps serving" true (r2.P.rs_status = P.Ok_)

let test_worker_faults_gated () =
  let w = Serve_worker.create { worker_cfg with Serve_worker.w_allow_faults = false } in
  let r =
    Serve_worker.handle w
      (P.request P.Compile ~poison:"entity:X" ~source:"entity x is end x;\n")
  in
  Alcotest.(check bool) "poison rejected without --allow-faults" true
    (r.P.rs_status = P.Bad_request)

let test_watchdog_recycles_wedged_worker () =
  let w = Serve_worker.create worker_cfg in
  let gen0 = Serve_worker.generation w in
  (* spins far past deadline+grace: only the watchdog can end it *)
  let t0 = Vhdl_util.Unix_compat.now () in
  let r =
    Serve_worker.handle w
      (P.request P.Compile ~deadline_s:0.05 ~spin_ms:5_000 ~source:"entity w is end w;\n")
  in
  let elapsed = Vhdl_util.Unix_compat.now () -. t0 in
  Alcotest.(check bool) "timeout status" true (r.P.rs_status = P.Timeout);
  Alcotest.(check bool) "marked wedged" true r.P.rs_wedged;
  Alcotest.(check bool)
    (Printf.sprintf "broken promptly (%.2fs), not after the 5s spin" elapsed)
    true (elapsed < 2.0);
  Alcotest.(check bool) "worker recycled" true (Serve_worker.generation w > gen0);
  let r2 = Serve_worker.handle w (P.request P.Ping) in
  Alcotest.(check bool) "worker answers after recycle" true (r2.P.rs_status = P.Ok_)

let test_watchdog_disarms () =
  (* after a protected region completes in time, no stray alarm may fire *)
  let v = Serve_worker.with_watchdog ~seconds:0.05 (fun () -> 41 + 1) in
  Alcotest.(check int) "value through" 42 v;
  ignore (Unix.select [] [] [] 0.12)

(* ------------------------------------------------------------------ *)
(* Daemon: in-process socket round-trip driven by explicit ticks *)

let temp_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "vhdl-serve-test-%d-%d.sock" (Unix.getpid ()) (Random.int 100000))

let with_daemon ?(queue = 4) ?(cfg = fun c -> c) f =
  let socket = temp_socket () in
  let d =
    Serve_daemon.create
      (cfg
         {
           Serve_daemon.default_config with
           Serve_daemon.d_socket = socket;
           d_queue_capacity = queue;
           d_idle_timeout_s = 0.2;
           d_worker = worker_cfg;
         })
  in
  Fun.protect ~finally:(fun () -> Serve_daemon.shutdown d) (fun () -> f socket d)

(* single-threaded client: send the whole frame first, tick the daemon so
   it processes and responds into the socket buffer, then read *)
let tick_roundtrip socket d rq =
  match Serve_client.connect socket with
  | Error e -> Alcotest.fail e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (match Serve_client.send_all fd (P.frame (P.encode_request rq)) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        for _ = 1 to 3 do
          Serve_daemon.tick ~timeout_s:0.01 d
        done;
        match Serve_client.recv_response ~timeout_s:5.0 fd with
        | Ok r -> r
        | Error e -> Alcotest.fail e)

let test_daemon_socket_roundtrip () =
  with_daemon (fun socket d ->
      let r = tick_roundtrip socket d (P.request P.Compile ~source:"entity d is end d;\n") in
      Alcotest.(check bool) "ok" true (r.P.rs_status = P.Ok_);
      Alcotest.(check bool) "compiled key in body" true
        (Astring_contains.contains r.P.rs_body "entity:D");
      (* the warm library persists across requests: simulate what the
         previous request compiled *)
      let r2 = tick_roundtrip socket d (P.request P.Ping) in
      Alcotest.(check bool) "ping ok" true (r2.P.rs_status = P.Ok_))

let test_daemon_sheds_when_full () =
  with_daemon ~queue:1 (fun socket d ->
      (* two clients send before any tick: one admitted, one shed *)
      let open_and_send () =
        match Serve_client.connect socket with
        | Error e -> Alcotest.fail e
        | Ok fd ->
          (match
             Serve_client.send_all fd
               (P.frame (P.encode_request (P.request P.Compile ~source:"entity q is end q;\n")))
           with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          fd
      in
      let fd1 = open_and_send () in
      let fd2 = open_and_send () in
      for _ = 1 to 4 do
        Serve_daemon.tick ~timeout_s:0.01 d
      done;
      let read fd =
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match Serve_client.recv_response ~timeout_s:5.0 fd with
            | Ok r -> r.P.rs_status
            | Error e -> Alcotest.fail e)
      in
      let statuses = List.sort compare [ read fd1; read fd2 ] |> List.map P.status_name in
      Alcotest.(check (list string)) "one served, one shed" [ "ok"; "overload" ]
        (List.sort compare statuses))

let test_daemon_rejects_torn_frame () =
  with_daemon (fun socket d ->
      match Serve_client.connect socket with
      | Error e -> Alcotest.fail e
      | Ok fd ->
        let full = P.frame (String.make 64 'x') in
        (match Serve_client.send_all fd (String.sub full 0 (P.header_bytes + 5)) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (* one tick to accept, one to ingest the partial; past the idle
           timeout the next tick must reject it as torn *)
        Serve_daemon.tick ~timeout_s:0.01 d;
        Serve_daemon.tick ~timeout_s:0.01 d;
        ignore (Unix.select [] [] [] 0.25);
        for _ = 1 to 3 do
          Serve_daemon.tick ~timeout_s:0.01 d
        done;
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match Serve_client.recv_response ~timeout_s:5.0 fd with
            | Ok r ->
              Alcotest.(check bool) "bad-request" true (r.P.rs_status = P.Bad_request);
              Alcotest.(check bool) "torn named" true
                (Astring_contains.contains r.P.rs_body "torn")
            | Error e -> Alcotest.fail e))

(* ------------------------------------------------------------------ *)
(* Daemon observability: request ids, the event log, flight dumps, the
   periodic metrics flush *)

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vhdl-serve-obs-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  Vhdl_util.Unix_compat.mkdir_p d;
  d

let rm_rf dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let test_daemon_rids_echoed_and_logged () =
  let dir = temp_dir () in
  let events = Filename.concat dir "events.jsonl" in
  with_daemon
    ~cfg:(fun c ->
      {
        c with
        Serve_daemon.d_obs =
          {
            Obs_log.default_config with
            Obs_log.o_events_out = Some events;
            o_ring_events = 64;
            o_ring_requests = 8;
            o_flight_dir = dir;
          };
      })
    (fun socket d ->
      let r1 = tick_roundtrip socket d (P.request P.Ping) in
      let r2 = tick_roundtrip socket d (P.request P.Compile ~source:"entity r is end r;\n") in
      (* the response header carries the daemon's request id, monotone *)
      match (r1.P.rs_request_id, r2.P.rs_request_id) with
      | Some a, Some b ->
        Alcotest.(check bool) (Printf.sprintf "rids monotone (%d < %d)" a b) true (a < b);
        Serve_daemon.shutdown d;
        (* the log tells the same story, and the grammar holds *)
        (match Obs_event.read_log events with
        | Error msg -> Alcotest.fail msg
        | Ok (log, _) ->
          Alcotest.(check (list string)) "event grammar holds" [] (Obs_event.check_log log);
          let finish_rids =
            List.filter_map
              (fun (e : Obs_event.t) ->
                if e.Obs_event.e_kind = Obs_event.Finish then e.Obs_event.e_rid else None)
              log
          in
          Alcotest.(check bool) "both requests finished in the log" true
            (List.mem a finish_rids && List.mem b finish_rids));
        rm_rf dir
      | _ -> Alcotest.fail "responses carry no request id")

let test_daemon_firewall_trip_dumps_flight () =
  let dir = temp_dir () in
  with_daemon
    ~cfg:(fun c ->
      {
        c with
        Serve_daemon.d_obs =
          { Obs_log.default_config with Obs_log.o_flight_dir = dir };
      })
    (fun socket d ->
      let r =
        tick_roundtrip socket d
          (P.request P.Compile ~poison:"entity:BAD" ~source:"entity bad is end bad;\n")
      in
      Alcotest.(check bool) "poison answered internal" true (r.P.rs_status = P.Internal);
      let rid = Option.get r.P.rs_request_id in
      let dumps =
        List.filter
          (fun f -> Astring_contains.contains f "firewall")
          (Array.to_list (Sys.readdir dir))
      in
      Alcotest.(check int) "one firewall dump" 1 (List.length dumps);
      Alcotest.(check bool) "dump named after the offending rid" true
        (Astring_contains.contains (List.hd dumps) (Printf.sprintf "-rid%d-" rid));
      rm_rf dir)

let test_daemon_periodic_metrics_flush () =
  let dir = temp_dir () in
  let metrics = Filename.concat dir "metrics.json" in
  with_daemon
    ~cfg:(fun c ->
      {
        c with
        Serve_daemon.d_metrics_out = Some metrics;
        d_metrics_flush_ticks = 2;
        d_obs = { Obs_log.default_config with Obs_log.o_flight_dir = dir };
      })
    (fun _socket d ->
      Alcotest.(check bool) "nothing flushed yet" false (Sys.file_exists metrics);
      for _ = 1 to 3 do
        Serve_daemon.tick ~timeout_s:0.01 d
      done;
      Alcotest.(check bool) "flushed while running (not just at drain)" true
        (Sys.file_exists metrics);
      (* the atomic rename leaves no half-written temp file behind *)
      Alcotest.(check bool) "no lingering temp file" false
        (Sys.file_exists (metrics ^ ".tmp"));
      Alcotest.(check bool) "flushed document parses" true
        (match Vhdl_perf.Perf.Json_in.parse (Vhdl_util.Unix_compat.read_file metrics) with
        | Ok _ -> true
        | Error _ -> false);
      rm_rf dir)

let suite =
  [
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "incremental parse never tears" `Quick test_frame_incremental;
    Alcotest.test_case "bad magic / oversized rejected" `Quick test_frame_rejections;
    Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "malformed payloads rejected" `Quick test_decode_rejects;
    Alcotest.test_case "queue bounds and shedding" `Quick test_queue_bounds;
    Alcotest.test_case "retry hint tracks service time" `Quick
      test_queue_retry_hint_tracks_service_time;
    Alcotest.test_case "retry hint edges: no samples, one sample" `Quick
      test_queue_retry_hint_edges;
    Alcotest.test_case "drain resets the service EWMA" `Quick
      test_queue_drain_resets_ewma;
    Alcotest.test_case "worker: healthy compile" `Quick test_worker_healthy;
    Alcotest.test_case "worker: fuel budget becomes timeout" `Quick
      test_worker_fuel_timeout;
    Alcotest.test_case "worker: deadline becomes timeout" `Quick
      test_worker_deadline_timeout;
    Alcotest.test_case "worker: poison contained, worker survives" `Quick
      test_worker_poison_contained;
    Alcotest.test_case "worker: fault fields gated" `Quick test_worker_faults_gated;
    Alcotest.test_case "watchdog breaks and recycles a wedged worker" `Quick
      test_watchdog_recycles_wedged_worker;
    Alcotest.test_case "watchdog disarms cleanly" `Quick test_watchdog_disarms;
    Alcotest.test_case "daemon: socket round-trip" `Quick test_daemon_socket_roundtrip;
    Alcotest.test_case "daemon: sheds when the queue is full" `Quick
      test_daemon_sheds_when_full;
    Alcotest.test_case "daemon: torn frame rejected" `Quick
      test_daemon_rejects_torn_frame;
    Alcotest.test_case "daemon: rids echoed, event grammar holds" `Quick
      test_daemon_rids_echoed_and_logged;
    Alcotest.test_case "daemon: firewall trip leaves a flight dump" `Quick
      test_daemon_firewall_trip_dumps_flight;
    Alcotest.test_case "daemon: periodic metrics flush is atomic" `Quick
      test_daemon_periodic_metrics_flush;
  ]
