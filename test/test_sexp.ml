(* S-expression round-trips and decoding: the concrete syntax of the VIF. *)

module Sexp = Vhdl_util.Sexp

let check_roundtrip name sexp =
  Alcotest.test_case name `Quick (fun () ->
      let s = Sexp.to_string sexp in
      let back = Sexp.of_string s in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %s" s) true (back = sexp))

let atom_roundtrip =
  let gen =
    QCheck.string_gen_of_size (QCheck.Gen.int_range 0 40) QCheck.Gen.printable
  in
  QCheck.Test.make ~name:"atom roundtrip (arbitrary strings)" ~count:500 gen (fun s ->
      Sexp.of_string (Sexp.to_string (Sexp.Atom s)) = Sexp.Atom s)

let nested_roundtrip =
  let rec gen_sexp depth =
    let open QCheck.Gen in
    if depth = 0 then map (fun s -> Sexp.Atom s) (string_size ~gen:printable (int_range 0 8))
    else
      frequency
        [
          (2, map (fun s -> Sexp.Atom s) (string_size ~gen:printable (int_range 0 8)));
          (1, map (fun l -> Sexp.List l) (list_size (int_range 0 5) (gen_sexp (depth - 1))));
        ]
  in
  QCheck.Test.make
    ~name:"nested roundtrip"
    ~count:300
    (QCheck.make (gen_sexp 4))
    (fun sexp -> Sexp.of_string (Sexp.to_string sexp) = sexp)

let suite =
  [
    check_roundtrip "atom" (Sexp.Atom "hello");
    check_roundtrip "empty list" (Sexp.List []);
    check_roundtrip "atom with spaces" (Sexp.Atom "two words");
    check_roundtrip "atom with quotes" (Sexp.Atom {|she said "hi"|});
    check_roundtrip "atom with newline" (Sexp.Atom "a\nb");
    check_roundtrip "empty atom" (Sexp.Atom "");
    check_roundtrip "nested"
      Sexp.(List [ Atom "a"; List [ Atom "b"; Atom "c" ]; List []; Atom "d" ]);
    Alcotest.test_case "comments skipped" `Quick (fun () ->
        let s = "; header\n(a ; trailing\n b)" in
        Alcotest.(check bool) "parsed" true (Sexp.of_string s = Sexp.(List [ Atom "a"; Atom "b" ])));
    Alcotest.test_case "of_string_many" `Quick (fun () ->
        let l = Sexp.of_string_many "(a) b (c d)" in
        Alcotest.(check int) "three" 3 (List.length l));
    Alcotest.test_case "parse error on unbalanced" `Quick (fun () ->
        Alcotest.check_raises "unterminated"
          (Sexp.Parse_error { pos = 2; msg = "unterminated list" })
          (fun () -> ignore (Sexp.of_string "(a")));
    Alcotest.test_case "record fields" `Quick (fun () ->
        let r = Sexp.record "thing" [ ("x", Sexp.int 3); ("y", Sexp.bool true) ] in
        let tag, fields = Sexp.untag r in
        Alcotest.(check string) "tag" "thing" tag;
        Alcotest.(check int) "x" 3 (Sexp.to_int (Sexp.field "x" fields));
        Alcotest.(check bool) "y" true (Sexp.to_bool (Sexp.field "y" fields));
        Alcotest.(check bool) "missing" true (Sexp.field_opt "z" fields = None));
    Alcotest.test_case "indented printer reparses" `Quick (fun () ->
        let sexp =
          Sexp.(List [ Atom "entity"; List [ Atom "name"; Atom "adder" ]; List [ Atom "ports"; List [ Atom "a"; Atom "b" ] ] ])
        in
        Alcotest.(check bool) "same" true (Sexp.of_string (Sexp.to_string_indented sexp) = sexp));
    QCheck_alcotest.to_alcotest atom_roundtrip;
    QCheck_alcotest.to_alcotest nested_roundtrip;
  ]
