(* Runtime support (Value_ops): the predefined VHDL operations.

   The laws checked here are the LRM's algebraic definitions — sign rules
   for [mod]/[rem], lexicographic array comparison, functional-update
   framing — exercised with qcheck over random operands. *)

let vint n = Value.Vint n

let arr_to l elems =
  Value.Varray
    { bounds = (l, Value.To, l + Array.length elems - 1); elems = Array.map vint elems }

let bitv bits =
  Value.Varray
    {
      bounds = (0, Value.To, Array.length bits - 1);
      elems = Array.map (fun b -> Value.Venum (if b then 1 else 0)) bits;
    }

let nonzero = QCheck.(map (fun n -> if n = 0 then 7 else n) (int_range (-1000) 1000))
let small_int = QCheck.int_range (-1000) 1000

(* --------------------------------------------------------------- *)
(* mod / rem: LRM 7.2.4.  (a/b)*b + (a rem b) = a and rem has the sign
   of the dividend; mod has the sign of the divisor and differs from rem
   by a multiple of b. *)

let prop_rem_identity =
  QCheck.Test.make ~name:"(a/b)*b + (a rem b) = a" ~count:500
    QCheck.(pair small_int nonzero)
    (fun (a, b) -> (a / b * b) + Value_ops.vhdl_rem a b = a)

let prop_rem_sign =
  QCheck.Test.make ~name:"a rem b has the sign of a" ~count:500
    QCheck.(pair small_int nonzero)
    (fun (a, b) ->
      let r = Value_ops.vhdl_rem a b in
      r = 0 || (r < 0) = (a < 0))

let prop_mod_sign_and_bound =
  QCheck.Test.make ~name:"a mod b has the sign of b and |a mod b| < |b|" ~count:500
    QCheck.(pair small_int nonzero)
    (fun (a, b) ->
      let m = Value_ops.vhdl_mod a b in
      abs m < abs b && (m = 0 || (m < 0) = (b < 0)))

let prop_mod_rem_congruent =
  QCheck.Test.make ~name:"a mod b differs from a rem b by a multiple of b" ~count:500
    QCheck.(pair small_int nonzero)
    (fun (a, b) -> (Value_ops.vhdl_mod a b - Value_ops.vhdl_rem a b) mod b = 0)

(* --------------------------------------------------------------- *)
(* integer ** by squaring agrees with naive repeated multiplication *)

let prop_int_pow =
  QCheck.Test.make ~name:"x ** n = naive product" ~count:300
    QCheck.(pair (int_range (-9) 9) (int_range 0 9))
    (fun (base, exp) ->
      let naive = List.fold_left (fun acc _ -> acc * base) 1 (List.init exp Fun.id) in
      Value_ops.binop Kir.Bexp (vint base) (vint exp) = vint naive)

(* --------------------------------------------------------------- *)
(* concatenation: length adds up, elements in order, left bound kept *)

let int_array_gen =
  QCheck.(array_of_size Gen.(int_range 0 12) small_int)

let prop_concat =
  QCheck.Test.make ~name:"concat preserves length and element order" ~count:300
    QCheck.(pair int_array_gen int_array_gen)
    (fun (xs, ys) ->
      match Value_ops.concat (arr_to 0 xs) (arr_to 5 ys) with
      | Value.Varray { elems; _ } ->
        Array.length elems = Array.length xs + Array.length ys
        && Array.to_list elems = List.map vint (Array.to_list xs @ Array.to_list ys)
      | _ -> false)

(* --------------------------------------------------------------- *)
(* lexicographic array comparison (LRM 7.2.2): a < b iff not (a >= b),
   checked against OCaml's structural compare on the element lists *)

let prop_array_compare =
  QCheck.Test.make ~name:"array < matches lexicographic order" ~count:300
    QCheck.(pair int_array_gen int_array_gen)
    (fun (xs, ys) ->
      let lt = Value_ops.binop Kir.Blt (arr_to 0 xs) (arr_to 0 ys) in
      let expected = compare (Array.to_list xs) (Array.to_list ys) < 0 in
      lt = Value.Venum (if expected then 1 else 0))

(* --------------------------------------------------------------- *)
(* De Morgan on bit vectors, through the same binop/unop dispatch the
   kernel uses *)

let bitv_gen = QCheck.(array_of_size Gen.(int_range 1 16) bool)

let prop_de_morgan =
  QCheck.Test.make ~name:"not (a and b) = (not a) or (not b) on bit vectors"
    ~count:300 bitv_gen (fun bits ->
      let a = bitv bits in
      let b = bitv (Array.map not bits) in
      Value_ops.unop Kir.Unot (Value_ops.binop Kir.Band a b)
      = Value_ops.binop Kir.Bor (Value_ops.unop Kir.Unot a) (Value_ops.unop Kir.Unot b))

(* --------------------------------------------------------------- *)
(* functional updates: the written slot changes, every other slot is
   untouched, and the original value is not mutated *)

let prop_update_index =
  QCheck.Test.make ~name:"update_index frames correctly" ~count:300
    QCheck.(triple (array_of_size Gen.(int_range 1 12) small_int) small_int small_int)
    (fun (xs, iseed, e) ->
      let n = Array.length xs in
      let i = (abs iseed mod n) + 3 in
      let v = arr_to 3 xs in
      let v' = Value_ops.update_index v i (vint e) in
      Value_ops.index v' i = vint e
      && List.for_all
           (fun j -> j = i || Value_ops.index v' j = Value_ops.index v j)
           (List.init n (fun k -> k + 3))
      && v = arr_to 3 xs)

let prop_update_slice_roundtrip =
  QCheck.Test.make ~name:"slice of update_slice returns the written value" ~count:300
    QCheck.(pair (array_of_size Gen.(int_range 2 12) small_int) small_int)
    (fun (xs, seed) ->
      let n = Array.length xs in
      let lo = abs seed mod n and hi = n - 1 in
      let rhs = arr_to lo (Array.init (hi - lo + 1) (fun k -> k * 2 + 1)) in
      let v' = Value_ops.update_slice (arr_to 0 xs) (lo, Value.To, hi) rhs in
      match Value_ops.slice v' (lo, Value.To, hi) with
      | Value.Varray { elems; _ } ->
        Array.to_list elems = List.init (hi - lo + 1) (fun k -> vint (k * 2 + 1))
      | _ -> false)

(* --------------------------------------------------------------- *)
(* The same laws over the fuzzer's own value generators
   (Difftest_gen), so the property tests and the differential oracle
   exercise Value_ops through one value distribution.  A QCheck
   generator is [Random.State.t -> 'a], which the Difftest_gen
   functions satisfy directly. *)

let show_value v = Format.asprintf "%a" Value.pp v

let gen_int_array =
  QCheck.make ~print:show_value (fun st -> Difftest_gen.int_array st)

let gen_bit_vector =
  QCheck.make ~print:show_value (fun st -> Difftest_gen.bit_vector st)

let gen_scalar_int =
  QCheck.make ~print:show_value (fun st ->
      vint (Random.State.int st 2001 - 1000))

let prop_add_negate_roundtrip =
  QCheck.Test.make ~name:"(a + b) - b = a and -(-a) = a (fuzzer values)" ~count:500
    QCheck.(pair gen_scalar_int gen_scalar_int)
    (fun (a, b) ->
      Value_ops.binop Kir.Bsub (Value_ops.binop Kir.Badd a b) b = a
      && Value_ops.unop Kir.Uneg (Value_ops.unop Kir.Uneg a) = a)

let array_len = function
  | Value.Varray { elems; _ } -> Array.length elems
  | _ -> -1

let left_bound = function
  | Value.Varray { bounds = l, _, _; _ } -> l
  | _ -> min_int

let prop_concat_length =
  QCheck.Test.make ~name:"concat length adds up (fuzzer arrays)" ~count:300
    QCheck.(pair gen_int_array gen_int_array)
    (fun (a, b) ->
      let c = Value_ops.concat a b in
      array_len c = array_len a + array_len b
      && left_bound c = left_bound a)

(* trim/pad an array to exactly [n] elements, keeping its left bound *)
let resize_to n = function
  | Value.Varray { bounds = l, dir, _; elems } ->
    let take i = if i < Array.length elems then elems.(i) else vint i in
    Value.Varray { bounds = (l, dir, l + n - 1); elems = Array.init n take }
  | v -> v

let prop_compare_total =
  QCheck.Test.make
    ~name:"exactly one of < = > holds on equal-length arrays (fuzzer values)"
    ~count:300
    QCheck.(pair gen_int_array gen_int_array)
    (fun (a, b) ->
      let n = max 1 (min (array_len a) (array_len b)) in
      let a = resize_to n a and b = resize_to n b in
      let holds op = Value_ops.binop op a b = Value.Venum 1 in
      let count =
        List.length (List.filter holds [ Kir.Blt; Kir.Beq; Kir.Bgt ])
      in
      count = 1)

let prop_bitv_not_involutive =
  QCheck.Test.make ~name:"not (not v) = v on fuzzer bit vectors" ~count:300
    gen_bit_vector
    (fun v -> Value_ops.unop Kir.Unot (Value_ops.unop Kir.Unot v) = v)

(* --------------------------------------------------------------- *)
(* unit tests for the error paths and record updates *)

let test_division_errors () =
  let must_fail f =
    match f () with
    | exception Value_ops.Runtime_error _ -> ()
    | _ -> Alcotest.fail "expected Runtime_error"
  in
  must_fail (fun () -> Value_ops.vhdl_mod 5 0);
  must_fail (fun () -> Value_ops.vhdl_rem 5 0);
  must_fail (fun () -> Value_ops.binop Kir.Bdiv (vint 1) (vint 0));
  must_fail (fun () -> Value_ops.binop Kir.Bexp (vint 2) (vint (-1)))

let test_record_update () =
  let r = Value.Vrecord [ ("X", vint 1); ("Y", vint 2) ] in
  let r' = Value_ops.update_field r "Y" (vint 9) in
  Alcotest.(check bool) "updated" true (Value_ops.field r' "Y" = vint 9);
  Alcotest.(check bool) "framed" true (Value_ops.field r' "X" = vint 1);
  Alcotest.(check bool) "original intact" true (Value_ops.field r "Y" = vint 2);
  match Value_ops.update_field r "Z" (vint 0) with
  | exception Value_ops.Runtime_error _ -> ()
  | _ -> Alcotest.fail "update of a missing field must fail"

let test_downto_slice () =
  (* v(6 downto 4) of an ascending array: picks indices 6,5,4 *)
  let v = arr_to 3 [| 30; 40; 50; 60; 70 |] in
  match Value_ops.slice v (6, Value.Downto, 4) with
  | Value.Varray { bounds; elems } ->
    Alcotest.(check bool) "bounds" true (bounds = (6, Value.Downto, 4));
    Alcotest.(check bool) "elems" true (Array.to_list elems = [ vint 60; vint 50; vint 40 ])
  | _ -> Alcotest.fail "slice did not return an array"

let test_mixed_equality () =
  Alcotest.(check bool) "5.0 = 5.0" true
    (Value_ops.binop Kir.Beq (Value.Vfloat 5.0) (Value.Vfloat 5.0) = Value.Venum 1);
  Alcotest.(check bool) "arrays of different length are /=" true
    (Value_ops.binop Kir.Bneq (arr_to 0 [| 1 |]) (arr_to 0 [| 1; 2 |]) = Value.Venum 1)

let suite =
  [
    Alcotest.test_case "mod/rem by zero and negative ** raise" `Quick test_division_errors;
    Alcotest.test_case "record functional update" `Quick test_record_update;
    Alcotest.test_case "downto slice of an ascending array" `Quick test_downto_slice;
    Alcotest.test_case "equality across shapes" `Quick test_mixed_equality;
    QCheck_alcotest.to_alcotest prop_rem_identity;
    QCheck_alcotest.to_alcotest prop_rem_sign;
    QCheck_alcotest.to_alcotest prop_mod_sign_and_bound;
    QCheck_alcotest.to_alcotest prop_mod_rem_congruent;
    QCheck_alcotest.to_alcotest prop_int_pow;
    QCheck_alcotest.to_alcotest prop_concat;
    QCheck_alcotest.to_alcotest prop_array_compare;
    QCheck_alcotest.to_alcotest prop_de_morgan;
    QCheck_alcotest.to_alcotest prop_update_index;
    QCheck_alcotest.to_alcotest prop_update_slice_roundtrip;
    QCheck_alcotest.to_alcotest prop_add_negate_roundtrip;
    QCheck_alcotest.to_alcotest prop_concat_length;
    QCheck_alcotest.to_alcotest prop_compare_total;
    QCheck_alcotest.to_alcotest prop_bitv_not_involutive;
  ]
