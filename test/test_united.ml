(* ABL-CASCADE correctness: the united-productions path and the cascaded
   AGs must agree on every expression — type, static value, and
   diagnostics-or-not.  Includes a random expression generator. *)

let arr_ty =
  Types.subtype
    {
      Types.base = "WORK.B.ARR";
      kind = Types.Karray { index = Std.integer; elem = Std.integer };
      constr = None;
    }
    ~constr:(Types.Crange (0, Types.To, 63))

let fsig =
  {
    Denot.ss_name = "F";
    ss_mangled = "WORK.B:F/INTEGER";
    ss_kind = `Function;
    ss_params =
      [
        {
          Denot.p_name = "X";
          p_mode = Kir.Arg_in;
          p_class = Denot.Cconstant;
          p_ty = Std.integer;
          p_default = None;
        };
      ];
    ss_ret = Some Std.integer;
    ss_builtin = false;
  }

let env =
  Env.extend_many (Std.env ())
    [
      ( "V",
        Denot.Dobject
          {
            name = "V";
            cls = Denot.Cvariable;
            ty = arr_ty;
            mode = None;
            slot = Denot.Sl_frame { level = 0; index = 0 };
          } );
      ("F", Denot.Dsubprog fsig);
      ( "N",
        Denot.Dobject
          {
            name = "N";
            cls = Denot.Cconstant;
            ty = Std.integer;
            mode = None;
            slot = Denot.Sl_static (Value.Vint 5);
          } );
      ( "B",
        Denot.Dobject
          {
            name = "B";
            cls = Denot.Csignal;
            ty = Std.bit;
            mode = None;
            slot = Denot.Sl_signal (Kir.Sig_local 0);
          } );
      (* a user-defined operator: "+" on bits (half-adder sum) *)
      ( Lef.operator_key "+",
        Denot.Dsubprog
          {
            Denot.ss_name = Lef.operator_key "+";
            ss_mangled = "WORK.TPKG:\"+\"/BIT.BIT";
            ss_kind = `Function;
            ss_params =
              [
                {
                  Denot.p_name = "A";
                  p_mode = Kir.Arg_in;
                  p_class = Denot.Cconstant;
                  p_ty = Std.bit;
                  p_default = None;
                };
                {
                  Denot.p_name = "B";
                  p_mode = Kir.Arg_in;
                  p_class = Denot.Cconstant;
                  p_ty = Std.bit;
                  p_default = None;
                };
              ];
            ss_ret = Some Std.bit;
            ss_builtin = false;
          } );
    ]

let both src =
  Session.with_session (Session.in_memory []) (fun () ->
      let united = United.eval_string ~env ~level:0 src in
      let lef = Cascade_driver.classify_tokens ~env (Lexer.tokenize src) in
      let cascade = Expr_eval.eval ~level:0 ~line:1 lef in
      (united, cascade))

let agree src =
  let united, cascade = both src in
  let u_err = Diag.has_errors united.Pval.x_msgs in
  let c_err = Diag.has_errors cascade.Pval.x_msgs in
  if u_err <> c_err then false
  else if u_err then true (* both reject: fine *)
  else
    Types.same_base united.Pval.x_ty cascade.Pval.x_ty
    &&
    match (united.Pval.x_static, cascade.Pval.x_static) with
    | Some a, Some b -> Value.equal a b
    | None, None -> true
    | _ -> false

let check_agree src =
  Alcotest.(check bool) (Printf.sprintf "agree on %s" src) true (agree src)

let check_static src expected =
  let _, cascade = both src in
  match cascade.Pval.x_static with
  | Some v -> Alcotest.(check bool) src true (Value.equal v expected)
  | None -> Alcotest.failf "%s: not static" src

let test_fixed_corpus () =
  List.iter check_agree
    [
      "1 + 2 * 3";
      "N";
      "V(3)";
      "V(1 to 4)";
      "F(N)";
      "F(V(N)) + N ** 2";
      "N mod 3 = 2";
      "not (N < 10)";
      "abs (-N)";
      "B = '1'";
      "V(0) + V(N - 5)";
      "(1 + 2) * (3 + 4)";
      "F(F(F(1)))";
      "2 ** 10";
      "V(N)";
      (* user-defined operators resolve identically on both paths *)
      "B + '1'";
      "(B + B) = '0'";
      (* error cases must be rejected by BOTH strategies *)
      "N + B";
      "V(B)";
      "UNDECLARED + 1";
      "F(1, 2)";
    ];
  check_static "N * 2 + 1" (Value.Vint 11);
  check_static "N mod 3" (Value.Vint 2)

(* random integer expressions over N and literals: both strategies must
   agree with a reference interpreter *)
let gen_int_expr =
  let open QCheck.Gen in
  let rec gen depth st =
    if depth = 0 then
      oneof [ map (fun n -> (string_of_int n, n)) (int_range 0 20); return ("N", 5) ] st
    else
      frequency
        [
          (2, gen 0);
          ( 3,
            map2
              (fun ((sa, va), (sb, vb)) op ->
                let s = Printf.sprintf "(%s %s %s)" sa op sb in
                let v =
                  match op with
                  | "+" -> va + vb
                  | "-" -> va - vb
                  | "*" -> va * vb
                  | _ -> assert false
                in
                (s, v))
              (pair (gen (depth - 1)) (gen (depth - 1)))
              (oneofl [ "+"; "-"; "*" ]) );
        ]
        st
  in
  gen 4

let random_agreement =
  QCheck.Test.make ~name:"united and cascade agree with a reference on random expressions"
    ~count:150 (QCheck.make gen_int_expr) (fun (src, expected) ->
      let united, cascade = both src in
      (not (Diag.has_errors united.Pval.x_msgs))
      && (not (Diag.has_errors cascade.Pval.x_msgs))
      && (match united.Pval.x_static with
         | Some (Value.Vint v) -> v = expected
         | _ -> false)
      &&
      match cascade.Pval.x_static with
      | Some (Value.Vint v) -> v = expected
      | _ -> false)

let suite =
  [
    Alcotest.test_case "fixed corpus agreement" `Quick test_fixed_corpus;
    QCheck_alcotest.to_alcotest random_agreement;
  ]
