(* Whole-program property testing: randomly generated well-formed designs
   must compile with no diagnostics, elaborate, and simulate to quiescence
   or the horizon — no crashes, no kernel errors, monotonic time. *)

open QCheck.Gen

(* a random integer expression over the names in scope *)
let rec gen_int_expr vars depth st =
  if depth = 0 || vars = [] then
    oneof
      [
        map string_of_int (int_range 0 99);
        (if vars = [] then map string_of_int (int_range 0 9) else oneofl vars);
      ]
      st
  else
    frequency
      [
        (2, gen_int_expr vars 0);
        ( 3,
          map2
            (fun (a, b) op -> Printf.sprintf "(%s %s %s)" a op b)
            (pair (gen_int_expr vars (depth - 1)) (gen_int_expr vars (depth - 1)))
            (oneofl [ "+"; "-"; "*" ]) );
        ( 1,
          map
            (fun a -> Printf.sprintf "(%s mod 97)" a)
            (gen_int_expr vars (depth - 1)) );
        ( 1,
          map
            (fun a -> Printf.sprintf "clip(%s)" a)
            (gen_int_expr vars (depth - 1)) );
      ]
      st

(* a random sequential statement writing [target].  The stored value is
   always reduced [mod 97] so that signals stay in 0..96 across clock
   cycles: without the reduction, feedback like [S0 <= (S0+S0)*(S0+S0)]
   grows doubly exponentially and eventually leaves the INTEGER range
   (a wrapped product can land on the one representable value outside
   the symmetric LRM range), which the runtime rightly rejects. *)
let rec gen_stmt vars target depth st =
  if depth = 0 then
    Printf.sprintf "%s <= (%s) mod 97;" target (gen_int_expr vars 2 st)
  else
    match int_range 0 3 st with
    | 0 -> Printf.sprintf "%s <= (%s) mod 97;" target (gen_int_expr vars 2 st)
    | 1 ->
      Printf.sprintf "if %s > %s then %s else %s end if;"
        (gen_int_expr vars 1 st) (gen_int_expr vars 1 st)
        (gen_stmt vars target (depth - 1) st)
        (gen_stmt vars target (depth - 1) st)
    | 2 ->
      Printf.sprintf
        "for i in 0 to %d loop v := v + i; end loop; %s <= v;"
        (int_range 1 8 st) target
    | _ ->
      Printf.sprintf "case %s mod 3 is when 0 => %s when 1 => null; when others => %s end case;"
        (gen_int_expr vars 1 st)
        (gen_stmt vars target 0 st)
        (gen_stmt vars target 0 st)

(* a design: n integer signals, one driver process per signal (no multiple
   drivers!), a clock, a helper function, and sometimes a concurrent
   assignment or assertion *)
let gen_design st =
  let n = int_range 1 4 st in
  let sigs = List.init n (fun i -> Printf.sprintf "S%d" i) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "entity gen_tb is end gen_tb;\narchitecture t of gen_tb is\n";
  Buffer.add_string buf "  signal clk : bit := '0';\n";
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  signal %s : integer := %d;\n" s (int_range 0 9 st)))
    sigs;
  (* a helper function some expressions call through CLIP(x) *)
  Buffer.add_string buf
    "  function clip (x : integer) return integer is\n\
    \  begin\n\
    \    if x > 96 then return 96; elsif x < 0 then return 0; else return x; end if;\n\
    \  end clip;\n";
  Buffer.add_string buf "  signal obs : integer := 0;\n";
  Buffer.add_string buf "begin\n";
  Buffer.add_string buf
    "  clock : process\n  begin\n    clk <= not clk after 5 ns;\n    wait for 5 ns;\n  end process;\n";
  (* concurrent observer over the first signal, sometimes guarded by an
     assertion *)
  Buffer.add_string buf
    (Printf.sprintf "  obs_drv : obs <= clip(%s) + %d;\n" (List.hd sigs) (int_range 0 9 st));
  if bool st then
    Buffer.add_string buf
      (Printf.sprintf "  chk : assert %s >= 0 severity note;\n" (List.hd sigs));
  List.iteri
    (fun i target ->
      (* each process may read every signal but writes only its own *)
      let stmt = gen_stmt sigs target (int_range 0 2 st) st in
      Buffer.add_string buf
        (Printf.sprintf
           "  drv%d : process (clk)\n    variable v : integer := 0;\n  begin\n    %s\n  end process;\n"
           i stmt))
    sigs;
  Buffer.add_string buf "end t;\n";
  Buffer.contents buf

let design_runs src =
  let c = Vhdl_compiler.create () in
  match Vhdl_compiler.compile c src with
  | exception Vhdl_compiler.Compile_error _ -> false
  | _ -> (
    let sim = Vhdl_compiler.elaborate c ~top:"gen_tb" () in
    match Vhdl_compiler.run c sim ~max_ns:60 with
    | Kernel.Quiescent | Kernel.Time_limit ->
      (* sanity: the kernel clock never exceeded the horizon *)
      Kernel.now (Vhdl_compiler.kernel sim) <= 60 * Rt.ns
    | Kernel.Stopped | Kernel.Fuel_exhausted -> false
    | exception Rt.Simulation_error _ -> false)

let generated_designs_run =
  QCheck.Test.make ~name:"random well-formed designs compile and simulate" ~count:60
    (QCheck.make ~print:Fun.id gen_design) design_runs

(* the same designs survive a VIF round trip: compile into a disk library,
   reopen, and elaborate from the files alone *)
let generated_designs_roundtrip =
  QCheck.Test.make ~name:"random designs survive the VIF round trip" ~count:20
    (QCheck.make ~print:Fun.id gen_design)
    (fun src ->
      let dir = Filename.temp_file "vifgen" "" in
      Sys.remove dir;
      let c1 = Vhdl_compiler.create ~work_dir:dir () in
      match Vhdl_compiler.compile c1 src with
      | exception Vhdl_compiler.Compile_error _ -> false
      | _ -> (
        let c2 = Vhdl_compiler.create ~work_dir:dir () in
        let sim = Vhdl_compiler.elaborate c2 ~top:"gen_tb" () in
        match Vhdl_compiler.run c2 sim ~max_ns:40 with
        | Kernel.Quiescent | Kernel.Time_limit -> true
        | Kernel.Stopped | Kernel.Fuel_exhausted -> false
        | exception Rt.Simulation_error _ -> false))

let suite =
  [
    QCheck_alcotest.to_alcotest generated_designs_run;
    QCheck_alcotest.to_alcotest generated_designs_roundtrip;
  ]
