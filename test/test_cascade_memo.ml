(* The cascade memo and the plan-based default, differentially tested.

   The LEF→parse-tree memo in Expr_eval must hit exactly when two token
   lists are structurally identical (terminal kinds, payloads, lines),
   keep evaluation context ([?expected], [~level]) outside the cached
   artifact, stay bounded, and never leak into the differential oracle's
   cold reference path.  The plan-based strategy (the compiler default)
   must agree with the demand oracle over a fuzz campaign twice the size
   of the smoke run. *)

module Tm = Vhdl_telemetry.Telemetry

let line = 1

let itok kind = { Lef.l_kind = kind; l_line = line }
let int_t n = itok (Lef.Kint n)
let op o = Lef.op ~line o

let counter = Tm.counter_value

(* Every test starts from an empty memo — the cache is process-global and
   alcotest runs suites in one process, so order independence demands it. *)
let fresh () = Expr_eval.clear_memo ()

(* ------------------------------------------------------------------ *)
(* The eval_range empty-LEF guard (regression: an empty range used to
   reach the parser and die there instead of producing a diagnostic) *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_empty_range_guard () =
  fresh ();
  let r, ty, diags = Expr_eval.eval_range ~level:0 ~line:7 [] in
  Alcotest.(check bool) "no type" true (ty = None);
  (match r with
  | Kir.Elit (Value.Vint 0), Types.To, Kir.Elit (Value.Vint 0) -> ()
  | _ -> Alcotest.fail "empty range must yield the zero placeholder bounds");
  match diags with
  | [ d ] ->
    Alcotest.(check bool) "mentions the missing range" true
      (contains (Format.asprintf "%a" Diag.pp d) "missing range")
  | _ -> Alcotest.fail "expected exactly one diagnostic"

(* ------------------------------------------------------------------ *)
(* Hit/miss semantics of the content key *)

let test_repeat_hits () =
  fresh ();
  let lef = [ int_t 2; op "+"; int_t 3 ] in
  let h0 = counter "cascade.memo_hits" and m0 = counter "cascade.memo_misses" in
  let r0 = counter "cascade.reparses" in
  let a = Expr_eval.eval ~level:0 ~line lef in
  let b = Expr_eval.eval ~level:0 ~line lef in
  Alcotest.(check int) "first parse is a miss" (m0 + 1) (counter "cascade.memo_misses");
  Alcotest.(check int) "second parse is a hit" (h0 + 1) (counter "cascade.memo_hits");
  Alcotest.(check int) "exactly one reparse" (r0 + 1) (counter "cascade.reparses");
  Alcotest.(check int) "one cached tree" 1 (Expr_eval.memo_size ());
  Alcotest.(check string) "same type" (Types.short_name a.Pval.x_ty)
    (Types.short_name b.Pval.x_ty);
  Alcotest.(check bool) "same folded value" true (a.Pval.x_static = b.Pval.x_static)

let test_payload_difference_misses () =
  fresh ();
  let h0 = counter "cascade.memo_hits" and m0 = counter "cascade.memo_misses" in
  (* identical terminal sequence LINT ADDOP LINT, different literal payloads *)
  ignore (Expr_eval.eval ~level:0 ~line [ int_t 1; op "+"; int_t 2 ]);
  ignore (Expr_eval.eval ~level:0 ~line [ int_t 1; op "+"; int_t 3 ]);
  Alcotest.(check int) "no hits" h0 (counter "cascade.memo_hits");
  Alcotest.(check int) "two misses" (m0 + 2) (counter "cascade.memo_misses");
  Alcotest.(check int) "two cached trees" 2 (Expr_eval.memo_size ())

let test_line_difference_misses () =
  fresh ();
  let h0 = counter "cascade.memo_hits" in
  ignore (Expr_eval.eval ~level:0 ~line:1 [ { Lef.l_kind = Lef.Kint 9; l_line = 1 } ]);
  ignore (Expr_eval.eval ~level:0 ~line:2 [ { Lef.l_kind = Lef.Kint 9; l_line = 2 } ]);
  (* token lines are embedded in the cached tree (diagnostics read them),
     so a different line is a different expression *)
  Alcotest.(check int) "no hits across lines" h0 (counter "cascade.memo_hits");
  Alcotest.(check int) "two cached trees" 2 (Expr_eval.memo_size ())

(* Same LEF list, different [?expected]: the tree cache must hit while
   overload selection re-runs per call — the '0' literal resolves to BIT
   or CHARACTER depending on what the context asks for. *)
let test_expected_outside_the_artifact () =
  fresh ();
  let zero =
    itok (Lef.Kenum [ (Std.bit, 0, "'0'"); (Std.character, 48, "'0'") ])
  in
  let h0 = counter "cascade.memo_hits" in
  let as_bit = Expr_eval.eval ~expected:Std.bit ~level:0 ~line [ zero ] in
  let as_char = Expr_eval.eval ~expected:Std.character ~level:0 ~line [ zero ] in
  Alcotest.(check int) "second call hit the tree cache" (h0 + 1)
    (counter "cascade.memo_hits");
  Alcotest.(check string) "selected BIT" "BIT" (Types.short_name as_bit.Pval.x_ty);
  Alcotest.(check string) "selection re-ran: CHARACTER" "CHARACTER"
    (Types.short_name as_char.Pval.x_ty)

(* [eval] and [eval_range] never alias: both entry points share one
   parser, so the same token list parses to the same tree either way —
   only the keyspace prefix keeps a cached expression from serving a
   range lookup (and vice versa). *)
let test_keyspaces_disjoint () =
  fresh ();
  let lef = [ int_t 7 ] in
  ignore (Expr_eval.eval ~level:0 ~line lef);
  Alcotest.(check int) "expression cached" 1 (Expr_eval.memo_size ());
  let h0 = counter "cascade.memo_hits" and m0 = counter "cascade.memo_misses" in
  ignore (Expr_eval.eval_range ~level:0 ~line lef);
  Alcotest.(check int) "range lookup does not hit the expression tree" h0
    (counter "cascade.memo_hits");
  Alcotest.(check int) "range lookup is its own miss" (m0 + 1)
    (counter "cascade.memo_misses");
  Alcotest.(check int) "two distinct entries" 2 (Expr_eval.memo_size ());
  ignore (Expr_eval.eval_range ~level:0 ~line lef);
  Alcotest.(check int) "second range lookup hits" (h0 + 1)
    (counter "cascade.memo_hits")

let test_cold_cascade_bypasses () =
  fresh ();
  let lef = [ int_t 6; op "*"; int_t 7 ] in
  let h0 = counter "cascade.memo_hits" and m0 = counter "cascade.memo_misses" in
  let r0 = counter "cascade.reparses" in
  Expr_eval.with_cold_cascade (fun () ->
      ignore (Expr_eval.eval ~level:0 ~line lef);
      ignore (Expr_eval.eval ~level:0 ~line lef));
  Alcotest.(check int) "no hits when cold" h0 (counter "cascade.memo_hits");
  Alcotest.(check int) "no misses counted when cold" m0 (counter "cascade.memo_misses");
  Alcotest.(check int) "every evaluation reparses" (r0 + 2) (counter "cascade.reparses");
  Alcotest.(check int) "nothing cached" 0 (Expr_eval.memo_size ());
  (* and the warm cascade is restored afterwards *)
  ignore (Expr_eval.eval ~level:0 ~line lef);
  Alcotest.(check int) "warm again" 1 (Expr_eval.memo_size ())

let test_eviction_is_bounded () =
  fresh ();
  let e0 = counter "cascade.memo_evictions" in
  (* one distinct single-literal expression per value: enough to cross the
     generational limit at least once *)
  for n = 1 to 600 do
    ignore (Expr_eval.eval ~level:0 ~line [ int_t n ])
  done;
  Alcotest.(check bool) "at least one eviction" true
    (counter "cascade.memo_evictions" > e0);
  Alcotest.(check bool) "cache stays bounded" true (Expr_eval.memo_size () <= 512)

(* ------------------------------------------------------------------ *)
(* Whole-compiler counter shape: on a multi-use design the reparse count
   is the distinct-expression count, not the evaluation count *)

let multi_use_source =
  "entity m is\n\
  \  port (a : in bit; y : out bit);\n\
   end m;\n\n\
   architecture r of m is\n\
  \  signal s1 : bit;\n\
  \  signal s2 : bit;\n\
   begin\n\
  \  s1 <= not a after 1 ns;\n\
  \  s2 <= not a after 1 ns;\n\
  \  y <= s1 and s2 after 1 ns;\n\
   end r;"

let test_recompile_reuses_trees () =
  fresh ();
  let e0 = counter "cascade.evaluations" and r0 = counter "cascade.reparses" in
  let c1 = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile c1 multi_use_source);
  let reparses_first = counter "cascade.reparses" - r0 in
  let c2 = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile c2 multi_use_source);
  let evaluations = counter "cascade.evaluations" - e0 in
  let reparses = counter "cascade.reparses" - r0 in
  Alcotest.(check int) "recompilation parses nothing new" reparses_first reparses;
  Alcotest.(check bool)
    (Printf.sprintf "reparses (%d) < evaluations (%d)" reparses evaluations)
    true
    (reparses < evaluations);
  Alcotest.(check bool) "memo hits dominate the second compile" true
    (counter "cascade.memo_hits" >= reparses_first)

(* Copy elision must show up in the whole-compiler counters: the staged
   default applies measurably fewer rules than the demand reference on
   the same source, while both report the same diagnostics. *)
let test_elision_reduces_applications () =
  fresh ();
  let apps_of strategy =
    let a0 = counter "ag.rule_applications" in
    let c = Vhdl_compiler.create ~strategy () in
    ignore (Vhdl_compiler.compile c multi_use_source);
    (counter "ag.rule_applications" - a0, Vhdl_compiler.diagnostics c)
  in
  let staged_apps, staged_diags = apps_of Vhdl_compiler.Staged in
  let demand_apps, demand_diags = apps_of Vhdl_compiler.Demand in
  Alcotest.(check int) "same diagnostics" (List.length demand_diags)
    (List.length staged_diags);
  Alcotest.(check bool)
    (Printf.sprintf "staged apps (%d) < demand apps (%d)" staged_apps demand_apps)
    true
    (staged_apps < demand_apps);
  Alcotest.(check bool) "elisions happened" true (counter "ag.copy_elisions" > 0)

(* ------------------------------------------------------------------ *)
(* The 200-seed differential campaign: plan-with-copy-elision (staged,
   warm cascade) vs the demand oracle (cold cascade, no elision) must
   agree on units, VIF, diagnostics, traces, and messages. *)

let test_campaign_200 () =
  fresh ();
  let seeds = List.init 200 (fun i -> 20_000 + i) in
  let summary = Difftest.run_campaign ~seeds ~size:2 () in
  Alcotest.(check int) "200 designs" 200 summary.Difftest.total;
  Alcotest.(check int) "no divergences" 0 summary.Difftest.divergences;
  Alcotest.(check int) "no crashes" 0 summary.Difftest.crashes;
  Alcotest.(check bool) "most designs compile on both sides" true
    (summary.Difftest.compiled + summary.Difftest.rejected = 200)

let suite =
  [
    Alcotest.test_case "empty range is a diagnostic" `Quick test_empty_range_guard;
    Alcotest.test_case "repeated expression hits" `Quick test_repeat_hits;
    Alcotest.test_case "payload difference misses" `Quick test_payload_difference_misses;
    Alcotest.test_case "line difference misses" `Quick test_line_difference_misses;
    Alcotest.test_case "?expected stays outside the artifact" `Quick
      test_expected_outside_the_artifact;
    Alcotest.test_case "eval/eval_range keyspaces are disjoint" `Quick
      test_keyspaces_disjoint;
    Alcotest.test_case "cold cascade bypasses the memo" `Quick test_cold_cascade_bypasses;
    Alcotest.test_case "eviction keeps the cache bounded" `Quick test_eviction_is_bounded;
    Alcotest.test_case "recompilation reuses cached trees" `Quick
      test_recompile_reuses_trees;
    Alcotest.test_case "copy elision reduces rule applications" `Quick
      test_elision_reduces_applications;
    Alcotest.test_case "200-seed demand-vs-plan campaign" `Slow test_campaign_200;
  ]
