The statistical benchmark front end: sessions, persisted baselines, the
noise-aware regression gate, and collapsed-stack profile export.

A bench run prints one session line per experiment (repetitions, median,
MAD, bootstrap CI) plus derived rates.  The numbers move with the
machine, so check shape, not values:

  $ ../../bin/vhdlc.exe bench --warmup 0 --repeats 2 --quota 0.2 > bench.out
  $ grep -c 'reps  median' bench.out
  5
  $ grep -c 'attrs_per_s' bench.out
  4
  $ grep -c 'delta_cycles_per_s' bench.out
  1

--save-baseline persists the canonical report schema with machine and
commit metadata, and a clean run against it exits 0:

  $ ../../bin/vhdlc.exe bench --warmup 0 --repeats 3 --quota 0.3 --save-baseline base.json > /dev/null
  $ grep -o '"schema":"vhdl-bench/1"' base.json
  "schema":"vhdl-bench/1"
  $ grep -c '"commit"' base.json
  1
  $ grep -c '"experiments"' base.json
  1
  $ ../../bin/vhdlc.exe bench --warmup 0 --repeats 3 --quota 0.3 --threshold 6.0 --against base.json > same.out
  $ tail -1 same.out
  no regressions against base.json (threshold +600%)
  $ grep -c 'verdict' same.out
  1

An injected slowdown in one experiment — the VHDLC_PERF_PERTURB test
seam busy-waits extra milliseconds inside the measured section — flips
that experiment's verdict to REGRESSION and the exit code to 1.  (The
threshold is set above machine jitter but far below the injected 10x so
the verdict is deterministic.)

  $ VHDLC_PERF_PERTURB='compile/expressions:150' ../../bin/vhdlc.exe bench \
  >   --warmup 0 --repeats 3 --quota 0.3 --threshold 3.0 --against base.json > slow.out; echo "exit $?"
  exit 1
  $ grep -c 'REGRESSION' slow.out
  2
  $ grep 'regression(s) against' slow.out
  2 regression(s) against base.json (threshold +300%)

A missing or unreadable baseline is a usage error, exit 2:

  $ ../../bin/vhdlc.exe bench --warmup 0 --repeats 1 --quota 0.05 --against nowhere.json > /dev/null
  cannot load baseline: nowhere.json: cannot read
  [2]

--flame on a compile writes the span tree as collapsed stacks — the
flamegraph.pl / speedscope input format, one "path;to;frame <self-us>"
line per distinct stack (frame names may contain spaces; the value after
the last space is integer microseconds):

  $ cat > design.vhd <<'VHDL'
  > entity counter is
  >   port (clk : in bit; q : out integer);
  > end counter;
  > architecture rtl of counter is
  >   signal n : integer := 0;
  > begin
  >   tick : process (clk)
  >   begin
  >     if clk'event and clk = '1' then
  >       n <= n + 1;
  >     end if;
  >   end process;
  >   q <= n;
  > end rtl;
  > VHDL
  $ ../../bin/vhdlc.exe compile --work ./lib --flame out.folded design.vhd > /dev/null
  $ test -s out.folded && echo non-empty
  non-empty

Every line is well formed (no violations of "stack space value"):

  $ grep -vEc '^.+ [0-9]+$' out.folded
  0
  [1]

The compile phases appear as frames under the compile root, space in the
frame name and all:

  $ grep -o '^compile;parser [0-9]*' out.folded | sed 's/ [0-9]*$/ NN/'
  compile;parser NN
  $ grep -o '^compile;attribute evaluation' out.folded | sort -u
  compile;attribute evaluation
