The command-line compiler: compile into a disk library, inspect it, simulate.

  $ cat > design.vhd <<'VHDL'
  > entity counter is
  >   port (clk : in bit; q : out integer);
  > end counter;
  > architecture rtl of counter is
  >   signal n : integer := 0;
  > begin
  >   tick : process (clk)
  >   begin
  >     if clk'event and clk = '1' then
  >       n <= n + 1;
  >     end if;
  >   end process;
  >   q <= n;
  > end rtl;
  > entity tb is end tb;
  > architecture t of tb is
  >   component counter
  >     port (clk : in bit; q : out integer);
  >   end component;
  >   signal clk : bit := '0';
  >   signal q : integer := 0;
  > begin
  >   dut : counter port map (clk => clk, q => q);
  >   clock : process
  >   begin
  >     clk <= not clk after 5 ns;
  >     wait for 5 ns;
  >   end process;
  >   stop : process
  >   begin
  >     wait until q = 4;
  >     assert false report "counted to four" severity note;
  >     wait;
  >   end process;
  > end t;
  > VHDL

  $ ../../bin/vhdlc.exe compile --work ./lib design.vhd
  design.vhd: compiled entity:COUNTER
  design.vhd: compiled arch:COUNTER(RTL)
  design.vhd: compiled entity:TB
  design.vhd: compiled arch:TB(T)

The library holds one VIF file per unit:

  $ ls lib | sort
  arch@COUNTER@RTL@.vif
  arch@TB@T@.vif
  entity@COUNTER.vif
  entity@TB.vif

Simulate from the library alone (separate compilation):

  $ ../../bin/vhdlc.exe simulate --work ./lib --top tb --ns 60
  35 ns      note: counted to four
  simulation reached the horizon at 60 ns: 12 time steps, 13 delta cycles, 24 events, 35 process runs

The human-readable VIF dump names the entity's ports:

  $ ../../bin/vhdlc.exe dump --work ./lib entity:COUNTER | head -8
  (vif
   (library WORK)
   (key entity:COUNTER)
   (info
    (entity
     (name COUNTER)
     (generics
      ())

Grammar statistics (the paper's section 4.1 table shape):

(row labels only: the exact counts evolve with the grammar)

  $ ../../bin/vhdlc.exe stats | awk '{print $1}' | head -5
  VHDL
  productions
  symbols
  attributes
  rules(implicit)

The same table as JSON (first field only — the counts evolve):

  $ ../../bin/vhdlc.exe stats --json | grep -c '"name":"VHDL AG"'
  1

Telemetry: --trace writes Chrome trace-event JSON, --metrics prints the
counter report, --metrics-out dumps it as JSON.  Counter values move with
the front end, so check shape, not numbers:

  $ ../../bin/vhdlc.exe compile --work ./lib2 --trace trace.json --metrics-out metrics.json design.vhd > /dev/null
  $ grep -c '"ph":"X"' trace.json
  1
  $ grep -o '"name":"scanner"' trace.json
  "name":"scanner"
  $ grep -o '"name":"parser"' trace.json
  "name":"parser"
  $ grep -o '"name":"attribute evaluation"' trace.json
  "name":"attribute evaluation"
  $ grep -o '"counters"' metrics.json
  "counters"
  $ ../../bin/vhdlc.exe compile --work ./lib3 --metrics design.vhd | grep -c 'lexer.tokens'
  1

  $ ../../bin/vhdlc.exe simulate --work ./lib2 --top tb --ns 60 --trace sim.json > /dev/null
  $ grep -o '"name":"simulation"' sim.json
  "name":"simulation"

Bad input is rejected with a diagnostic and a nonzero exit:

  $ ../../bin/vhdlc.exe compile --work ./lib bad.vhd
  vhdlc: FILE… arguments: no 'bad.vhd' file or directory
  Usage: vhdlc compile [OPTION]… FILE…
  Try 'vhdlc compile --help' or 'vhdlc --help' for more information.
  [124]

  $ printf 'entity broken' > broken.vhd
  $ ../../bin/vhdlc.exe compile --work ./lib broken.vhd
  broken.vhd: line 1: error: syntax error: unexpected EOF
  [1]

The parser recovers at design-unit boundaries: one run reports every
syntax error, and the undamaged sibling units still reach the library
(--report shows the per-unit outcome):

  $ cat > multi.vhd <<'VHDL'
  > entity good1 is end good1;
  > entity bad1 is
  >   port garbage ( ;
  > end bad1;
  > entity good2 is end good2;
  > architecture broken of good1 is
  >   signal s : ) bit;
  > end broken;
  > entity good3 is end good3;
  > VHDL

Each report line carries the telemetry-counter delta of that unit's own
analysis (numbers normalized here — they move with the grammar):

  $ ../../bin/vhdlc.exe compile --report multi.vhd 2>&1 | sed -E 's/\[rules [0-9]+, attrs [0-9]+\]/[rules N, attrs N]/'
  multi.vhd: line 3: error: syntax error: unexpected ID (skipped 6 tokens to resynchronize)
  multi.vhd: line 7: error: syntax error: unexpected ) (skipped 6 tokens to resynchronize)
  compiled   entity GOOD1 (line 1)  [rules N, attrs N]
  compiled   entity GOOD2 (line 5)  [rules N, attrs N]
  compiled   entity GOOD3 (line 9)  [rules N, attrs N]

Resource budgets exhaust into diagnostics, never hangs; the failing
unit's report line shows the partial work it did before the budget died:

  $ ../../bin/vhdlc.exe compile --fuel 40 --report multi.vhd 2>&1 | sed -E -e 's/\[rules [0-9]+, attrs [0-9]+\]/[rules N, attrs N]/' -e 's/; [0-9.]+s elapsed/; Es elapsed/'
  multi.vhd: line 3: error: syntax error: unexpected ID (skipped 6 tokens to resynchronize)
  multi.vhd: line 7: error: syntax error: unexpected ) (skipped 6 tokens to resynchronize)
  multi.vhd: line 9: error: [budget:analysis:entity GOOD3] evaluation fuel exhausted after 41 rule applications (limit 40); Es elapsed
  compiled   entity GOOD1 (line 1)  [rules N, attrs N]
  compiled   entity GOOD2 (line 5)  [rules N, attrs N]
  skipped    entity GOOD3 (line 9)  [rules N, attrs N]

Architectures evaluate expressions, so their counter delta includes the
expression-AG cascade:

  $ ../../bin/vhdlc.exe compile --report design.vhd | grep 'architecture RTL' | sed -E 's/[0-9]+/N/g'
  compiled   architecture RTL (line N)  [rules N, attrs N, cascade N]

Attribute provenance: `explain` compiles with the recorder armed and
prints the why-chain of an attribute instance (node ids and timings
normalized — they move with the grammar):

  $ ../../bin/vhdlc.exe explain design.vhd counter UNITS --depth 1 --dot slice.dot | sed -E 's/n[0-9]+/nID/g; s/self [0-9.]+ms/self T/'
  nID.UNITS @ design_unit_plain (vhdl, line 1) = units[entity:COUNTER]  [elided implicit copy, self T, alloc 148w]
    nID.UNITS @ library_unit_entity (vhdl, line 1) = units[entity:COUNTER]  [elided implicit copy, self T, alloc 100w]
      ... 1 dependencies below the depth bound
  
  DOT slice written to slice.dot


  $ head -c 7 slice.dot
  digraph

The hot-rule profiler aggregates the provenance records; its table rides
along with `compile --profile-rules` and `stats FILE`:

  $ ../../bin/vhdlc.exe compile --profile-rules design.vhd > profile.out
  $ grep -c 'self-ms' profile.out
  1
  $ grep '^total' profile.out | tr -s ' ' | sed -E 's/[0-9]+\.[0-9]+/T/; s/[0-9]+/N/g'
  total (N rows) N N N T N.N

  $ ../../bin/vhdlc.exe stats design.vhd | grep -c 'self-ms'
  1

Simulation writes an IEEE-1364 VCD waveform dump (GTKWave-loadable):

  $ ../../bin/vhdlc.exe simulate --work ./lib --top tb --ns 60 --vcd out.vcd > /dev/null
  $ sed -n '1,2p' out.vcd
  $version vhdlc simulation $end
  $timescale 1 fs $end
  $ grep '$var' out.vcd
  $var wire 1 ! CLK $end
  $var integer 32 # Q $end
  $var integer 32 $ N $end
  $ grep -c '$dumpvars' out.vcd
  1
