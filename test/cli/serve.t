The resilient compile service: daemon lifecycle, fault containment,
overload shedding, observability, and graceful drain.

  $ SOCK="$PWD/serve.sock"
  $ cat > good.vhd <<'VHDL'
  > entity good is end good;
  > VHDL

Start a daemon with fault injection allowed (so a poisoned request can be
demonstrated), a one-deep admission queue (so overload can be forced), a
structured event log, and a flight-recorder dump directory.

  $ ../../bin/vhdlc.exe serve --socket "$SOCK" --quiet --allow-faults --grace 0.3 --queue 1 --events "$PWD/events.jsonl" --flight-dir "$PWD/dumps" &
  $ DAEMON=$!

A healthy request compiles into the warm library (exit 0).

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --wait-ready good.vhd
  compiled entity:GOOD
  unit compiled entity GOOD

A poisoned request is answered with a structured [internal] response
(exit 2) — the firewall contains the injected escape — and the response
names the daemon's request id, the key into the event log and trace.

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --poison entity:GOOD good.vhd > poisoned.out 2> poisoned.err; echo "exit $?"
  exit 2
  $ grep -c 'internal:' poisoned.out
  1
  $ sed -E 's/rid=[0-9]+/rid=N/' poisoned.err
  vhdlc request: [internal] rid=N

The firewall trip left a flight dump on disk, named after the offending
request id:

  $ ls dumps | sed -E 's/flight-[0-9]{8}-[0-9]{6}-[0-9]+-[0-9]{3}-rid[0-9]+-/flight-DUMP-rid-/'
  flight-DUMP-rid-firewall.json

...while the daemon keeps serving:

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --ping
  pong

Overload: while the worker is pinned by a slow request, the one-deep
queue fills and the next request is shed with [overload] and a
retry-after hint (exit 4).

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --spin-ms 700 --deadline 5 good.vhd > /dev/null 2>&1 &
  $ SLOW=$!
  $ sleep 0.2
  $ ../../bin/vhdlc.exe request --socket "$SOCK" good.vhd > /dev/null 2>&1 &
  $ QUEUED=$!
  $ sleep 0.2
  $ ../../bin/vhdlc.exe request --socket "$SOCK" good.vhd > shed.out 2> shed.err; echo "exit $?"
  exit 4
  $ sed -E -e 's/rid=[0-9]+/rid=N/' -e 's/[0-9]+[.][0-9]+s/Ts/g' shed.err
  vhdlc request: [overload] rid=N retry after Ts
  $ sed -E -e 's/\(1 deep\)/(queue-cap)/' -e 's/[0-9]+[.][0-9]+s/Ts/g' shed.out
  queue full (queue-cap); retry after Ts
  $ wait $SLOW $QUEUED

The daemon's ledger balances: every request was answered or shed.

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --stats | awk '
  >   /^serve\.(requests|answered|shed|client_gone) /{ c[$1]=$2 }
  >   END {
  >     if (c["serve.requests"] == c["serve.answered"] + c["serve.shed"] + c["serve.client_gone"])
  >       print "ledger balances"
  >     else
  >       printf "imbalance: %d != %d + %d + %d\n", c["serve.requests"], c["serve.answered"], c["serve.shed"], c["serve.client_gone"]
  >   }'
  ledger balances

The rolling SLO window is queryable live, as text or JSON; the stats
document is machine-readable too.

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --slo | grep -c '^window'
  1
  $ ../../bin/vhdlc.exe request --socket "$SOCK" --slo --json | grep -c '"p99_us"'
  1
  $ ../../bin/vhdlc.exe request --socket "$SOCK" --stats --json | grep -c '"ledger"'
  1

`vhdlc top` renders a dashboard frame from the same stats document.

  $ ../../bin/vhdlc.exe top --socket "$SOCK" --once | sed -e "s#$SOCK#SOCK#" -e 's/[0-9][0-9.]*/N/g' | head -3
  compile service @ SOCK — uptime Ns
  queue    N/N deep   retry-after Ns
  worker   generation N   served N

Graceful drain on SIGTERM: in-flight work is finished, the daemon exits
cleanly, and the socket file is removed.

  $ kill -TERM $DAEMON
  $ wait $DAEMON; echo "daemon exit $?"
  daemon exit 0
  $ test -S "$SOCK" && echo "socket still there" || echo "socket removed"
  socket removed

The event log narrates the whole run in well-formed JSONL: balanced
start/finish pairs and a recorded drain.

  $ awk -F'"' '/"ev":"start"/{s++} /"ev":"finish"/{f++} END { if (s==f && s>0) print "balanced start/finish"; else print "unbalanced: " s " vs " f }' events.jsonl
  balanced start/finish
  $ grep -c '"ev":"drain"' events.jsonl
  2

The offline analytics digest the same log: the report opens with the
event census, and the --json rendering carries the schema marker.

  $ ../../bin/vhdlc.exe analyze events.jsonl | head -1 | sed 's/[0-9][0-9.]*/N/g'
  event log: N events over Ns — N finishes, N sheds, N rejects, N recycles, N breaches, N heap breaches, N dumps
  $ ../../bin/vhdlc.exe analyze events.jsonl --json | grep -c '"schema":"vhdl-analyze/1"'
  1
