The resilient compile service: daemon lifecycle, fault containment,
overload shedding, and graceful drain.

  $ SOCK="$PWD/serve.sock"
  $ cat > good.vhd <<'VHDL'
  > entity good is end good;
  > VHDL

Start a daemon with fault injection allowed (so a poisoned request can be
demonstrated) and a one-deep admission queue (so overload can be forced).

  $ ../../bin/vhdlc.exe serve --socket "$SOCK" --quiet --allow-faults --grace 0.3 --queue 1 &
  $ DAEMON=$!

A healthy request compiles into the warm library (exit 0).

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --wait-ready good.vhd
  compiled entity:GOOD
  unit compiled entity GOOD

A poisoned request is answered with a structured [internal] response
(exit 2) — the firewall contains the injected escape...

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --poison entity:GOOD good.vhd > poisoned.out 2> poisoned.err; echo "exit $?"
  exit 2
  $ grep -c 'internal:' poisoned.out
  1
  $ cat poisoned.err
  vhdlc request: [internal]

...while the daemon keeps serving:

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --ping
  pong

Overload: while the worker is pinned by a slow request, the one-deep
queue fills and the next request is shed with [overload] and a
retry-after hint (exit 4).

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --spin-ms 700 --deadline 5 good.vhd > /dev/null 2>&1 &
  $ SLOW=$!
  $ sleep 0.2
  $ ../../bin/vhdlc.exe request --socket "$SOCK" good.vhd > /dev/null 2>&1 &
  $ QUEUED=$!
  $ sleep 0.2
  $ ../../bin/vhdlc.exe request --socket "$SOCK" good.vhd > shed.out 2> shed.err; echo "exit $?"
  exit 4
  $ sed -E 's/[0-9]+[.][0-9]+s/Ts/g' shed.err
  vhdlc request: [overload] retry after Ts
  $ sed -E -e 's/\(1 deep\)/(queue-cap)/' -e 's/[0-9]+[.][0-9]+s/Ts/g' shed.out
  queue full (queue-cap); retry after Ts
  $ wait $SLOW $QUEUED

The daemon's ledger balances: every request was answered or shed.

  $ ../../bin/vhdlc.exe request --socket "$SOCK" --stats | awk '
  >   /^serve\.(requests|answered|shed|client_gone) /{ c[$1]=$2 }
  >   END {
  >     if (c["serve.requests"] == c["serve.answered"] + c["serve.shed"] + c["serve.client_gone"])
  >       print "ledger balances"
  >     else
  >       printf "imbalance: %d != %d + %d + %d\n", c["serve.requests"], c["serve.answered"], c["serve.shed"], c["serve.client_gone"]
  >   }'
  ledger balances

Graceful drain on SIGTERM: in-flight work is finished, the daemon exits
cleanly, and the socket file is removed.

  $ kill -TERM $DAEMON
  $ wait $DAEMON; echo "daemon exit $?"
  daemon exit 0
  $ test -S "$SOCK" && echo "socket still there" || echo "socket removed"
  socket removed
