(* The attribute-grammar engine: evaluation, attribute classes and implicit
   rules, dependency analysis, visit partitions, circularity detection. *)







module Driver = Vhdl_lalr.Driver

(* Attribute values for the test grammars. *)
type v =
  | I of int
  | F of float
  | S of string
  | L of string list

let as_i = function
  | I n -> n
  | _ -> Alcotest.fail "expected int value"

let as_f = function
  | F x -> x
  | I n -> float_of_int n
  | _ -> Alcotest.fail "expected float value"

let as_l = function
  | L l -> l
  | _ -> Alcotest.fail "expected list value"

(* ------------------------------------------------------------------ *)
(* Knuth's binary-number grammar: the canonical AG with both inherited
   and synthesized attributes, and an inherited attribute (scale of the
   fraction part) that depends on a synthesized one (its length). *)

let binary_grammar () =
  let open Grammar.Builder in
  let b = create () in
  List.iter (fun t -> ignore (terminal b t)) [ "zero"; "one"; "dot"; "$" ];
  List.iter (fun n -> ignore (nonterminal b n)) [ "num"; "list"; "bit" ];
  attr b ~sym:"num" ~name:"v" ~dir:Grammar.Synthesized;
  List.iter
    (fun sym ->
      attr b ~sym ~name:"v" ~dir:Grammar.Synthesized;
      attr b ~sym ~name:"scale" ~dir:Grammar.Inherited)
    [ "list"; "bit" ];
  attr b ~sym:"list" ~name:"len" ~dir:Grammar.Synthesized;
  production b ~name:"num_int" ~lhs:"num" ~rhs:[ "list" ]
    ~rules:
      [
        copy ~target:(0, "v") ~from:(1, "v");
        const ~target:(1, "scale") (I 0);
      ];
  production b ~name:"num_frac" ~lhs:"num" ~rhs:[ "list"; "dot"; "list" ]
    ~rules:
      [
        rule ~target:(0, "v") ~deps:[ (1, "v"); (3, "v") ] (function
          | [ a; c ] -> F (as_f a +. as_f c)
          | _ -> assert false);
        const ~target:(1, "scale") (I 0);
        rule ~target:(3, "scale") ~deps:[ (3, "len") ] (function
          | [ len ] -> I (-as_i len)
          | _ -> assert false);
      ];
  production b ~name:"list_one" ~lhs:"list" ~rhs:[ "bit" ]
    ~rules:
      [
        copy ~target:(0, "v") ~from:(1, "v");
        const ~target:(0, "len") (I 1);
        copy ~target:(1, "scale") ~from:(0, "scale");
      ];
  production b ~name:"list_more" ~lhs:"list" ~rhs:[ "list"; "bit" ]
    ~rules:
      [
        rule ~target:(0, "v") ~deps:[ (1, "v"); (2, "v") ] (function
          | [ a; c ] -> F (as_f a +. as_f c)
          | _ -> assert false);
        rule ~target:(0, "len") ~deps:[ (1, "len") ] (function
          | [ n ] -> I (as_i n + 1)
          | _ -> assert false);
        rule ~target:(1, "scale") ~deps:[ (0, "scale") ] (function
          | [ s ] -> I (as_i s + 1)
          | _ -> assert false);
        copy ~target:(2, "scale") ~from:(0, "scale");
      ];
  production b ~name:"bit_zero" ~lhs:"bit" ~rhs:[ "zero" ]
    ~rules:[ const ~target:(0, "v") (F 0.0) ];
  production b ~name:"bit_one" ~lhs:"bit" ~rhs:[ "one" ]
    ~rules:
      [
        rule ~target:(0, "v") ~deps:[ (0, "scale") ] (function
          | [ s ] -> F (2.0 ** float_of_int (as_i s))
          | _ -> assert false);
      ];
  freeze b ~start:"num"

let parse_binary g input =
  let parser_t = Parsing.create ~name:"binary" g ~eof:"$" in
  let tokens =
    List.map
      (fun c ->
        let sym =
          match c with
          | '0' -> "zero"
          | '1' -> "one"
          | '.' -> "dot"
          | _ -> Alcotest.fail "bad input char"
        in
        { Driver.t_sym = Grammar.find_symbol g sym; t_value = S (String.make 1 c); t_line = 1 })
      (List.init (String.length input) (String.get input))
  in
  Parsing.parse_list parser_t ~eof_value:(S "") tokens

let test_binary_value () =
  let g = binary_grammar () in
  let check input expected =
    let tree = parse_binary g input in
    let ev = Evaluator.create g ~root_inherited:[] tree in
    Alcotest.(check (float 1e-9)) input expected (as_f (Evaluator.goal ev "v"))
  in
  check "1101" 13.0;
  check "0" 0.0;
  check "1101.01" 13.25;
  check "0.111" 0.875;
  check "1.1" 1.5

let test_binary_analysis () =
  let g = binary_grammar () in
  let a = Analysis.compute g in
  (* list's fraction use makes scale depend on len: two visits *)
  Alcotest.(check int) "list needs 2 visits" 2 (Analysis.visits_of a "list");
  Alcotest.(check int) "bit needs 1 visit" 1 (Analysis.visits_of a "bit");
  let stats = Stats.of_grammar ~name:"binary" g in
  Alcotest.(check int) "max visits" 2 stats.Stats.max_visits;
  Alcotest.(check int) "productions" 6 stats.Stats.productions

let test_staged_matches_demand () =
  let g = binary_grammar () in
  let a = Analysis.compute g in
  let partitions = Analysis.visit_partitions a in
  let tree = parse_binary g "110.101" in
  let ev1 = Evaluator.create g ~root_inherited:[] tree in
  let v_demand = as_f (Evaluator.goal ev1 "v") in
  let ev2 = Evaluator.create g ~root_inherited:[] tree in
  let passes = Evaluator.evaluate_staged ev2 ~partitions in
  Alcotest.(check bool) "at least one pass" true (passes >= 1);
  let v_staged = as_f (Evaluator.goal ev2 "v") in
  Alcotest.(check (float 1e-9)) "same value" v_demand v_staged

(* The static plan agrees with demand too, and its pass count is the one
   the analysis promised. *)
let test_plan_matches_demand () =
  let g = binary_grammar () in
  let a = Analysis.compute g in
  let plan = Analysis.plan a in
  let tree = parse_binary g "110.101" in
  let ev1 = Evaluator.create g ~root_inherited:[] tree in
  let v_demand = as_f (Evaluator.goal ev1 "v") in
  let ev2 = Evaluator.create g ~root_inherited:[] tree in
  let passes = Evaluator.evaluate_plan ev2 ~plan in
  Alcotest.(check int) "passes as planned" (Analysis.plan_passes plan) passes;
  let v_plan = as_f (Evaluator.goal ev2 "v") in
  Alcotest.(check (float 1e-9)) "same value" v_demand v_plan

(* Demand-vs-staged agreement, systematically: for every seed example
   grammar and a spread of inputs, the goal attributes must be equal,
   staged must run at least one pass, and rule applications must be
   sane — demand (goal-reachable only, memoized) never applies more
   rules than staged (which forces everything), and staged never
   exceeds one application per declared attribute per tree node. *)
let check_agreement ?(root_inherited = []) ~msg g tree ~goals ~eq =
  let ev_d = Evaluator.create g ~root_inherited tree in
  let demand_goals = List.map (fun a -> Evaluator.goal ev_d a) goals in
  let demand_apps = Evaluator.rule_applications ev_d in
  let ev_s = Evaluator.create g ~root_inherited tree in
  let partitions = Analysis.visit_partitions (Analysis.compute g) in
  let passes = Evaluator.evaluate_staged ev_s ~partitions in
  let staged_goals = List.map (fun a -> Evaluator.goal ev_s a) goals in
  let staged_apps = Evaluator.rule_applications ev_s in
  Alcotest.(check bool) (msg ^ ": at least one pass") true (passes >= 1);
  List.iter2
    (fun a (d, s) ->
      Alcotest.(check bool) (Printf.sprintf "%s: goal %s agrees" msg a) true (eq d s))
    goals
    (List.combine demand_goals staged_goals);
  Alcotest.(check bool)
    (Printf.sprintf "%s: demand apps (%d) <= staged apps (%d)" msg demand_apps
       staged_apps)
    true (demand_apps <= staged_apps);
  let bound = Tree.size tree * Array.length g.Grammar.attrs in
  Alcotest.(check bool)
    (Printf.sprintf "%s: staged apps (%d) <= nodes x attrs (%d)" msg staged_apps bound)
    true (staged_apps <= bound)

let binary_property =
  QCheck.Test.make ~name:"binary AG computes the numeric value" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 12) bool) (list_of_size (Gen.int_range 0 8) bool))
    (fun (int_bits, frac_bits) ->
      let g = binary_grammar () in
      let string_of bits = String.concat "" (List.map (fun b -> if b then "1" else "0") bits) in
      let input =
        if frac_bits = [] then string_of int_bits
        else string_of int_bits ^ "." ^ string_of frac_bits
      in
      let expected =
        let ipart =
          List.fold_left (fun acc b -> (acc *. 2.0) +. if b then 1.0 else 0.0) 0.0 int_bits
        in
        let fpart, _ =
          List.fold_left
            (fun (acc, scale) b -> ((acc +. if b then 2.0 ** scale else 0.0), scale -. 1.0))
            (0.0, -1.0) frac_bits
        in
        ipart +. fpart
      in
      let tree = parse_binary g input in
      let ev = Evaluator.create g ~root_inherited:[] tree in
      abs_float (as_f (Evaluator.goal ev "v") -. expected) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Attribute classes: MSGS-style merge class and ENV-style copy class,
   exactly the paper's §4.2 example shapes. *)

let classes_grammar () =
  let open Grammar.Builder in
  let b = create () in
  List.iter (fun t -> ignore (terminal b t)) [ "id"; "semi"; "$" ];
  List.iter (fun n -> ignore (nonterminal b n)) [ "goal"; "stmts"; "stmt" ];
  attr_class b ~name:"MSGS" ~dir:Grammar.Synthesized
    ~default:(Grammar.Merge ((fun a b -> L (as_l a @ as_l b)), L []));
  attr_class b ~name:"ENV" ~dir:Grammar.Inherited ~default:Grammar.Copy;
  List.iter
    (fun sym ->
      attr_member b ~sym ~cls:"MSGS";
      attr_member b ~sym ~cls:"ENV")
    [ "goal"; "stmts"; "stmt" ];
  (* goal supplies ENV itself; everything else is implicit *)
  production b ~name:"goal" ~lhs:"goal" ~rhs:[ "stmts" ]
    ~rules:[ const ~target:(1, "ENV") (S "initial-env") ];
  production b ~name:"stmts_one" ~lhs:"stmts" ~rhs:[ "stmt" ] ~rules:[];
  production b ~name:"stmts_more" ~lhs:"stmts" ~rhs:[ "stmts"; "semi"; "stmt" ] ~rules:[];
  (* a stmt reports its identifier as a "message" to observe merge order *)
  production b ~name:"stmt_id" ~lhs:"stmt" ~rhs:[ "id" ]
    ~rules:
      [
        rule ~target:(0, "MSGS") ~deps:[ (1, "VAL") ] (function
          | [ S s ] -> L [ s ]
          | _ -> assert false);
      ];
  freeze b ~start:"goal"

let parse_ids g ids =
  let parser_t = Parsing.create ~name:"classes" g ~eof:"$" in
  let id_sym = Grammar.find_symbol g "id" and semi = Grammar.find_symbol g "semi" in
  let tokens =
    List.concat_map
      (fun name ->
        [
          { Driver.t_sym = id_sym; t_value = S name; t_line = 1 };
          { Driver.t_sym = semi; t_value = S ";"; t_line = 1 };
        ])
      ids
    |> fun l -> List.filteri (fun i _ -> i < (2 * List.length ids) - 1) l
  in
  Parsing.parse_list parser_t ~eof_value:(S "") tokens

(* Copy elision under the plan: the classes grammar is mostly implicit
   copy/merge rules, so the plan must exclude copy targets from forcing,
   elision must cut per-evaluator rule applications, and the goal value
   must not move. *)
let test_plan_elides_copies () =
  let g = classes_grammar () in
  let plan = Analysis.plan (Analysis.compute g) in
  Alcotest.(check bool) "plan excludes copy targets" true
    (Analysis.plan_copy_targets plan > 0);
  let tree = parse_ids g [ "a"; "b"; "c" ] in
  let run ~copy_elide =
    let ev = Evaluator.create g ~copy_elide ~root_inherited:[ ("ENV", S "root-env") ] tree in
    ignore (Evaluator.evaluate_plan ev ~plan);
    (as_l (Evaluator.goal ev "MSGS"), Evaluator.rule_applications ev)
  in
  let msgs_full, apps_full = run ~copy_elide:false in
  let msgs_elided, apps_elided = run ~copy_elide:true in
  Alcotest.(check (list string)) "same MSGS" msgs_full msgs_elided;
  Alcotest.(check bool)
    (Printf.sprintf "elision cuts applications (%d < %d)" apps_elided apps_full)
    true (apps_elided < apps_full)

let test_agreement_all_grammars () =
  let eq_v a b =
    match (a, b) with
    | F x, F y -> abs_float (x -. y) < 1e-9
    | a, b -> a = b
  in
  let g = binary_grammar () in
  List.iter
    (fun input ->
      check_agreement ~msg:("binary " ^ input) g (parse_binary g input)
        ~goals:[ "v" ] ~eq:eq_v)
    [ "0"; "1"; "1101"; "110.101"; "0.111"; "10110101.0011" ];
  let g = classes_grammar () in
  List.iter
    (fun ids ->
      check_agreement
        ~root_inherited:[ ("ENV", S "root-env") ]
        ~msg:("classes " ^ String.concat "," ids)
        g (parse_ids g ids) ~goals:[ "MSGS" ] ~eq:eq_v)
    [ [ "a" ]; [ "a"; "b"; "c" ]; [ "p"; "q"; "r"; "s"; "t" ] ]

let test_merge_class () =
  let g = classes_grammar () in
  let tree = parse_ids g [ "a"; "b"; "c" ] in
  let ev = Evaluator.create g ~root_inherited:[] tree in
  Alcotest.(check (list string)) "messages merged in source order" [ "a"; "b"; "c" ]
    (as_l (Evaluator.goal ev "MSGS"))

let test_copy_class () =
  let g = classes_grammar () in
  let tree = parse_ids g [ "x" ] in
  let ev = Evaluator.create g ~root_inherited:[] tree in
  ignore (Evaluator.goal ev "MSGS");
  (* ENV flows down without any explicit rule below goal *)
  let stats = Stats.of_grammar ~name:"classes" g in
  Alcotest.(check bool)
    "implicit rules are the majority"
    true
    (stats.Stats.rules_implicit * 2 >= stats.Stats.rules_total)

let test_implicit_counts () =
  let g = classes_grammar () in
  let stats = Stats.of_grammar ~name:"classes" g in
  (* goal: MSGS(goal) merge + ENV already explicit => 1 implicit
     stmts_one: MSGS up + ENV down => 2
     stmts_more: MSGS up + ENV down x2 => 3
     stmt_id: ENV unused below, no rhs nonterminal => 0; MSGS explicit *)
  Alcotest.(check int) "implicit rule count" 6 stats.Stats.rules_implicit;
  Alcotest.(check int) "explicit rule count" 2
    (stats.Stats.rules_total - stats.Stats.rules_implicit)

(* ------------------------------------------------------------------ *)
(* Circularity detection *)

let circular_grammar () =
  let open Grammar.Builder in
  let b = create () in
  ignore (terminal b "x");
  ignore (terminal b "$");
  ignore (nonterminal b "a");
  ignore (nonterminal b "goal");
  attr b ~sym:"goal" ~name:"out" ~dir:Grammar.Synthesized;
  attr b ~sym:"a" ~name:"i" ~dir:Grammar.Inherited;
  attr b ~sym:"a" ~name:"s" ~dir:Grammar.Synthesized;
  (* goal feeds a's synthesized result back as its inherited input *)
  production b ~name:"goal" ~lhs:"goal" ~rhs:[ "a" ]
    ~rules:
      [
        copy ~target:(0, "out") ~from:(1, "s");
        copy ~target:(1, "i") ~from:(1, "s");
      ];
  production b ~name:"a_x" ~lhs:"a" ~rhs:[ "x" ]
    ~rules:[ copy ~target:(0, "s") ~from:(0, "i") ];
  freeze b ~start:"goal"

let test_circularity_static () =
  let g = circular_grammar () in
  match Analysis.compute g with
  | _ -> Alcotest.fail "expected Circular"
  | exception Analysis.Circular { prod_name; _ } ->
    Alcotest.(check string) "detected in goal production" "goal" prod_name

let test_circularity_dynamic () =
  let g = circular_grammar () in
  let x = Grammar.find_symbol g "x" in
  let tree =
    Tree.node 0 [ Tree.node 1 [ Tree.leaf ~term:x ~value:(S "x") ~line:1 ] ]
  in
  let ev = Evaluator.create g ~root_inherited:[] tree in
  match Evaluator.goal ev "out" with
  | _ -> Alcotest.fail "expected Cycle"
  | exception Evaluator.Cycle _ -> ()

(* ------------------------------------------------------------------ *)
(* Builder validation *)

let test_reject_bad_rule () =
  let open Grammar.Builder in
  let mk () =
    let b = create () in
    ignore (terminal b "x");
    ignore (terminal b "$");
    ignore (nonterminal b "g");
    attr b ~sym:"g" ~name:"s" ~dir:Grammar.Synthesized;
    attr b ~sym:"g" ~name:"i" ~dir:Grammar.Inherited;
    (* illegal: defines the inherited attribute of the lhs *)
    production b ~name:"g" ~lhs:"g" ~rhs:[ "x" ]
      ~rules:[ const ~target:(0, "s") (I 1); const ~target:(0, "i") (I 2) ];
    freeze b ~start:"g"
  in
  match mk () with
  | _ -> Alcotest.fail "expected Ill_formed"
  | exception Grammar.Ill_formed _ -> ()

let test_reject_missing_rule () =
  let open Grammar.Builder in
  let mk () =
    let b = create () in
    ignore (terminal b "x");
    ignore (terminal b "$");
    ignore (nonterminal b "g");
    attr b ~sym:"g" ~name:"s" ~dir:Grammar.Synthesized;
    production b ~name:"g" ~lhs:"g" ~rhs:[ "x" ] ~rules:[];
    freeze b ~start:"g"
  in
  match mk () with
  | _ -> Alcotest.fail "expected Ill_formed (no rule for s)"
  | exception Grammar.Ill_formed _ -> ()

let test_reject_duplicate_rule () =
  let open Grammar.Builder in
  let mk () =
    let b = create () in
    ignore (terminal b "x");
    ignore (terminal b "$");
    ignore (nonterminal b "g");
    attr b ~sym:"g" ~name:"s" ~dir:Grammar.Synthesized;
    production b ~name:"g" ~lhs:"g" ~rhs:[ "x" ]
      ~rules:[ const ~target:(0, "s") (I 1); const ~target:(0, "s") (I 2) ];
    freeze b ~start:"g"
  in
  match mk () with
  | _ -> Alcotest.fail "expected Ill_formed (duplicate)"
  | exception Grammar.Ill_formed _ -> ()

(* the full principal VHDL AG passes the strong-noncircularity test — the
   paper's §5.2 worry ("a change in the dependencies of a semantic rule in
   one production can combine with a hitherto legal dependency in some far
   removed production to produce a circularity") *)
let test_principal_ag_noncircular () =
  let g = Main_grammar.grammar () in
  let a = Analysis.compute g in
  let parts = Analysis.visit_partitions a in
  Alcotest.(check bool) "orderable" true (Array.length parts > 0);
  let s = Stats.of_grammar ~name:"principal" (Main_grammar.grammar ()) in
  Alcotest.(check bool) "implicit rules are the majority (TBL-IMPLICIT)" true
    (Stats.implicit_fraction s > 0.5)

(* staged (plan-based) evaluation of the principal AG produces the same
   compiled units as demand evaluation *)
let test_staged_principal () =
  let source =
    "entity e is\n  port (a : in bit; y : out bit);\nend e;\n\narchitecture r of e is\nbegin\n  y <= not a after 1 ns;\nend r;"
  in
  let compile_with forcing =
    let session = Session.in_memory [] in
    Session.with_session session (fun () ->
        let g = Main_grammar.grammar () in
        let parser_ = Main_grammar.parser_ () in
        let tokens = Analyze.tokens_of_source source in
        let tree = Parsing.parse_list parser_ ~eof_value:Pval.Unit tokens in
        let ev =
          Evaluator.create
            ~token_line:(fun n -> Pval.Int n)
            g
            ~root_inherited:
              [
                ("ENV", Pval.Env Env.empty); ("LEVEL", Pval.Int (-1));
                ("UNITNAME", Pval.Str "WORK.X"); ("CTX", Pval.Str "arch");
                ("SLOTBASE", Pval.Int 0); ("SIGBASE", Pval.Int 0);
                ("LOOPDEPTH", Pval.Int 0); ("RETTY", Pval.Opt None);
                ("CTXOUT", Pval.Out Pval.out_empty); ("NLINES", Pval.Int 7);
              ]
            tree
        in
        forcing g ev;
        List.map
          (fun (u : Unit_info.compiled_unit) -> u.Unit_info.u_key)
          (Pval.as_units (Evaluator.goal ev "UNITS")))
  in
  let demand = compile_with (fun _ _ -> ()) in
  let staged =
    compile_with (fun g ev ->
        let partitions = Analysis.visit_partitions (Analysis.compute g) in
        ignore (Evaluator.evaluate_staged ev ~partitions))
  in
  Alcotest.(check (list string)) "same units" demand staged;
  let planned =
    compile_with (fun g ev ->
        ignore (Evaluator.evaluate_plan ev ~plan:(Analysis.plan (Analysis.compute g))))
  in
  Alcotest.(check (list string)) "plan: same units" demand planned

let suite =
  [
    Alcotest.test_case "binary numbers evaluate" `Quick test_binary_value;
    Alcotest.test_case "principal AG is strongly noncircular" `Quick
      test_principal_ag_noncircular;
    Alcotest.test_case "staged evaluation of the principal AG" `Quick test_staged_principal;
    Alcotest.test_case "binary analysis: visits" `Quick test_binary_analysis;
    Alcotest.test_case "staged evaluation matches demand" `Quick test_staged_matches_demand;
    Alcotest.test_case "plan evaluation matches demand" `Quick test_plan_matches_demand;
    Alcotest.test_case "plan elides copy chains" `Quick test_plan_elides_copies;
    Alcotest.test_case "demand/staged agreement across example grammars" `Quick
      test_agreement_all_grammars;
    QCheck_alcotest.to_alcotest binary_property;
    Alcotest.test_case "merge class concatenates in order" `Quick test_merge_class;
    Alcotest.test_case "copy class threads values implicitly" `Quick test_copy_class;
    Alcotest.test_case "implicit rule counting" `Quick test_implicit_counts;
    Alcotest.test_case "static circularity detection" `Quick test_circularity_static;
    Alcotest.test_case "dynamic cycle detection" `Quick test_circularity_dynamic;
    Alcotest.test_case "reject rule for inherited lhs attribute" `Quick test_reject_bad_rule;
    Alcotest.test_case "reject missing synthesized rule" `Quick test_reject_missing_rule;
    Alcotest.test_case "reject duplicate rule" `Quick test_reject_duplicate_rule;
  ]
