(* Robustness: malformed programs must produce diagnostics (or structured
   errors) — never internal failures or crashes.  The corpus covers the
   error classes the paper's sections 3.1-3.4 worry about. *)

let never_crashes src =
  let c = Vhdl_compiler.create () in
  match Vhdl_compiler.compile ~fail_on_error:false c src with
  | _ -> true
  | exception Vhdl_compiler.Compile_error _ -> true
  | exception Pval.Internal _ -> false
  | exception Grammar.Ill_formed _ -> false

let check src = Alcotest.(check bool) ("no crash: " ^ String.escaped src) true (never_crashes src)

let expect_rejected src =
  let c = Vhdl_compiler.create () in
  match Vhdl_compiler.compile c src with
  | _ -> Alcotest.failf "expected rejection: %s" (String.escaped src)
  | exception Vhdl_compiler.Compile_error _ -> ()

let corpus =
  [
    (* syntax errors *)
    "entity";
    "entity x is";
    "entity x is end y;;";
    "architecture a of;";
    "garbage tokens everywhere";
    ");;((";
    (* name errors *)
    "entity t is end t;\narchitecture a of t is\nbegin\n  nosuch <= 1;\nend a;";
    "entity t is end t;\narchitecture a of t is\n  signal s : missing_type;\nbegin\nend a;";
    "architecture a of missing_entity is\nbegin\nend a;";
    (* type errors *)
    "entity t is end t;\narchitecture a of t is\n  signal s : bit := 42;\nbegin\nend a;";
    "entity t is end t;\narchitecture a of t is\n  signal s : integer := '1';\nbegin\nend a;";
    "entity t is end t;\narchitecture a of t is\n  signal s : integer;\nbegin\n  s <= true and 1;\nend a;";
    (* structure errors *)
    "entity t is end t;\narchitecture a of t is\n  variable v : integer;\nbegin\nend a;";
    "entity t is end t;\narchitecture a of t is\nbegin\n  p : process (nosig)\n  begin\n  end process;\nend a;";
    "entity t is end t;\narchitecture a of t is\nbegin\n  u : missing_component port map (x => 1);\nend a;";
    (* subprogram errors *)
    "entity t is end t;\narchitecture a of t is\n  function f (x : integer) return integer is\n  begin\n    return true;\n  end f;\nbegin\nend a;";
    "entity t is end t;\narchitecture a of t is\nbegin\n  p : process\n  begin\n    return 1;\n    wait;\n  end process;\nend a;";
    (* case/choice errors *)
    "entity t is end t;\narchitecture a of t is\n  signal s : integer;\nbegin\n  p : process\n    variable v : integer := 0;\n  begin\n    case v is\n      when v => s <= 1;\n    end case;\n    wait;\n  end process;\nend a;";
    (* use clause errors *)
    "use work.nopackage.all;\nentity t is end t;\narchitecture a of t is\nbegin\nend a;";
    "use nolib.pkg.all;\nentity t is end t;\narchitecture a of t is\nbegin\nend a;";
    (* configuration errors *)
    "configuration c of missing is\n  for a\n  end for;\nend c;";
    (* homograph / redeclaration shenanigans *)
    "entity t is end t;\narchitecture a of t is\n  signal s : bit;\n  signal s : bit;\nbegin\nend a;";
    (* deep nesting *)
    "entity t is end t;\narchitecture a of t is\nbegin\n  p : process\n  begin\n    if true then if true then if true then if true then\n      null;\n    end if; end if; end if; end if;\n    wait;\n  end process;\nend a;";
    (* escape-audit probes: each of these once pointed at a raw
       invalid_arg / assert false; they must answer with diagnostics *)
    "entity t is end t;\narchitecture a of t is\n  type r is record\n    f : integer;\n  end record;\n  signal x, y : r;\n  signal b : boolean;\nbegin\n  b <= x < y;\nend a;";
    "entity t is end t;\narchitecture a of t is\nbegin\n  p : process\n  begin\n    assert false report 42;\n    wait;\n  end process;\nend a;";
    "entity t is end t;\narchitecture a of t is\n  signal s : bit;\nbegin\n  p : process\n  begin\n    if s then\n      null;\n    end if;\n    wait;\n  end process;\nend a;";
    "entity t is end t;\narchitecture a of t is\n  function \"++\" (x : integer) return integer is\n  begin\n    return x;\n  end;\nbegin\nend a;";
    (* empty-ish inputs *)
    "";
    "-- just a comment\n";
  ]

let test_corpus () = List.iter check corpus

let test_rejections () =
  List.iter expect_rejected
    [
      "entity t is end t;\narchitecture a of t is\nbegin\n  nosuch <= 1;\nend a;";
      "entity t is end t;\narchitecture a of t is\n  signal s : bit := 42;\nbegin\nend a;";
      "entity t is end t;\narchitecture a of t is\n  variable v : integer;\nbegin\nend a;";
      "entity t is end t;\narchitecture a of t is\nbegin\n  p : process\n  begin\n    return 1;\n    wait;\n  end process;\nend a;";
      (* record ordering and a non-STRING report expression must be user
         diagnostics, not Value/Std invalid_arg escapes *)
      "entity t is end t;\narchitecture a of t is\n  type r is record\n    f : integer;\n  end record;\n  signal x, y : r;\n  signal b : boolean;\nbegin\n  b <= x < y;\nend a;";
      "entity t is end t;\narchitecture a of t is\nbegin\n  p : process\n  begin\n    assert false report 42;\n    wait;\n  end process;\nend a;";
    ]

(* end-name mismatches are diagnosed but not fatal to unit construction *)
let test_end_name_mismatch () =
  let c = Vhdl_compiler.create () in
  (match
     Vhdl_compiler.compile ~fail_on_error:false c
       "entity good is end wrong;\narchitecture a of good is\nbegin\nend alsowrong;"
   with
  | _ -> ()
  | exception _ -> Alcotest.fail "should not be fatal");
  let msgs = Vhdl_compiler.diagnostics c in
  Alcotest.(check bool) "mismatch diagnosed" true
    (List.exists (fun d -> Astring_contains.contains d.Diag.message "mismatched") msgs)

(* a sensitivity-list process containing wait is illegal (LRM 9.2) *)
(* LRM 8.x: functions may neither assign signals nor wait *)
let test_function_purity () =
  expect_rejected
    "entity t is end t;\narchitecture a of t is\n  signal s : bit;\nbegin\n  p : process\n    function f return integer is\n    begin\n      s <= '1';\n      return 1;\n    end f;\n    variable v : integer;\n  begin\n    v := f;\n    wait;\n  end process;\nend a;";
  expect_rejected
    "entity t is end t;\narchitecture a of t is\nbegin\n  p : process\n    function f return integer is\n    begin\n      wait for 1 ns;\n      return 1;\n    end f;\n    variable v : integer;\n  begin\n    v := f;\n    wait;\n  end process;\nend a;"

let test_homograph_rejected () =
  expect_rejected
    "entity t is end t;\narchitecture a of t is\n  signal s : bit;\n  signal s : bit;\nbegin\nend a;";
  expect_rejected
    "entity t is end t;\narchitecture a of t is\n  signal s : bit;\n  constant s : integer := 1;\nbegin\nend a;";
  (* overloadable kinds may share a name *)
  let c = Vhdl_compiler.create () in
  (match
     Vhdl_compiler.compile c
       "entity t is end t;\narchitecture a of t is\n  function f (x : integer) return integer is\n  begin\n    return x;\n  end f;\n  function f (x : bit) return integer is\n  begin\n    return 0;\n  end f;\nbegin\nend a;"
   with
  | _ -> ()
  | exception Vhdl_compiler.Compile_error _ ->
    Alcotest.fail "overloaded functions must be accepted")

let test_descending_waveform_rejected () =
  expect_rejected
    "entity t is end t;\narchitecture a of t is\n  signal s : bit;\nbegin\n  p : process\n  begin\n    s <= '1' after 20 ns, '0' after 10 ns;\n    wait;\n  end process;\nend a;"

let test_sensitivity_plus_wait () =
  expect_rejected
    "entity t is end t;\narchitecture a of t is\n  signal s : bit;\nbegin\n  p : process (s)\n  begin\n    wait for 1 ns;\n  end process;\nend a;"

(* random token soup never crashes the compiler *)
let fuzz_tokens =
  let words =
    [|
      "entity"; "architecture"; "is"; "end"; "begin"; "process"; "signal"; "of";
      "if"; "then"; "wait"; "for"; "("; ")"; ";"; ":"; "<="; ":="; ","; "'1'";
      "42"; "x"; "y"; "bit"; "integer"; "+"; "*"; "=>"; "when"; "case"; "loop";
      "\"s\""; "."; "'"; "use"; "work"; "all"; "port"; "map"; "type"; "array";
    |]
  in
  QCheck.Test.make ~name:"random token soup never crashes" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 (Array.length words - 1)))
    (fun picks ->
      let src = String.concat " " (List.map (fun i -> words.(i)) picks) in
      never_crashes src)

(* mutation fuzz: start from a *valid* generated design, damage it with a
   few random token-level edits (delete / duplicate / swap), and require
   the compiler to answer with diagnostics or success — never a crash.
   Mutations of valid programs probe much deeper paths than token soup:
   most of the program still makes sense, so analysis proceeds far past
   the parser before hitting the damage. *)
let fuzz_mutations =
  let split_words src =
    String.split_on_char '\n' src
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun w -> w <> "")
  in
  let gen =
    QCheck.Gen.(
      map3
        (fun pick edits seeds -> (pick, edits, seeds))
        (int_range 0 2)
        (int_range 1 4)
        (list_size (return 8) (int_range 0 1_000_000)))
  in
  let arb =
    QCheck.make gen ~print:(fun (pick, edits, _) ->
        Printf.sprintf "base %d with %d edits" pick edits)
  in
  QCheck.Test.make ~name:"mutated valid designs never crash" ~count:120 arb
    (fun (pick, edits, seeds) ->
      let base =
        match pick with
        | 0 -> Workload.behavioral ~name:"m0" ~states:3 ~exprs:4
        | 1 -> Workload.package ~name:"m1" ~n:5
        | _ -> Workload.expression_heavy ~n:4
      in
      let words = Array.of_list (split_words base) in
      let words = ref (Array.to_list words) in
      let seeds = Array.of_list seeds in
      for k = 0 to edits - 1 do
        let ws = Array.of_list !words in
        let n = Array.length ws in
        if n > 2 then begin
          let at = seeds.(2 * k mod 8) mod n in
          match seeds.((2 * k + 1) mod 8) mod 3 with
          | 0 ->
            (* delete *)
            words := Array.to_list ws |> List.filteri (fun i _ -> i <> at)
          | 1 ->
            (* duplicate *)
            words :=
              List.concat
                (List.mapi (fun i w -> if i = at then [ w; w ] else [ w ]) (Array.to_list ws))
          | _ ->
            (* swap with neighbour *)
            let j = (at + 1) mod n in
            let tmp = ws.(at) in
            ws.(at) <- ws.(j);
            ws.(j) <- tmp;
            words := Array.to_list ws
        end
      done;
      never_crashes (String.concat " " !words))

(* ------------------------------------------------------------------ *)
(* Crash containment: parser recovery, the per-unit firewall, budgets *)

(* One compile reports *all* syntax errors at stable lines, and the
   well-formed sibling units still reach the library. *)
let test_multi_error_recovery () =
  let src =
    String.concat "\n"
      [
        "entity good1 is end good1;";
        "entity bad1 is";
        "  port garbage ( ;";
        "end bad1;";
        "entity good2 is end good2;";
        "architecture broken of good1 is";
        "  signal s : ) bit;";
        "end broken;";
        "entity good3 is end good3;";
        "package bad2 is";
        "  constant c : := 1;";
        "end bad2;";
        "entity good4 is end good4;";
      ]
  in
  let c = Vhdl_compiler.create () in
  let units = Vhdl_compiler.compile ~fail_on_error:false c src in
  let error_lines =
    Vhdl_compiler.diagnostics c
    |> List.filter Diag.is_error
    |> List.map (fun d -> d.Diag.line)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "one error per damaged unit, stable lines"
    [ 3; 7; 11 ] error_lines;
  let keys = List.map (fun (u : Unit_info.compiled_unit) -> u.Unit_info.u_key) units in
  List.iter
    (fun k -> Alcotest.(check bool) ("sibling survives: " ^ k) true (List.mem k keys))
    [ "entity:GOOD1"; "entity:GOOD2"; "entity:GOOD3"; "entity:GOOD4" ]

(* An internal exception injected into one unit's analysis becomes an
   internal-error diagnostic tagged with phase and unit; siblings compile. *)
let test_poisoned_unit_firewall () =
  let src =
    "entity good1 is end good1;\nentity bad is end bad;\nentity good2 is end good2;"
  in
  let c = Vhdl_compiler.create () in
  let units =
    Difftest_fault.with_poison "entity:BAD" (fun () ->
        Vhdl_compiler.compile ~fail_on_error:false c src)
  in
  let internals = List.filter Diag.is_internal (Vhdl_compiler.diagnostics c) in
  (match internals with
  | [ d ] -> (
    match d.Diag.origin with
    | Diag.Internal { phase; unit_name } ->
      Alcotest.(check string) "phase" "analysis" phase;
      Alcotest.(check (option string)) "unit" (Some "entity BAD") unit_name
    | _ -> Alcotest.fail "expected Internal origin")
  | ds -> Alcotest.failf "expected exactly one internal diagnostic, got %d" (List.length ds));
  let keys = List.map (fun (u : Unit_info.compiled_unit) -> u.Unit_info.u_key) units in
  Alcotest.(check bool) "good1 survives" true (List.mem "entity:GOOD1" keys);
  Alcotest.(check bool) "good2 survives" true (List.mem "entity:GOOD2" keys);
  Alcotest.(check bool) "poisoned unit reported" true
    (List.exists
       (fun r -> r.Supervisor.ur_status = Supervisor.Poisoned)
       (Vhdl_compiler.last_report c))

(* Pathological nesting is a diagnostic, not a Stack_overflow (the parse
   stack is depth-limited); moderate nesting still compiles. *)
let deep_parens n =
  Printf.sprintf
    "entity t is end t;\narchitecture a of t is\n  signal s : integer;\nbegin\n  s <= %s1%s;\nend a;"
    (String.concat "" (List.init n (fun _ -> "(")))
    (String.concat "" (List.init n (fun _ -> ")")))

let test_deep_nesting () =
  let c = Vhdl_compiler.create () in
  (match Vhdl_compiler.compile ~fail_on_error:false c (deep_parens 6000) with
  | _ -> ()
  | exception Vhdl_compiler.Compile_error _ -> ());
  Alcotest.(check bool) "deep nesting diagnosed" true
    (List.exists
       (fun d -> Astring_contains.contains d.Diag.message "nesting deeper")
       (Vhdl_compiler.diagnostics c));
  let c2 = Vhdl_compiler.create () in
  match Vhdl_compiler.compile c2 (deep_parens 500) with
  | _ -> ()
  | exception Vhdl_compiler.Compile_error ds ->
    Alcotest.failf "500-deep nesting should compile: %s"
      (Format.asprintf "%a" Diag.pp_list ds)

(* Exhausted evaluator fuel surfaces as a budget diagnostic and the
   remaining units show up as skipped in the partial-result report. *)
let test_eval_fuel_budget () =
  let budgets = { Supervisor.no_budgets with Supervisor.eval_fuel = Some 50 } in
  let c = Vhdl_compiler.create ~budgets () in
  let src = Workload.behavioral ~name:"fueltest" ~states:3 ~exprs:4 in
  (match Vhdl_compiler.compile ~fail_on_error:false c src with
  | _ -> ()
  | exception Vhdl_compiler.Compile_error _ -> ());
  Alcotest.(check bool) "budget diagnostic" true
    (Diag.has_budget (Vhdl_compiler.diagnostics c));
  Alcotest.(check bool) "remaining units skipped" true
    (List.exists
       (fun r -> r.Supervisor.ur_status = Supervisor.Skipped)
       (Vhdl_compiler.last_report c))

(* An already-expired deadline trips on the evaluator's tick hook. *)
let test_deadline_budget () =
  let budgets = { Supervisor.no_budgets with Supervisor.deadline_s = Some (-1.0) } in
  let c = Vhdl_compiler.create ~budgets () in
  let src = Workload.behavioral ~name:"deadlinetest" ~states:4 ~exprs:6 in
  (match Vhdl_compiler.compile ~fail_on_error:false c src with
  | _ -> ()
  | exception Vhdl_compiler.Compile_error _ -> ());
  Alcotest.(check bool) "deadline diagnostic" true
    (Diag.has_budget (Vhdl_compiler.diagnostics c))

(* The elaboration step budget turns a too-large hierarchy into a
   Compile_error carrying a budget diagnostic. *)
let test_elab_budget () =
  let budgets = { Supervisor.no_budgets with Supervisor.elab_steps = Some 2 } in
  let c = Vhdl_compiler.create ~budgets () in
  ignore
    (Vhdl_compiler.compile c
       "entity t is end t;\narchitecture a of t is\n  signal x : integer := 0;\n  signal y : integer := 0;\nbegin\n  p : process\n  begin\n    x <= 1;\n    wait;\n  end process;\n  q : process\n  begin\n    y <= 2;\n    wait;\n  end process;\nend a;");
  match Vhdl_compiler.elaborate c ~top:"t" () with
  | _ -> Alcotest.fail "elaboration should exhaust its step budget"
  | exception Vhdl_compiler.Compile_error ds ->
    Alcotest.(check bool) "budget diagnostic" true (Diag.has_budget ds)

(* A zero-delay process loop exhausts the per-instant step fuel: the run
   ends with the Fuel_exhausted outcome instead of spinning forever. *)
let test_sim_step_fuel () =
  let budgets = { Supervisor.no_budgets with Supervisor.sim_step_fuel = Some 10 } in
  let c = Vhdl_compiler.create ~budgets () in
  ignore
    (Vhdl_compiler.compile c
       "entity t is end t;\narchitecture a of t is\n  signal s : integer := 0;\nbegin\n  p : process\n  begin\n    s <= s + 1;\n    wait for 0 ns;\n  end process;\nend a;");
  let sim = Vhdl_compiler.elaborate c ~top:"t" () in
  match Vhdl_compiler.run c sim ~max_ns:5 with
  | Kernel.Fuel_exhausted -> ()
  | o ->
    Alcotest.failf "expected fuel exhaustion, got %s"
      (match o with
      | Kernel.Quiescent -> "quiescent"
      | Kernel.Time_limit -> "time-limit"
      | Kernel.Stopped -> "stopped"
      | Kernel.Fuel_exhausted -> "fuel-exhausted")

let suite =
  [
    Alcotest.test_case "error corpus never crashes" `Quick test_corpus;
    Alcotest.test_case "bad programs are rejected" `Quick test_rejections;
    Alcotest.test_case "end-name mismatch is diagnosed" `Quick test_end_name_mismatch;
    Alcotest.test_case "sensitivity list + wait rejected" `Quick test_sensitivity_plus_wait;
    Alcotest.test_case "functions may not assign signals or wait" `Quick test_function_purity;
    Alcotest.test_case "homographs rejected, overloads accepted" `Quick test_homograph_rejected;
    Alcotest.test_case "descending waveforms rejected" `Quick test_descending_waveform_rejected;
    Alcotest.test_case "multi-error recovery: all errors, siblings compile" `Quick
      test_multi_error_recovery;
    Alcotest.test_case "poisoned unit is contained, siblings compile" `Quick
      test_poisoned_unit_firewall;
    Alcotest.test_case "deep nesting is a diagnostic, not an overflow" `Quick
      test_deep_nesting;
    Alcotest.test_case "evaluator fuel exhausts into a budget diagnostic" `Quick
      test_eval_fuel_budget;
    Alcotest.test_case "compile deadline exhausts into a budget diagnostic" `Quick
      test_deadline_budget;
    Alcotest.test_case "elaboration step budget is enforced" `Quick test_elab_budget;
    Alcotest.test_case "per-instant sim step fuel is enforced" `Quick test_sim_step_fuel;
    QCheck_alcotest.to_alcotest fuzz_tokens;
    QCheck_alcotest.to_alcotest fuzz_mutations;
  ]
