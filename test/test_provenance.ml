(* The attribute-provenance recorder: graph shape on a small AG, the
   why-chain printer and DOT export, the cascade-crossing chain on a real
   compile, the hot-rule profiler's telemetry cross-check, and the guard
   that a disarmed recorder costs (essentially) nothing. *)

module Tm = Vhdl_telemetry.Telemetry
module Driver = Vhdl_lalr.Driver

let corpus_path name =
  let dir =
    if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"
  in
  Filename.concat dir name

let read_corpus name = Vhdl_util.Unix_compat.read_file (corpus_path name)

(* ------------------------------------------------------------------ *)
(* A small AG with both attribute directions: Knuth's binary numbers
   (same shape as the test_ag grammar). *)

type v =
  | I of int
  | F of float
  | S of string

let as_i = function
  | I n -> n
  | _ -> Alcotest.fail "expected int value"

let as_f = function
  | F x -> x
  | I n -> float_of_int n
  | _ -> Alcotest.fail "expected float value"

let summarize = function
  | I n -> string_of_int n
  | F x -> Printf.sprintf "%g" x
  | S s -> s

let binary_grammar () =
  let open Grammar.Builder in
  let b = create () in
  List.iter (fun t -> ignore (terminal b t)) [ "zero"; "one"; "dot"; "$" ];
  List.iter (fun n -> ignore (nonterminal b n)) [ "num"; "list"; "bit" ];
  attr b ~sym:"num" ~name:"v" ~dir:Grammar.Synthesized;
  List.iter
    (fun sym ->
      attr b ~sym ~name:"v" ~dir:Grammar.Synthesized;
      attr b ~sym ~name:"scale" ~dir:Grammar.Inherited)
    [ "list"; "bit" ];
  attr b ~sym:"list" ~name:"len" ~dir:Grammar.Synthesized;
  production b ~name:"num_int" ~lhs:"num" ~rhs:[ "list" ]
    ~rules:
      [ copy ~target:(0, "v") ~from:(1, "v"); const ~target:(1, "scale") (I 0) ];
  production b ~name:"num_frac" ~lhs:"num" ~rhs:[ "list"; "dot"; "list" ]
    ~rules:
      [
        rule ~target:(0, "v") ~deps:[ (1, "v"); (3, "v") ] (function
          | [ a; c ] -> F (as_f a +. as_f c)
          | _ -> assert false);
        const ~target:(1, "scale") (I 0);
        rule ~target:(3, "scale") ~deps:[ (3, "len") ] (function
          | [ len ] -> I (-as_i len)
          | _ -> assert false);
      ];
  production b ~name:"list_one" ~lhs:"list" ~rhs:[ "bit" ]
    ~rules:
      [
        copy ~target:(0, "v") ~from:(1, "v");
        const ~target:(0, "len") (I 1);
        copy ~target:(1, "scale") ~from:(0, "scale");
      ];
  production b ~name:"list_more" ~lhs:"list" ~rhs:[ "list"; "bit" ]
    ~rules:
      [
        rule ~target:(0, "v") ~deps:[ (1, "v"); (2, "v") ] (function
          | [ a; c ] -> F (as_f a +. as_f c)
          | _ -> assert false);
        rule ~target:(0, "len") ~deps:[ (1, "len") ] (function
          | [ n ] -> I (as_i n + 1)
          | _ -> assert false);
        rule ~target:(1, "scale") ~deps:[ (0, "scale") ] (function
          | [ s ] -> I (as_i s + 1)
          | _ -> assert false);
        copy ~target:(2, "scale") ~from:(0, "scale");
      ];
  (* reads the terminal's VAL so the graph gets Token records *)
  production b ~name:"bit_zero" ~lhs:"bit" ~rhs:[ "zero" ]
    ~rules:
      [
        rule ~target:(0, "v") ~deps:[ (1, "VAL") ] (function
          | [ S _ ] -> F 0.0
          | _ -> assert false);
      ];
  production b ~name:"bit_one" ~lhs:"bit" ~rhs:[ "one" ]
    ~rules:
      [
        rule ~target:(0, "v") ~deps:[ (0, "scale") ] (function
          | [ s ] -> F (2.0 ** float_of_int (as_i s))
          | _ -> assert false);
      ];
  freeze b ~start:"num"

let parse_binary g input =
  let parser_t = Parsing.create ~name:"binary" g ~eof:"$" in
  let tokens =
    List.map
      (fun c ->
        let sym =
          match c with
          | '0' -> "zero"
          | '1' -> "one"
          | '.' -> "dot"
          | _ -> Alcotest.fail "bad input char"
        in
        {
          Driver.t_sym = Grammar.find_symbol g sym;
          t_value = S (String.make 1 c);
          t_line = 1;
        })
      (List.init (String.length input) (String.get input))
  in
  Parsing.parse_list parser_t ~eof_value:(S "") tokens

let eval_recorded input =
  let g = binary_grammar () in
  let tree = parse_binary g input in
  let rc = Provenance.create () in
  let ev = Evaluator.create g ~provenance:(rc, "bin", summarize) ~root_inherited:[] tree in
  (rc, Evaluator.goal ev "v")

(* ------------------------------------------------------------------ *)
(* Graph shape *)

let test_graph_shape () =
  let rc, v = eval_recorded "110.101" in
  Alcotest.(check (float 1e-9)) "value unchanged by recording" 6.625 (as_f v);
  let records = Provenance.records rc in
  Alcotest.(check bool) "records were made" true (List.length records > 10);
  (* the goal instance begins first, so it is record 0 *)
  let goal = List.hd records in
  Alcotest.(check string) "goal attribute" "v" goal.Provenance.r_attr;
  Alcotest.(check string) "goal production" "num_frac" goal.Provenance.r_prod;
  Alcotest.(check string) "goal value summary" "6.625" goal.Provenance.r_value;
  (* every edge resolves, nothing aborted, kinds are classified *)
  List.iter
    (fun (r : Provenance.record) ->
      Alcotest.(check bool) "not aborted" false r.Provenance.r_aborted;
      Alcotest.(check bool)
        (Printf.sprintf "record %d classified" r.Provenance.r_id)
        true
        (r.Provenance.r_kind <> Provenance.Unknown);
      List.iter
        (fun dep ->
          Alcotest.(check bool)
            (Printf.sprintf "edge %d -> %d resolves" r.Provenance.r_id dep)
            true
            (Provenance.get rc dep <> None))
        r.Provenance.r_deps)
    records;
  Alcotest.(check bool) "token records present" true
    (List.exists (fun r -> r.Provenance.r_kind = Provenance.Token) records);
  (* find addresses the goal by (node, attr) *)
  (match Provenance.find rc ~node:goal.Provenance.r_node ~attr:"v" with
  | Some r -> Alcotest.(check int) "find returns the goal" 0 r.Provenance.r_id
  | None -> Alcotest.fail "find lost the goal instance");
  (* the shared inherited scale is read twice in list_more: a memo edge *)
  Alcotest.(check bool) "memo hits recorded" true
    (List.exists (fun r -> r.Provenance.r_memo_hits > 0) records)

(* ------------------------------------------------------------------ *)
(* The why-chain printer and DOT export *)

let chain rc ~depth id =
  Format.asprintf "%a" (fun fmt id -> Provenance.pp_why_chain ~depth rc fmt id) id

let test_why_chain () =
  let rc, _ = eval_recorded "10.1" in
  let text = chain rc ~depth:12 0 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("chain mentions " ^ needle) true
        (Astring_contains.contains text needle))
    [ ".v @ num_frac"; "scale"; "len"; "[token"; "(bin" ];
  (* the root line is unindented, dependencies are indented below it *)
  (match String.index_opt text '\n' with
  | Some i ->
    Alcotest.(check bool) "root line first" true
      (Astring_contains.contains (String.sub text 0 i) ".v @ num_frac")
  | None -> Alcotest.fail "chain has one line only");
  Alcotest.(check bool) "dependencies indented" true
    (Astring_contains.contains text "\n  ");
  (* the depth bound elides, and says so *)
  let shallow = chain rc ~depth:1 0 in
  Alcotest.(check bool) "depth bound announced" true
    (Astring_contains.contains shallow "below the depth bound");
  Alcotest.(check bool) "shallow chain is shorter" true
    (String.length shallow < String.length text)

let test_dot_export () =
  let rc, _ = eval_recorded "10.1" in
  let dot = Provenance.to_dot rc ~root:0 in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 7 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "has edges" true (Astring_contains.contains dot " -> ");
  Alcotest.(check bool) "has labeled boxes" true
    (Astring_contains.contains dot "num_frac")

(* ------------------------------------------------------------------ *)
(* A real compile: the chain crosses the expression-AG cascade boundary,
   and the profiler's totals agree with the telemetry counter. *)

let compile_recorded name =
  Tm.reset ();
  let rc = Provenance.create () in
  let c = Vhdl_compiler.create ~provenance:rc () in
  ignore (Vhdl_compiler.compile c (read_corpus name));
  (rc, c)

let reachable rc root_id =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Provenance.get rc id with
      | Some r -> List.iter go r.Provenance.r_deps
      | None -> ()
    end
  in
  go root_id;
  Hashtbl.fold
    (fun id () acc ->
      match Provenance.get rc id with
      | Some r -> r :: acc
      | None -> acc)
    seen []

let test_cascade_crossing () =
  let rc, c = compile_recorded "golden_seed3_behavioral.vhd" in
  let report = Vhdl_compiler.last_report c in
  let arch =
    match
      List.find_opt
        (fun (r : Supervisor.unit_report) ->
          Astring_contains.contains r.Supervisor.ur_name "architecture")
        report
    with
    | Some r -> r
    | None -> Alcotest.fail "no architecture in the report"
  in
  let root =
    match Provenance.find rc ~node:arch.Supervisor.ur_node ~attr:"UNITS" with
    | Some r -> r
    | None -> Alcotest.fail "no UNITS instance at the unit's report node"
  in
  let slice = reachable rc root.Provenance.r_id in
  let expr_records =
    List.filter (fun r -> r.Provenance.r_ag = "expr") slice
  in
  Alcotest.(check bool) "the slice crosses into the expression AG" true
    (expr_records <> []);
  Alcotest.(check bool) "and stays mostly in the principal AG" true
    (List.exists (fun r -> r.Provenance.r_ag = "vhdl") slice);
  (* the textual chain shows the boundary too *)
  let text = chain rc ~depth:14 root.Provenance.r_id in
  Alcotest.(check bool) "chain text reaches (expr ...)" true
    (Astring_contains.contains text "(expr");
  (* DOT shades the expression-AG records *)
  let dot = Provenance.to_dot ~depth:14 rc ~root:root.Provenance.r_id in
  Alcotest.(check bool) "dot shades the cascade" true
    (Astring_contains.contains dot "lightblue")

let test_profile_matches_telemetry () =
  let rc, _ = compile_recorded "golden_seed3_behavioral.vhd" in
  let rows = Provenance.profile rc in
  Alcotest.(check bool) "profile has rows" true (rows <> []);
  let apps = List.fold_left (fun acc r -> acc + r.Provenance.p_applications) 0 rows in
  Alcotest.(check int) "profile applications == ag.rule_applications" apps
    (Tm.counter_value "ag.rule_applications");
  let count = List.fold_left (fun acc r -> acc + r.Provenance.p_count) 0 rows in
  Alcotest.(check int) "profile instances == recorder size" count (Provenance.size rc);
  (* rows come hottest first *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Provenance.p_self_s >= b.Provenance.p_self_s && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by self-cost" true (sorted rows)

(* ------------------------------------------------------------------ *)
(* Overhead guard: with no recorder armed, the evaluator's only extra work
   is one option test per attribute access.  Bound (accesses during a
   compile) x (measured cost per test) from above and require it under 3%
   of the compile's own time. *)

let test_overhead_guard_off () =
  Tm.reset ();
  let src = read_corpus "golden_seed18_processes.vhd" in
  let start = Sys.time () in
  let reps = 3 in
  for _ = 1 to reps do
    let c = Vhdl_compiler.create () in
    ignore (Vhdl_compiler.compile c src)
  done;
  let compile_s = (Sys.time () -. start) /. float_of_int reps in
  let ops =
    (Tm.counter_value "ag.attrs_evaluated" + Tm.counter_value "ag.memo_hits") / reps
  in
  Alcotest.(check bool) "the compile did real work" true (ops > 1000);
  let cell : int option ref = ref None in
  let hits = ref 0 in
  let n = 5_000_000 in
  let t0 = Sys.time () in
  for _ = 1 to n do
    match Sys.opaque_identity !cell with
    | None -> ()
    | Some _ -> incr hits
  done;
  let per_op = (Sys.time () -. t0) /. float_of_int n in
  let budget = 0.03 *. compile_s in
  let cost = per_op *. float_of_int ops in
  if cost >= budget then
    Alcotest.failf
      "provenance-off overhead bound %.6fs (%d ops x %.1fns) exceeds 3%% of %.4fs \
       compile"
      cost ops (per_op *. 1e9) compile_s

let suite =
  [
    Alcotest.test_case "graph shape on a small AG" `Quick test_graph_shape;
    Alcotest.test_case "why-chain printer" `Quick test_why_chain;
    Alcotest.test_case "DOT export" `Quick test_dot_export;
    Alcotest.test_case "chain crosses the cascade boundary" `Quick test_cascade_crossing;
    Alcotest.test_case "profiler agrees with telemetry" `Quick
      test_profile_matches_telemetry;
    Alcotest.test_case "overhead guard when disarmed" `Quick test_overhead_guard_off;
  ]
