(* The simulation kernel and runtime support: driver/waveform editing,
   resolution, delta cycles, and property-based tests on the predefined
   operations. *)

(* ---- Value_ops properties ---- *)

let small_int = QCheck.int_range (-1000) 1000

let vhdl_mod_sign =
  QCheck.Test.make ~name:"mod result has the divisor's sign (LRM 7.2.4)" ~count:500
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      match Value_ops.binop Kir.Bmod (Value.Vint a) (Value.Vint b) with
      | Value.Vint r -> r = 0 || (r > 0) = (b > 0)
      | _ -> false)

let vhdl_rem_sign =
  QCheck.Test.make ~name:"rem result has the dividend's sign" ~count:500
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      match Value_ops.binop Kir.Brem (Value.Vint a) (Value.Vint b) with
      | Value.Vint r -> r = 0 || (r > 0) = (a > 0)
      | _ -> false)

let mod_rem_identity =
  QCheck.Test.make ~name:"(a/b)*b + a rem b = a" ~count:500
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      match
        ( Value_ops.binop Kir.Bdiv (Value.Vint a) (Value.Vint b),
          Value_ops.binop Kir.Brem (Value.Vint a) (Value.Vint b) )
      with
      | Value.Vint q, Value.Vint r -> (q * b) + r = a
      | _ -> false)

let gen_bits n =
  QCheck.Gen.map
    (fun l ->
      Value.Varray
        {
          bounds = (0, Types.To, List.length l - 1);
          elems = Array.of_list (List.map (fun b -> Value.Venum (if b then 1 else 0)) l);
        })
    QCheck.Gen.(list_size (return n) bool)

let de_morgan =
  QCheck.Test.make ~name:"not (a and b) = (not a) or (not b) on bit vectors" ~count:300
    (QCheck.make QCheck.Gen.(pair (gen_bits 8) (gen_bits 8)))
    (fun (a, b) ->
      let nand = Value_ops.unop Kir.Unot (Value_ops.binop Kir.Band a b) in
      let orn =
        Value_ops.binop Kir.Bor (Value_ops.unop Kir.Unot a) (Value_ops.unop Kir.Unot b)
      in
      Value.equal nand orn)

let concat_length =
  QCheck.Test.make ~name:"length (a & b) = length a + length b" ~count:300
    (QCheck.make QCheck.Gen.(pair (int_range 1 8) (int_range 1 8)))
    (fun (n, m) ->
      let mk n = QCheck.Gen.generate1 (gen_bits n) in
      match Value_ops.binop Kir.Bconcat (mk n) (mk m) with
      | Value.Varray { elems; _ } -> Array.length elems = n + m
      | _ -> false)

let compare_antisym =
  QCheck.Test.make ~name:"< and > are mirror images" ~count:500
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let lt = Value_ops.binop Kir.Blt (Value.Vint a) (Value.Vint b) in
      let gt = Value_ops.binop Kir.Bgt (Value.Vint b) (Value.Vint a) in
      Value.equal lt gt)

let slice_then_index =
  QCheck.Test.make ~name:"slicing preserves element positions" ~count:300
    (QCheck.make QCheck.Gen.(pair (gen_bits 10) (pair (int_range 0 9) (int_range 0 9))))
    (fun (v, (i, j)) ->
      let lo = min i j and hi = max i j in
      let s = Value_ops.slice v (lo, Types.To, hi) in
      List.for_all
        (fun k ->
          Value.equal (Value_ops.index s k) (Value_ops.index v k))
        (List.init (hi - lo + 1) (fun d -> lo + d)))

(* ---- driver editing rules ---- *)

let mk_sig () =
  Rt.make_signal ~id:0 ~name:":t:s" ~ty:Std.bit ~kind:`Plain ~resolution:None
    ~init:(Value.Venum 0)

let test_transport_vs_inertial_edit () =
  let s = mk_sig () in
  let d = Rt.driver_of s ~proc_id:1 in
  (* pending rise at t=10 *)
  Rt.schedule d ~mode:Kir.Transport ~transactions:[ (10, Some (Value.Venum 1)) ];
  (* transport at t=5: keeps nothing at >= 5 *)
  Rt.schedule d ~mode:Kir.Transport ~transactions:[ (5, Some (Value.Venum 0)) ];
  Alcotest.(check int) "transport removed the later transaction" 1 (List.length d.Rt.drv_wave);
  (* new pending at 10 again, then inertial at 7 wipes everything pending *)
  Rt.schedule d ~mode:Kir.Transport ~transactions:[ (10, Some (Value.Venum 1)) ];
  Rt.schedule d ~mode:Kir.Inertial ~transactions:[ (7, Some (Value.Venum 0)) ];
  (match d.Rt.drv_wave with
  | [ (7, Some v) ] ->
    Alcotest.(check bool) "inertial winner" true (Value.equal v (Value.Venum 0))
  | _ -> Alcotest.fail "inertial edit should leave exactly the new transaction");
  (* transport keeps strictly earlier transactions *)
  Rt.schedule d ~mode:Kir.Transport ~transactions:[ (12, Some (Value.Venum 1)) ];
  Alcotest.(check int) "earlier transaction kept under transport" 2
    (List.length d.Rt.drv_wave)

let test_multiple_drivers_need_resolution () =
  let s = mk_sig () in
  let d1 = Rt.driver_of s ~proc_id:1 in
  let d2 = Rt.driver_of s ~proc_id:2 in
  d1.Rt.drv_value <- Value.Venum 1;
  d2.Rt.drv_value <- Value.Venum 0;
  match Rt.update_signal ~now:0 s with
  | _ -> Alcotest.fail "expected a multiple-driver error"
  | exception Rt.Simulation_error _ -> ()

let test_resolution_applied () =
  let wired_or vs =
    Value.vbool false |> fun _ ->
    if List.exists (fun v -> Value.equal v (Value.Venum 1)) vs then Value.Venum 1
    else Value.Venum 0
  in
  let s =
    Rt.make_signal ~id:0 ~name:":t:b" ~ty:Std.bit ~kind:`Plain
      ~resolution:(Some wired_or) ~init:(Value.Venum 0)
  in
  let d1 = Rt.driver_of s ~proc_id:1 in
  let d2 = Rt.driver_of s ~proc_id:2 in
  d1.Rt.drv_value <- Value.Venum 0;
  d2.Rt.drv_value <- Value.Venum 1;
  let event = Rt.update_signal ~now:5 s in
  Alcotest.(check bool) "event detected" true event;
  Alcotest.(check bool) "resolved to 1" true (Value.equal s.Rt.current (Value.Venum 1));
  Alcotest.(check bool) "last value kept" true (Value.equal s.Rt.last_value (Value.Venum 0));
  Alcotest.(check int) "event time recorded" 5 s.Rt.last_event;
  (* disconnect the driving '1': the other driver keeps it low *)
  Rt.disconnect d2;
  let _ = Rt.update_signal ~now:7 s in
  Alcotest.(check bool) "back to 0 after disconnect" true
    (Value.equal s.Rt.current (Value.Venum 0))

(* ---- delta cycles end to end ---- *)

let run_simulation ?(ns = 100) src top =
  let c = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile c src);
  let sim = Vhdl_compiler.elaborate c ~top () in
  let _ = Vhdl_compiler.run c sim ~max_ns:ns in
  sim

let test_delta_cycle_ordering () =
  (* a chain of zero-delay assignments settles within one time step through
     delta cycles, every process seeing consistent values *)
  let sim =
    run_simulation
      {|
entity tb is end tb;
architecture t of tb is
  signal a : integer := 0;
  signal b : integer := 0;
  signal c : integer := 0;
begin
  b <= a + 1;
  c <= b + 1;
  stim : process
  begin
    wait for 10 ns;
    a <= 5;
    wait;
  end process;
end t;
|}
      "tb"
  in
  (match Vhdl_compiler.value sim ":tb:C" with
  | Some v -> Alcotest.(check bool) "c = a+2 after settling" true (Value.equal v (Value.Vint 7))
  | None -> Alcotest.fail "no c");
  let st = Kernel.stats (Vhdl_compiler.kernel sim) in
  Alcotest.(check bool) "delta cycles occurred" true (st.Kernel.delta_cycles > 0)

let test_delta_limit_detects_oscillation () =
  (* unstable zero-delay loop: the kernel must abort, not hang *)
  let c = Vhdl_compiler.create () in
  ignore
    (Vhdl_compiler.compile c
       {|
entity osc is end osc;
architecture t of osc is
  signal a : bit := '0';
begin
  a <= not a;
end t;
|});
  let sim = Vhdl_compiler.elaborate c ~top:"osc" () in
  match Vhdl_compiler.run c sim ~max_ns:10 with
  | _ -> Alcotest.fail "expected a delta-limit error"
  | exception Rt.Simulation_error { msg; _ } ->
    Alcotest.(check bool) "mentions the limit" true
      (Astring_contains.contains msg "delta")

let test_event_vs_transaction () =
  (* assigning the same value is a transaction but not an event *)
  let sim =
    run_simulation
      {|
entity tb is end tb;
architecture t of tb is
  signal s : bit := '0';
  signal events : integer := 0;
  signal actives : integer := 0;
begin
  driver : process
  begin
    wait for 10 ns;
    s <= '0';             -- transaction, same value: no event
    wait for 10 ns;
    s <= '1';             -- event
    wait;
  end process;
  obs : process (s)
  begin
    events <= events + 1;
  end process;
end t;
|}
      "tb"
  in
  match Vhdl_compiler.value sim ":tb:EVENTS" with
  | Some v ->
    (* the observer runs once at initialization and once for the genuine
       event at 20 ns; the same-value transaction at 10 ns wakes nobody *)
    Alcotest.(check bool) "only the value change is an event" true
      (Value.equal v (Value.Vint 2))
  | None -> Alcotest.fail "no events signal"

let test_name_server_paths () =
  let sim =
    run_simulation
      {|
entity leaf is
  port (x : in bit);
end leaf;
architecture a of leaf is
  signal own : bit;
begin
  own <= x;
end a;
entity tb is end tb;
architecture t of tb is
  component leaf
    port (x : in bit);
  end component;
  signal s : bit := '0';
begin
  u1 : leaf port map (x => s);
  u2 : leaf port map (x => s);
end t;
|}
      "tb"
  in
  let ns = Vhdl_compiler.name_server sim in
  Alcotest.(check bool) "nested signal path" true
    (Name_server.find_signal ns ":tb:U1:OWN" <> None);
  Alcotest.(check bool) "second instance distinct" true
    (Name_server.find_signal ns ":tb:U2:OWN" <> None);
  Alcotest.(check int) "three instances (tb, u1, u2)" 3
    (List.length (Name_server.instances ns));
  (* connected port shares the actual's signal object *)
  match (Name_server.find_signal ns ":tb:S", Name_server.find_signal ns ":tb:U1:OWN") with
  | Some s, Some own -> Alcotest.(check bool) "distinct objects" true (s != own)
  | _ -> Alcotest.fail "signals missing"

let test_vcd_output () =
  let sim =
    run_simulation
      {|
entity tb is end tb;
architecture t of tb is
  signal s : bit := '0';
begin
  s <= '1' after 5 ns;
end t;
|}
      "tb"
  in
  let vcd = Trace.to_vcd (Vhdl_compiler.trace sim) ~timescale_fs:1 in
  Alcotest.(check bool) "has header" true (Astring_contains.contains vcd "$timescale");
  Alcotest.(check bool) "opens the instance scope" true
    (Astring_contains.contains vcd "$scope module tb $end");
  Alcotest.(check bool) "declares the signal" true
    (Astring_contains.contains vcd "$var wire 1 ! S $end");
  Alcotest.(check bool) "has the 5 ns timestamp" true
    (Astring_contains.contains vcd "#5000000")

let test_kernel_stats_consistency () =
  let sim =
    run_simulation ~ns:50
      {|
entity tb is end tb;
architecture t of tb is
  signal clk : bit := '0';
begin
  clk <= not clk after 5 ns;
end t;
|}
      "tb"
  in
  let st = Kernel.stats (Vhdl_compiler.kernel sim) in
  (* one toggle every 5 ns for 50 ns = 10 events, each from a transaction *)
  Alcotest.(check int) "events" 10 st.Kernel.events;
  Alcotest.(check bool) "transactions >= events" true
    (st.Kernel.transactions >= st.Kernel.events)

(* guarded signal kinds: when every driver of a REGISTER disconnects, the
   signal retains its value *)
let test_register_retains_on_disconnect () =
  let c = Vhdl_compiler.create () in
  ignore
    (Vhdl_compiler.compile c
       {|
package rp is
  function keep_or (v : bit_vector) return bit;
end rp;
package body rp is
  function keep_or (v : bit_vector) return bit is
  begin
    for i in 0 to v'length - 1 loop
      if v(i) = '1' then
        return '1';
      end if;
    end loop;
    return '0';
  end keep_or;
end rp;
|});
  ignore
    (Vhdl_compiler.compile c
       {|
use work.rp.all;
entity tb is end tb;
architecture t of tb is
  signal enable : bit := '1';
  signal r : keep_or bit register := '0';
begin
  b : block (enable = '1')
  begin
    r <= guarded '1' after 5 ns;
  end block;
  ctl : process
  begin
    wait for 20 ns;
    enable <= '0';     -- disconnects the guarded driver
    wait;
  end process;
end t;
|});
  let sim = Vhdl_compiler.elaborate c ~top:"tb" () in
  let _ = Vhdl_compiler.run c sim ~max_ns:100 in
  match Vhdl_compiler.value sim ":tb:R" with
  | Some v ->
    Alcotest.(check bool) "register keeps last value" true (Value.equal v (Value.Venum 1))
  | None -> Alcotest.fail "no r"



(* driver-queue invariant under random scheduling: the projected output
   waveform stays strictly time-sorted whatever mix of transport/inertial
   edits and value/null transactions arrives *)
let wave_sorted_invariant =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (map3
           (fun t inertial isnull -> (t, inertial, isnull))
           (int_range 0 100) bool bool))
  in
  QCheck.Test.make ~name:"driver waveform stays sorted under random edits" ~count:300
    (QCheck.make gen) (fun script ->
      let s = mk_sig () in
      let d = Rt.driver_of s ~proc_id:1 in
      List.iter
        (fun (t, inertial, isnull) ->
          let mode = if inertial then Kir.Inertial else Kir.Transport in
          let v = if isnull then None else Some (Value.Venum (t land 1)) in
          Rt.schedule d ~mode ~transactions:[ (t, v) ])
        script;
      let rec sorted = function
        | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      sorted d.Rt.drv_wave)

let suite =
  [
    QCheck_alcotest.to_alcotest wave_sorted_invariant;
    QCheck_alcotest.to_alcotest vhdl_mod_sign;
    QCheck_alcotest.to_alcotest vhdl_rem_sign;
    QCheck_alcotest.to_alcotest mod_rem_identity;
    QCheck_alcotest.to_alcotest de_morgan;
    QCheck_alcotest.to_alcotest concat_length;
    QCheck_alcotest.to_alcotest compare_antisym;
    QCheck_alcotest.to_alcotest slice_then_index;
    Alcotest.test_case "transport vs inertial waveform editing" `Quick
      test_transport_vs_inertial_edit;
    Alcotest.test_case "multiple drivers require resolution" `Quick
      test_multiple_drivers_need_resolution;
    Alcotest.test_case "resolution function and disconnect" `Quick test_resolution_applied;
    Alcotest.test_case "delta-cycle settling" `Quick test_delta_cycle_ordering;
    Alcotest.test_case "delta limit detects oscillation" `Quick
      test_delta_limit_detects_oscillation;
    Alcotest.test_case "event vs transaction" `Quick test_event_vs_transaction;
    Alcotest.test_case "name server paths and sharing" `Quick test_name_server_paths;
    Alcotest.test_case "VCD output" `Quick test_vcd_output;
    Alcotest.test_case "kernel statistics consistency" `Quick test_kernel_stats_consistency;
    Alcotest.test_case "register signals retain value on disconnect" `Quick
      test_register_retains_on_disconnect;
  ]
