(* Waveform tracing: a golden VCD on a hand-driven trace, and a round-trip
   check on a full corpus simulation — the emitted VCD must parse with the
   minimal IEEE-1364 reader below and agree with the in-memory change log. *)

let corpus_path name =
  let dir =
    if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"
  in
  Filename.concat dir name

let read_corpus name = Vhdl_util.Unix_compat.read_file (corpus_path name)

(* ------------------------------------------------------------------ *)
(* A minimal VCD reader: header declarations plus the change stream. *)

type vcd_var = {
  vv_id : string;
  vv_type : string;
  vv_width : int;
  vv_name : string;
  vv_scope : string list; (* outermost first *)
}

type vcd = {
  v_timescale : string;
  v_vars : vcd_var list;
  v_changes : (int * string * string) list; (* time, id code, value token *)
  v_dumpvars : (string * string) list; (* id code, initial value token *)
}

let parse_vcd (text : string) : vcd =
  let words =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun w -> w <> "")
  in
  let vars = ref [] and changes = ref [] and dumpvars = ref [] in
  let timescale = ref "" in
  let scope = ref [] in
  let time = ref (-1) in
  let in_dump = ref false in
  let rec upto_end acc = function
    | "$end" :: rest -> (List.rev acc, rest)
    | w :: rest -> upto_end (w :: acc) rest
    | [] -> failwith "unterminated $ section"
  in
  let change id tok =
    if !in_dump then dumpvars := (id, tok) :: !dumpvars
    else if !time < 0 then failwith "change before any #time"
    else changes := (!time, id, tok) :: !changes
  in
  let rec go = function
    | [] -> ()
    | "$version" :: rest | "$date" :: rest | "$comment" :: rest ->
      let _, rest = upto_end [] rest in
      go rest
    | "$timescale" :: rest ->
      let ws, rest = upto_end [] rest in
      timescale := String.concat " " ws;
      go rest
    | "$scope" :: _kind :: name :: "$end" :: rest ->
      scope := !scope @ [ name ];
      go rest
    | "$upscope" :: "$end" :: rest ->
      (match List.rev !scope with
      | _ :: outer -> scope := List.rev outer
      | [] -> failwith "$upscope at top level");
      go rest
    | "$var" :: ty :: width :: id :: name :: "$end" :: rest ->
      vars :=
        {
          vv_id = id;
          vv_type = ty;
          vv_width = int_of_string width;
          vv_name = name;
          vv_scope = !scope;
        }
        :: !vars;
      go rest
    | "$enddefinitions" :: "$end" :: rest -> go rest
    | "$dumpvars" :: rest ->
      in_dump := true;
      go rest
    | "$end" :: rest when !in_dump ->
      in_dump := false;
      go rest
    | w :: rest when w.[0] = '#' ->
      let t = int_of_string (String.sub w 1 (String.length w - 1)) in
      if t < !time then failwith "time went backwards";
      time := t;
      go rest
    | w :: rest when w.[0] = 'b' || w.[0] = 'r' -> (
      (* vector/real change: value token then the id code *)
      match rest with
      | id :: rest ->
        change id w;
        go rest
      | [] -> failwith "vector change without id")
    | w :: rest when w.[0] = '0' || w.[0] = '1' || w.[0] = 'x' || w.[0] = 'z' ->
      (* scalar change: digit glued to the id code *)
      change (String.sub w 1 (String.length w - 1)) (String.make 1 w.[0]);
      go rest
    | w :: _ -> failwith ("unrecognized VCD token " ^ w)
  in
  go words;
  if !scope <> [] then failwith "unbalanced $scope/$upscope";
  {
    v_timescale = !timescale;
    v_vars = List.rev !vars;
    v_changes = List.rev !changes;
    v_dumpvars = List.rev !dumpvars;
  }

let find_var vcd name =
  match List.find_opt (fun v -> v.vv_name = name) vcd.v_vars with
  | Some v -> v
  | None -> Alcotest.failf "variable %s not declared in the VCD" name

(* ------------------------------------------------------------------ *)
(* Golden VCD on a hand-driven trace *)

let mk_signal ~id ~name ~ty ~init =
  Rt.make_signal ~id ~name ~ty ~kind:`Plain ~resolution:None ~init

let fire (s : Rt.signal) time v =
  s.Rt.current <- v;
  List.iter (fun f -> f time s) s.Rt.observers

let test_golden_vcd () =
  let tr = Trace.create () in
  let clk = mk_signal ~id:0 ~name:":top:CLK" ~ty:Std.bit ~init:(Value.Venum 0) in
  let cnt = mk_signal ~id:1 ~name:":top:CNT" ~ty:Std.integer ~init:(Value.Vint 0) in
  let tmp = mk_signal ~id:2 ~name:":top:U1:T" ~ty:Std.real ~init:(Value.Vfloat 0.5) in
  Trace.watch tr ":top:CLK" clk;
  Trace.watch tr ":top:CNT" cnt;
  Trace.watch tr ":top:U1:T" tmp;
  fire clk 1000 (Value.Venum 1);
  fire cnt 1000 (Value.Vint 5);
  fire clk 2000 (Value.Venum 0);
  fire clk 2000 (Value.Venum 1) (* delta-cycle churn: only the settled value shows *);
  fire cnt 3000 (Value.Vint 5) (* no value change: elided *);
  fire tmp 3000 (Value.Vfloat 1.25);
  let expected =
    String.concat "\n"
      [
        "$version vhdlc simulation $end";
        "$timescale 1 ps $end";
        "$scope module top $end";
        "$var wire 1 ! CLK $end";
        "$var integer 32 # CNT $end";
        "$scope module U1 $end";
        "$var real 64 $ T $end";
        "$upscope $end";
        "$upscope $end";
        "$enddefinitions $end";
        "#0";
        "$dumpvars";
        "0!";
        "b00000000000000000000000000000000 #";
        "r0.5 $";
        "$end";
        "#1000";
        "1!";
        "b00000000000000000000000000000101 #";
        "#3000";
        "r1.25 $";
        "";
      ]
  in
  Alcotest.(check string) "golden VCD" expected (Trace.to_vcd tr ~timescale_fs:1000)

(* ------------------------------------------------------------------ *)
(* Round trip on a real simulation *)

let simulate name ~top ~ns =
  let c = Vhdl_compiler.create () in
  ignore (Vhdl_compiler.compile c (read_corpus name));
  let sim = Vhdl_compiler.elaborate c ~top () in
  ignore (Vhdl_compiler.run c sim ~max_ns:ns);
  (Vhdl_compiler.trace sim, Trace.to_vcd (Vhdl_compiler.trace sim) ~timescale_fs:1)

let test_roundtrip_corpus () =
  let tr, text = simulate "golden_seed18_processes.vhd" ~top:"FZTOP" ~ns:60 in
  let vcd = parse_vcd text in
  Alcotest.(check string) "timescale" "1 fs" vcd.v_timescale;
  Alcotest.(check bool) "has variables" true (vcd.v_vars <> []);
  (* ids are unique, and the initial dump covers each exactly once *)
  let ids = List.map (fun v -> v.vv_id) vcd.v_vars in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check (list string)) "dumpvars covers every variable in order" ids
    (List.map fst vcd.v_dumpvars);
  (* every change references a declared id, and vector tokens fit their
     declared width *)
  let width_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace tbl v.vv_id v) vcd.v_vars;
    fun id ->
      match Hashtbl.find_opt tbl id with
      | Some v -> v
      | None -> Alcotest.failf "change for undeclared id %s" id
  in
  let check_token (id, tok) =
    let v = width_of id in
    match tok.[0] with
    | 'b' ->
      Alcotest.(check bool)
        (Printf.sprintf "vector token fits %s[%d]" v.vv_name v.vv_width)
        true
        (String.length tok - 1 <= v.vv_width)
    | 'r' -> Alcotest.(check string) "real var" "real" v.vv_type
    | _ -> Alcotest.(check int) ("scalar var " ^ v.vv_name) 1 v.vv_width
  in
  List.iter check_token vcd.v_dumpvars;
  List.iter (fun (_, id, tok) -> check_token (id, tok)) vcd.v_changes;
  (* cross-check one signal against the in-memory log: CLK's VCD change
     count equals its collapsed history (last value per instant, repeats
     dropped — exactly what the VCD emits) *)
  let clk = find_var vcd "CLK" in
  let vcd_clk =
    List.filter_map
      (fun (t, id, tok) -> if id = clk.vv_id then Some (t, tok) else None)
      vcd.v_changes
  in
  let history = Trace.history tr ~path:":fztop:CLK" in
  let collapsed =
    let by_last =
      List.fold_left
        (fun acc (t, v) ->
          match acc with
          | (t', _) :: rest when t' = t -> (t, v) :: rest
          | _ -> (t, v) :: acc)
        [] history
      |> List.rev
    in
    (* keep transitions only *)
    let _, transitions =
      List.fold_left
        (fun (prev, acc) (t, v) ->
          match prev with
          | Some p when Value.equal p v -> (prev, acc)
          | _ -> (Some v, (t, v) :: acc))
        (None, []) by_last
    in
    List.rev transitions
  in
  (* the first collapsed entry is time 0 (the dumpvars block), the rest are
     the #time changes *)
  (match collapsed with
  | (0, v0) :: rest ->
    let render v =
      match v with
      | Value.Venum 0 -> "0"
      | Value.Venum 1 -> "1"
      | _ -> "x"
    in
    (match List.assoc_opt clk.vv_id vcd.v_dumpvars with
    | Some tok -> Alcotest.(check string) "initial CLK" (render v0) tok
    | None -> Alcotest.fail "CLK missing from dumpvars");
    Alcotest.(check int) "CLK change count" (List.length rest)
      (List.length vcd_clk);
    List.iter2
      (fun (t, v) (t', tok) ->
        Alcotest.(check int) "CLK change time" t t';
        Alcotest.(check string) "CLK change value" (render v) tok)
      rest vcd_clk
  | _ -> Alcotest.fail "CLK history does not start at time 0")

(* GTKWave-facing sanity on a second corpus shape: scopes balance and the
   enum state variable is a vector wide enough for its literals *)
let test_enum_widths () =
  let _, text = simulate "golden_seed3_behavioral.vhd" ~top:"FZBEH" ~ns:40 in
  let vcd = parse_vcd text in
  let state = find_var vcd "STATE" in
  Alcotest.(check string) "enum is a wire vector" "wire" state.vv_type;
  Alcotest.(check int) "5 literals need 3 bits" 3 state.vv_width;
  let dout = find_var vcd "DOUT" in
  Alcotest.(check string) "integer var type" "integer" dout.vv_type;
  Alcotest.(check int) "integer width" 32 dout.vv_width

let suite =
  [
    Alcotest.test_case "golden VCD" `Quick test_golden_vcd;
    Alcotest.test_case "round trip on a corpus simulation" `Quick test_roundtrip_corpus;
    Alcotest.test_case "enum and integer widths" `Quick test_enum_widths;
  ]
