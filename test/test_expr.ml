(* The expression AG of the cascade: parse LEF token lists and check typing,
   overload resolution, static folding, aggregates, attributes. *)






let line = 1

let itok kind = { Lef.l_kind = kind; l_line = line }
let int_t n = itok (Lef.Kint n)
let op o = Lef.op ~line o
let punct p = Lef.punct ~line p

let enum_true = itok (Lef.Kenum [ (Std.boolean, 1, "TRUE") ])
let enum_false = itok (Lef.Kenum [ (Std.boolean, 0, "FALSE") ])

let eval ?expected lef = Expr_eval.eval ?expected ~level:0 ~line lef

let check_static name expected_value xres =
  Alcotest.(check bool)
    (name ^ " has no errors")
    false
    (Diag.has_errors xres.Pval.x_msgs);
  match xres.Pval.x_static with
  | Some v -> Alcotest.(check bool) (name ^ " value") true (Value.equal v expected_value)
  | None -> Alcotest.failf "%s: expected a static value" name

let test_arith () =
  (* 1 + 2 * 3 *)
  let r = eval [ int_t 1; op "+"; int_t 2; op "*"; int_t 3 ] in
  check_static "1+2*3" (Value.Vint 7) r;
  Alcotest.(check string) "type" "STD.STANDARD.INTEGER" r.Pval.x_ty.Types.base;
  (* (1 + 2) * 3 *)
  let r = eval [ punct "("; int_t 1; op "+"; int_t 2; punct ")"; op "*"; int_t 3 ] in
  check_static "(1+2)*3" (Value.Vint 9) r;
  (* 2 ** 5 *)
  check_static "2**5" (Value.Vint 32) (eval [ int_t 2; op "**"; int_t 5 ]);
  (* -5 mod 3 = VHDL mod: ((-5) mod 3) = 1 *)
  check_static "-5 mod 3" (Value.Vint (-2))
    (eval [ op "-"; punct "("; int_t 5; op "mod"; int_t 3; punct ")" ]);
  check_static "abs -7" (Value.Vint 7) (eval [ op "-"; int_t 7; op "+"; int_t 14 ])

let test_booleans () =
  let r = eval [ enum_true; op "and"; enum_false ] in
  check_static "true and false" (Value.Venum 0) r;
  Alcotest.(check string) "bool type" "STD.STANDARD.BOOLEAN" r.Pval.x_ty.Types.base;
  check_static "not false" (Value.Venum 1) (eval [ op "not"; enum_false ]);
  check_static "1 < 2" (Value.Venum 1) (eval [ int_t 1; op "<"; int_t 2 ]);
  check_static "3 = 4" (Value.Venum 0) (eval [ int_t 3; op "="; int_t 4 ])

(* The paper's flagship example: X (Y) means different things depending on
   what X denotes.  Indexing when X is an array constant: *)
let test_indexing () =
  let arr =
    Value.Varray
      { bounds = (1, Types.To, 3); elems = [| Value.Vint 10; Value.Vint 20; Value.Vint 30 |] }
  in
  let arr_ty =
    Types.subtype
      {
        Types.base = "WORK.T.ARR";
        kind = Types.Karray { index = Std.integer; elem = Std.integer };
        constr = None;
      }
      ~constr:(Types.Crange (1, Types.To, 3))
  in
  let x = itok (Lef.Kconst_val { name = "X"; ty = arr_ty; value = arr }) in
  let r = eval [ x; punct "("; int_t 2; punct ")" ] in
  check_static "X(2)" (Value.Vint 20) r;
  (* slice X(1 to 2) *)
  let r = eval [ x; punct "("; int_t 1; punct "to"; int_t 2; punct ")" ] in
  Alcotest.(check bool) "slice ok" false (Diag.has_errors r.Pval.x_msgs);
  (match r.Pval.x_static with
  | Some (Value.Varray { elems; _ }) -> Alcotest.(check int) "slice length" 2 (Array.length elems)
  | _ -> Alcotest.fail "expected array slice value")

(* ... and a call when X is a function. *)
let test_call () =
  let sig_ : Denot.subprog_sig =
    {
      Denot.ss_name = "DOUBLE";
      ss_mangled = "WORK.P.DOUBLE/INTEGER";
      ss_kind = `Function;
      ss_params =
        [
          {
            Denot.p_name = "N";
            p_mode = Kir.Arg_in;
            p_class = Denot.Cconstant;
            p_ty = Std.integer;
            p_default = None;
          };
        ];
      ss_ret = Some Std.integer;
      ss_builtin = false;
    }
  in
  let f = itok (Lef.Kfunc [ sig_ ]) in
  let r = eval [ f; punct "("; int_t 21; punct ")" ] in
  Alcotest.(check bool) "call ok" false (Diag.has_errors r.Pval.x_msgs);
  (match r.Pval.x_code with
  | Kir.Ecall (Kir.F_user "WORK.P.DOUBLE/INTEGER", [ Kir.Elit (Value.Vint 21) ]) -> ()
  | _ -> Alcotest.fail "expected a call to the mangled name");
  (* named association *)
  let r =
    eval [ f; punct "("; itok (Lef.Kident "N"); punct "=>"; int_t 5; punct ")" ]
  in
  Alcotest.(check bool) "named assoc ok" false (Diag.has_errors r.Pval.x_msgs);
  (* wrong type *)
  let r = eval [ f; punct "("; enum_true; punct ")" ] in
  Alcotest.(check bool) "wrong arg type is an error" true (Diag.has_errors r.Pval.x_msgs)

let test_aggregate () =
  let bv4 = Types.subtype Std.bit_vector ~constr:(Types.Crange (0, Types.To, 3)) in
  (* (others => '1') *)
  let bit1 = itok (Lef.Kenum [ (Std.bit, 1, "'1'") ]) in
  let r =
    eval ~expected:bv4 [ punct "("; punct "others"; punct "=>"; bit1; punct ")" ]
  in
  Alcotest.(check bool) "aggregate ok" false (Diag.has_errors r.Pval.x_msgs);
  (match r.Pval.x_static with
  | Some (Value.Varray { elems; _ }) ->
    Alcotest.(check int) "length 4" 4 (Array.length elems);
    Array.iter
      (fun e -> Alcotest.(check bool) "all ones" true (Value.equal e (Value.Venum 1)))
      elems
  | _ -> Alcotest.fail "expected static aggregate");
  (* named index: (0 => '1', others => '0') *)
  let bit0 = itok (Lef.Kenum [ (Std.bit, 0, "'0'") ]) in
  let r =
    eval ~expected:bv4
      [
        punct "("; int_t 0; punct "=>"; bit1; punct ","; punct "others"; punct "=>"; bit0;
        punct ")";
      ]
  in
  (match r.Pval.x_static with
  | Some (Value.Varray { elems; _ }) ->
    Alcotest.(check bool) "elem 0" true (Value.equal elems.(0) (Value.Venum 1));
    Alcotest.(check bool) "elem 1" true (Value.equal elems.(1) (Value.Venum 0))
  | _ -> Alcotest.fail "expected static aggregate")

let test_string_and_concat () =
  let r = eval [ itok (Lef.Kstr "01"); op "&"; itok (Lef.Kstr "10") ] in
  (* both STRING and BIT_VECTOR interpretations survive: ambiguous without
     context *)
  Alcotest.(check bool) "ambiguous without context" true (Diag.has_errors r.Pval.x_msgs);
  let r =
    eval ~expected:Std.bit_vector [ itok (Lef.Kstr "01"); op "&"; itok (Lef.Kstr "10") ]
  in
  Alcotest.(check bool) "bit_vector context ok" false (Diag.has_errors r.Pval.x_msgs);
  match r.Pval.x_static with
  | Some (Value.Varray { elems; _ }) -> Alcotest.(check int) "length" 4 (Array.length elems)
  | _ -> Alcotest.fail "expected static value"

let test_type_attrs () =
  let byte =
    Types.subtype Std.integer ~constr:(Types.Crange (0, Types.To, 255))
  in
  let t = itok (Lef.Ktype byte) in
  check_static "BYTE'HIGH" (Value.Vint 255) (eval [ t; punct "'"; itok (Lef.Kattr "HIGH") ]);
  check_static "BYTE'LOW" (Value.Vint 0) (eval [ t; punct "'"; itok (Lef.Kattr "LOW") ]);
  (* attribute function: BOOLEAN'POS(TRUE) *)
  let bt = itok (Lef.Ktype Std.boolean) in
  let r =
    eval
      [ bt; punct "'"; itok (Lef.Kattr "POS"); punct "("; enum_true; punct ")" ]
  in
  Alcotest.(check bool) "POS ok" false (Diag.has_errors r.Pval.x_msgs)

let test_qualified_resolves_ambiguity () =
  (* An enum literal visible in two types is ambiguous until qualified —
     the paper's X'REVERSE_RANGE-style context sensitivity. *)
  let color =
    { Types.base = "WORK.P.COLOR"; kind = Types.Kenum [| "RED"; "GREEN" |]; constr = None }
  in
  let fruit =
    { Types.base = "WORK.P.FRUIT"; kind = Types.Kenum [| "APPLE"; "RED" |]; constr = None }
  in
  let red = itok (Lef.Kenum [ (color, 0, "RED"); (fruit, 1, "RED") ]) in
  let r = eval [ red ] in
  Alcotest.(check bool) "unqualified RED ambiguous" true (Diag.has_errors r.Pval.x_msgs);
  let r =
    eval [ itok (Lef.Ktype fruit); punct "'"; punct "("; red; punct ")" ]
  in
  Alcotest.(check bool) "qualified RED ok" false (Diag.has_errors r.Pval.x_msgs);
  Alcotest.(check string) "fruit type" "WORK.P.FRUIT" r.Pval.x_ty.Types.base

let test_error_reporting () =
  let r = eval [ enum_true; op "+"; int_t 1 ] in
  Alcotest.(check bool) "type error reported" true (Diag.has_errors r.Pval.x_msgs);
  let r = eval [ int_t 1; op "+" ] in
  Alcotest.(check bool) "parse error reported" true (Diag.has_errors r.Pval.x_msgs)

let test_grammar_stats () =
  let g = Expr_eval.grammar () in
  let stats = Stats.of_grammar ~name:"expr AG" g in
  Alcotest.(check bool) "has a respectable size (paper: 160 productions)" true
    (stats.Stats.productions > 30);
  Alcotest.(check bool) "implicit rules exist" true (stats.Stats.rules_implicit > 0)

let suite =
  [
    Alcotest.test_case "integer arithmetic folds statically" `Quick test_arith;
    Alcotest.test_case "boolean operators" `Quick test_booleans;
    Alcotest.test_case "X(Y) as array indexing and slicing" `Quick test_indexing;
    Alcotest.test_case "X(Y) as function call (overloads, named assoc)" `Quick test_call;
    Alcotest.test_case "aggregates (others, named index)" `Quick test_aggregate;
    Alcotest.test_case "string literals and concatenation" `Quick test_string_and_concat;
    Alcotest.test_case "type attributes" `Quick test_type_attrs;
    Alcotest.test_case "qualified expression resolves ambiguity" `Quick
      test_qualified_resolves_ambiguity;
    Alcotest.test_case "errors are reported, not fatal" `Quick test_error_reporting;
    Alcotest.test_case "expression AG statistics" `Quick test_grammar_stats;
  ]
