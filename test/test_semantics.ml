(* LRM fine print: behaviours with a specific required outcome that the
   broader feature tests do not pin down individually. *)

let simulate ?(ns = 100) ?(top = "TB") sources =
  let c = Vhdl_compiler.create () in
  List.iter (fun s -> ignore (Vhdl_compiler.compile c s)) sources;
  let sim = Vhdl_compiler.elaborate c ~top () in
  let _ = Vhdl_compiler.run c sim ~max_ns:ns in
  sim

let check_int sim path expected =
  match Vhdl_compiler.value sim path with
  | Some v -> Alcotest.(check int) path expected (Value.as_int v)
  | None -> Alcotest.failf "no signal %s" path

let expect_compile_error src =
  let c = Vhdl_compiler.create () in
  match Vhdl_compiler.compile c src with
  | _ -> Alcotest.fail "expected a compile error"
  | exception Vhdl_compiler.Compile_error _ -> ()

(* LRM 7.2.4: / truncates toward zero, also for negative operands *)
let test_division_truncates_toward_zero () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal a : integer := 0;
  signal b : integer := 0;
begin
  p : process
  begin
    a <= (-7) / 2;
    b <= 7 / (-2);
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:A" (-3);
  check_int sim ":tb:B" (-3)

(* relational operators do not associate: a = b = c is a syntax error *)
let test_relations_do_not_associate () =
  expect_compile_error
    "entity tb is end tb;\narchitecture t of tb is\n  signal x : boolean;\nbegin\n  p : process\n  begin\n    x <= 1 = 2 = false;\n    wait;\n  end process;\nend t;"

(* 'SUCC off the end of an enumeration is a runtime error *)
let test_succ_at_bound_raises () =
  let c = Vhdl_compiler.create () in
  ignore
    (Vhdl_compiler.compile c
       {|
entity tb is end tb;
architecture t of tb is
  type st is (s0, s1);
  signal s : st := s1;
  signal n : st := s0;
begin
  p : process
  begin
    n <= st'succ(s);
    wait;
  end process;
end t;
|});
  let sim = Vhdl_compiler.elaborate c ~top:"tb" () in
  match Vhdl_compiler.run c sim ~max_ns:10 with
  | exception Rt.Simulation_error _ -> ()
  | _ -> Alcotest.fail "'SUCC at the upper bound must raise"

(* a for-generate over a null range produces no instances *)
let test_null_range_generate () =
  let sim =
    simulate
      [
        {|
entity leaf is port (t : in bit); end leaf;
architecture r of leaf is begin end r;

entity tb is end tb;
architecture t of tb is
  component leaf port (t : in bit); end component;
  signal s : bit := '0';
begin
  g : for i in 0 to -1 generate
    u : leaf port map (t => s);
  end generate;
end t;
|};
      ]
  in
  let ns = Vhdl_compiler.name_server sim in
  Alcotest.(check int) "only the testbench instance" 1
    (List.length (Name_server.instances ns))

(* a null-range for loop body never runs *)
let test_null_range_loop () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal n : integer := 0;
begin
  p : process
    variable acc : integer := 7;
  begin
    for i in 5 to 4 loop
      acc := 0;
    end loop;
    for i in 3 downto 4 loop
      acc := 0;
    end loop;
    n <= acc;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:N" 7

(* record aggregates with named field association, any order *)
let test_record_named_aggregate () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  type pt is record
    x : integer;
    y : integer;
  end record;
  signal mag : integer := 0;
begin
  p : process
    variable p1 : pt := (y => 4, x => 3);
  begin
    mag <= p1.x * p1.x + p1.y * p1.y;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:MAG" 25

(* array attributes on unconstrained formals come from the actual *)
let test_attributes_of_unconstrained_formal () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  function count_len (v : bit_vector) return integer is
  begin
    return v'length * 100 + v'left * 10 + v'right;
  end count_len;
  signal a : integer := 0;
  signal b : integer := 0;
begin
  p : process
    variable v1 : bit_vector (0 to 4) := "10101";
    variable v2 : bit_vector (3 to 6) := "1111";
  begin
    a <= count_len(v1);   -- 5,0,4 -> 504
    b <= count_len(v2);   -- 4,3,6 -> 436
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:A" 504;
  check_int sim ":tb:B" 436

(* wait until with a timeout: whichever comes first *)
let test_wait_until_with_timeout () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal go : bit := '0';
  signal woke_by_signal : integer := 0;
  signal woke_by_timeout : integer := 0;
begin
  go <= '1' after 5 ns;
  fast : process
  begin
    wait until go = '1' for 100 ns;    -- signal wins at 5 ns
    if go = '1' then woke_by_signal <= 1; end if;
    wait;
  end process;
  slow : process
  begin
    wait until go = '0' for 8 ns;      -- never true again: timeout at 8 ns
    woke_by_timeout <= 1;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:WOKE_BY_SIGNAL" 1;
  check_int sim ":tb:WOKE_BY_TIMEOUT" 1

(* an out parameter of a function is illegal *)
let test_function_out_param_rejected () =
  expect_compile_error
    "entity tb is end tb;\narchitecture t of tb is\n  function f (x : out integer) return integer is\n  begin\n    x := 1;\n    return 1;\n  end f;\nbegin\nend t;"

(* overload resolution picks by result type where operands are ambiguous *)
let test_result_type_resolution () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  type duo is (aa, bb);
  type uno is (bb, cc);
  signal d : duo := aa;
  signal u : uno := cc;
begin
  p : process
  begin
    d <= bb;   -- the literal alone is ambiguous; the target type decides
    u <= bb;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:D" 1;
  check_int sim ":tb:U" 0

(* slices inherit the direction they name, independent of the base *)
let test_slice_direction () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal l : integer := 0;
  signal r : integer := 0;
begin
  p : process
    variable v : bit_vector (7 downto 0) := "10000001";
    variable s : bit_vector (5 downto 2);
  begin
    s := v(5 downto 2);
    l <= s'left;
    r <= s'right;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:L" 5;
  check_int sim ":tb:R" 2

(* LRM 2.3: functions may be overloaded on the result type alone *)
let test_result_type_overloading () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  function zero return integer is
  begin
    return 7;
  end zero;
  function zero return bit is
  begin
    return '1';
  end zero;
  signal n : integer := 0;
  signal b : bit := '0';
begin
  p : process
  begin
    n <= zero;
    b <= zero;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:N" 7;
  check_int sim ":tb:B" 1

(* the result of a function call indexes like any array value *)
let test_indexing_function_results () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  type quad is array (0 to 3) of integer;
  function ramp (base : integer) return quad is
    variable r : quad;
  begin
    for i in 0 to 3 loop
      r(i) := base + i;
    end loop;
    return r;
  end ramp;
  signal s : integer := 0;
begin
  p : process begin s <= ramp(10)(2); wait; end process;
end t;
|};
      ]
  in
  check_int sim ":tb:S" 12

let test_nested_records_and_arrays_of_records () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  type inner is record a : integer; end record;
  type outer is record i : inner; b : integer; end record;
  type pt is record x : integer; y : integer; end record;
  type pts is array (0 to 2) of pt;
  signal s1 : integer := 0;
  signal s2 : integer := 0;
begin
  p : process
    variable o : outer := (i => (a => 5), b => 6);
    variable a : pts := ((1, 2), (3, 4), (5, 6));
  begin
    o.i.a := o.i.a + 100;
    s1 <= o.i.a + o.b;
    a(1).y := 40;
    s2 <= a(0).x + a(1).y + a(2).x;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:S1" 111;
  check_int sim ":tb:S2" 46

(* TIME is a physical type: time/time is a pure integer, time*int scales *)
let test_physical_arithmetic_laws () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal ratio : integer := 0;
  signal scaled_ok : integer := 0;
begin
  p : process
    constant a : time := 100 ns;
    constant b : time := 40 ns;
  begin
    ratio <= a / b;
    if a * 2 = 200 ns and 2 * b = 80 ns then scaled_ok <= 1; end if;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:RATIO" 2;
  check_int sim ":tb:SCALED_OK" 1

let test_enum_case_ranges_and_others_aggregate () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  type st is (a, b, c, d, e);
  type vec is array (0 to 4) of integer;
  signal s : integer := 0;
  signal agg : integer := 0;
begin
  p : process
    variable v : st := d;
    variable r : integer := 0;
    variable w : vec := (2 => 9, others => 1);
  begin
    case v is
      when a to c => r := 1;
      when d => r := 2;
      when others => r := 3;
    end case;
    s <= r;
    agg <= w(0) + w(2) + w(4);
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:S" 2;
  check_int sim ":tb:AGG" 11

(* default generics apply when no actual is given; in ports may be left
   open when the formal has a default (LRM 1.1.1.2) *)
let test_defaults_and_open_ports () =
  let sim =
    simulate
      [
        {|
entity amp is
  generic (gain : integer := 3);
  port (x : in integer; y : out integer);
end amp;
architecture r of amp is
begin
  y <= x * gain;
end r;

entity src is
  port (enable : in bit := '1'; q : out integer);
end src;
architecture r of src is
begin
  q <= 9 when enable = '1' else 0;
end r;

entity tb is end tb;
architecture t of tb is
  component amp
    generic (gain : integer := 3);
    port (x : in integer; y : out integer);
  end component;
  component src
    port (enable : in bit := '1'; q : out integer);
  end component;
  signal stim : integer := 5;
  signal dflt : integer := 0;
  signal expl : integer := 0;
  signal v : integer := 0;
begin
  u1 : amp port map (x => stim, y => dflt);
  u2 : amp generic map (gain => 10) port map (x => stim, y => expl);
  u3 : src port map (enable => open, q => v);
end t;
|};
      ]
  in
  check_int sim ":tb:DFLT" 15;
  check_int sim ":tb:EXPL" 50;
  check_int sim ":tb:V" 9

let test_2d_signal_element_assignment () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  type m2 is array (0 to 1, 0 to 1) of integer;
  signal g : m2 := ((1, 2), (3, 4));
  signal s : integer := 0;
begin
  p : process
  begin
    g(0, 1) <= 20;
    wait for 1 ns;
    s <= g(0, 1) + g(1, 0);
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:S" 23

(* §3.2's hard case: a conversion function in an association list is
   diagnosed, not silently frozen at elaboration *)
let test_conversion_actual_diagnosed () =
  let c = Vhdl_compiler.create () in
  match
    Vhdl_compiler.compile c
      {|
entity sink is port (x : in integer); end sink;
architecture r of sink is begin end r;
entity tb is end tb;
architecture t of tb is
  component sink port (x : in integer); end component;
  function conv (b : bit) return integer is
  begin
    if b = '1' then return 1; else return 0; end if;
  end conv;
  signal s : bit := '0';
begin
  u : sink port map (x => conv(s));
end t;
|}
  with
  | exception Vhdl_compiler.Compile_error msgs ->
    let text = Format.asprintf "%a" Diag.pp_list msgs in
    Alcotest.(check bool) "conversion diagnosed" true
      (Astring_contains.contains text "conversion functions in association lists")
  | _ -> Alcotest.fail "expected the section-3.2 diagnostic"

(* port modes beyond in/out: buffer reads back, inout drives both ways;
   'EVENT crosses the port association *)
let test_port_modes_and_events () =
  let sim =
    simulate
      [
        {|
entity cnt is
  port (clk : in bit; q : buffer integer);
end cnt;
architecture r of cnt is
begin
  p : process (clk)
  begin
    if clk = '1' then
      q <= q + 1;
    end if;
  end process;
end r;

entity bump is
  port (v : inout integer);
end bump;
architecture r of bump is
begin
  p : process
  begin
    wait for 2 ns;
    v <= v + 5;
    wait;
  end process;
end r;

entity det is
  port (d : in bit; n : out integer);
end det;
architecture r of det is
begin
  p : process (d)
    variable c : integer := 0;
  begin
    if d'event and d = '1' then
      c := c + 1;
    end if;
    n <= c;
  end process;
end r;

entity tb is end tb;
architecture t of tb is
  component cnt port (clk : in bit; q : buffer integer); end component;
  component bump port (v : inout integer); end component;
  component det port (d : in bit; n : out integer); end component;
  signal clk : bit := '0';
  signal n : integer := 0;
  signal x : integer := 37;
  signal d : bit := '0';
  signal edges : integer := 0;
begin
  clock : process begin clk <= not clk after 5 ns; wait for 5 ns; end process;
  u1 : cnt port map (clk => clk, q => n);
  u2 : bump port map (v => x);
  d <= '1' after 10 ns, '0' after 20 ns, '1' after 30 ns;
  u3 : det port map (d => d, n => edges);
end t;
|};
      ]
  in
  check_int sim ":tb:N" 10;
  check_int sim ":tb:X" 42;
  check_int sim ":tb:EDGES" 2

(* wait statements are legal inside procedures called from processes *)
let test_wait_inside_procedure () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  procedure tick (signal clk : out bit) is
  begin
    clk <= '1';
    wait for 5 ns;
    clk <= '0';
    wait for 5 ns;
  end tick;
  signal clk : bit := '0';
  signal cycles : integer := 0;
begin
  gen : process
    variable n : integer := 0;
  begin
    while n < 3 loop
      tick(clk);
      n := n + 1;
    end loop;
    cycles <= n;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:CYCLES" 3

(* variable assignments respect the target's subtype constraint *)
let test_variable_constraint_checked () =
  let c = Vhdl_compiler.create () in
  ignore
    (Vhdl_compiler.compile c
       {|
entity tb is end tb;
architecture t of tb is
  type color is (red, orange, yellow, green, blue);
  subtype warm is color range red to yellow;
begin
  p : process
    variable w : warm := red;
  begin
    w := green;
    wait;
  end process;
end t;
|});
  let sim = Vhdl_compiler.elaborate c ~top:"tb" () in
  match Vhdl_compiler.run c sim ~max_ns:10 with
  | exception Rt.Simulation_error _ -> ()
  | _ -> Alcotest.fail "assignment outside the subtype must raise"

(* package-declared signals are globally shared *)
let test_package_signals () =
  let sim =
    simulate
      [
        {|
package bus_pkg is
  signal shared_count : integer := 100;
end bus_pkg;
|};
        {|
use work.bus_pkg.all;
entity tb is end tb;
architecture t of tb is
  signal local_copy : integer := 0;
begin
  p : process
  begin
    shared_count <= shared_count + 1;
    wait for 1 ns;
    local_copy <= shared_count;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:LOCAL_COPY" 101

(* slice aliases would silently alias the whole object: rejected *)
let test_partial_alias_rejected () =
  expect_compile_error
    "entity tb is end tb;
architecture t of tb is
  signal word : bit_vector (7 downto 0);
  alias hi : bit_vector (7 downto 4) is word (7 downto 4);
begin
end t;"

(* loop parameters are constants (LRM 8.8) *)
let test_loop_parameter_not_assignable () =
  expect_compile_error
    "entity tb is end tb;\narchitecture t of tb is\nbegin\n  p : process\n  begin\n    for i in 0 to 3 loop\n      i := 5;\n    end loop;\n    wait;\n  end process;\nend t;"

(* LRM 4.3.1.2: a signal initialiser may call user functions; the value is
   computed at elaboration *)
let test_signal_initialiser_calls_functions () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  function pick return integer is
  begin
    return 33;
  end pick;
  signal s : integer := pick;
  signal ok : integer := 0;
begin
  p : process begin if s = 33 then ok <= 1; end if; wait; end process;
end t;
|};
      ]
  in
  check_int sim ":tb:OK" 1

let test_arch_constant_calls_functions () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  function pick return integer is
  begin
    return 55;
  end pick;
  constant c : integer := pick;
  signal ok : integer := 0;
begin
  p : process begin if c = 55 then ok <= 1; end if; wait; end process;
end t;
|};
      ]
  in
  check_int sim ":tb:OK" 1

(* scalar type attributes have the attributed type; labeled concurrent
   assertions parse and fire on their signal's events *)
let test_scalar_type_attributes () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  type small is range 3 to 19;
  subtype mid is small range 5 to 9;
  signal a : integer := 0;
  signal b : integer := 0;
begin
  check : assert a >= 0 report "negative" severity note;
  p : process
  begin
    a <= integer(small'high) - integer(small'low);
    b <= integer(mid'high) + integer(mid'low);
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:A" 16;
  check_int sim ":tb:B" 14

(* all concurrent statement forms take labels; the classic delta-cycle
   swap reads both old values *)
let test_labels_and_delta_swap () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal a : integer := 0;
  signal b : integer := 0;
  signal c : integer := 0;
  signal x : integer := 1;
  signal y : integer := 2;
  signal done_x : integer := 0;
  signal done_y : integer := 0;
begin
  drv_a : a <= 5;
  drv_b : b <= a + 1 when a > 0 else 0;
  drv_c : with a select
    c <= 10 when 5, 20 when others;
  p1 : process
  begin
    x <= y;
    y <= x;
    wait for 1 ns;
    done_x <= x;
    done_y <= y;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:A" 5;
  check_int sim ":tb:B" 6;
  check_int sim ":tb:C" 10;
  check_int sim ":tb:DONE_X" 2;
  check_int sim ":tb:DONE_Y" 1

(* literal syntax corners: based bit strings with underscores, character
   choices, the full logical operator set *)
let test_literal_corners () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal n : integer := 0;
  signal m : integer := 0;
begin
  p : process
    variable ch : character := 'b';
    variable v : bit_vector (0 to 7) := B"1010_0001";
    variable x : bit_vector (0 to 7) := X"A1";
    variable o : bit_vector (0 to 8) := O"241";
    variable cnt : integer := 0;
    variable r : integer := 0;
  begin
    if v = x then cnt := cnt + 1; end if;
    if o(1 to 8) = x then cnt := cnt + 1; end if;
    n <= cnt;
    case ch is
      when 'a' => r := 1;
      when 'b' => r := 2;
      when others => r := 3;
    end case;
    m <= r;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:N" 2;
  check_int sim ":tb:M" 2

(* slice actuals in port maps: in slices follow the parent, out slices
   drive disjoint parts of the parent through per-element drivers *)
let test_slice_port_actuals () =
  let sim =
    simulate
      [
        {|
entity chew is port (pair : in bit_vector (0 to 1); q : out integer); end chew;
architecture r of chew is
begin
  q <= 1 when pair = "11" else 0;
end r;

entity nib_src is
  port (q : out bit_vector (0 to 1));
end nib_src;
architecture r of nib_src is
begin
  q <= "10" after 2 ns;
end r;

entity tb is end tb;
architecture t of tb is
  component chew port (pair : in bit_vector (0 to 1); q : out integer); end component;
  component nib_src port (q : out bit_vector (0 to 1)); end component;
  signal word : bit_vector (0 to 3) := "0110";
  signal got : integer := 0;
  signal assembled : bit_vector (0 to 3) := "0000";
  signal ok : integer := 0;
begin
  u : chew port map (pair => word(1 to 2), q => got);
  hi : nib_src port map (q => assembled(0 to 1));
  lo : nib_src port map (q => assembled(2 to 3));
  watch : process
  begin
    wait for 5 ns;
    if assembled = "1010" then ok <= 1; end if;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:GOT" 1;
  check_int sim ":tb:OK" 1

(* conditional assignments with multi-element waveforms; guards reading
   signals; lexicographic ordering on integer arrays *)
let test_waveforms_guards_ordering () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  type vec is array (1 to 3) of integer;
  signal sel : integer := 0;
  signal q : integer := 0;
  signal seen : integer := 0;
  signal en : integer := 0;
  signal gq : bit bus := '0';
  signal gseen : integer := 0;
  signal n : integer := 0;
begin
  q <= 1, 2 after 3 ns when sel = 0 else
       8, 9 after 3 ns;
  b : block (en > 2)
  begin
    gq <= guarded '1';
  end block;
  stim : process
  begin
    en <= 5 after 3 ns;
    wait for 6 ns;
    if gq = '1' then gseen <= 1; end if;
    seen <= q;
    wait;
  end process;
  p : process
    variable a : vec := (1, 2, 3);
    variable b2 : vec := (1, 2, 4);
    variable cnt : integer := 0;
  begin
    if a < b2 then cnt := cnt + 1; end if;
    if a /= b2 then cnt := cnt + 1; end if;
    if a <= a then cnt := cnt + 1; end if;
    n <= cnt;
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:SEEN" 2;
  check_int sim ":tb:GSEEN" 1;
  check_int sim ":tb:N" 3

(* access types (LRM 3.3): allocators, .all, aliasing, null, deallocate *)
let test_access_types () =
  let sim =
    simulate
      [
        {|
entity tb is end tb;
architecture t of tb is
  type int_ptr is access integer;
  type buf is array (0 to 3) of integer;
  type buf_ptr is access buf;
  signal a : integer := 0;
  signal b : integer := 0;
  signal flags : integer := 0;
  signal arr_sum : integer := 0;
begin
  p : process
    variable p1 : int_ptr;
    variable p2 : int_ptr;
    variable pb : buf_ptr;
    variable ok : integer := 0;
  begin
    p1 := new integer'(41);
    p1.all := p1.all + 1;
    a <= p1.all;
    p2 := p1;
    p2.all := 7;
    b <= p1.all;
    if p1 = p2 and p1 /= null then ok := ok + 1; end if;
    deallocate(p1);
    if p1 = null then ok := ok + 10; end if;
    flags <= ok;
    pb := new buf'(1, 2, 3, 4);
    pb.all(2) := 30;
    arr_sum <= pb.all(0) + pb.all(1) + pb.all(2) + pb.all(3);
    wait;
  end process;
end t;
|};
      ]
  in
  check_int sim ":tb:A" 42;
  check_int sim ":tb:B" 7;
  check_int sim ":tb:FLAGS" 11;
  check_int sim ":tb:ARR_SUM" 37

let test_null_dereference_raises () =
  let c = Vhdl_compiler.create () in
  ignore
    (Vhdl_compiler.compile c
       {|
entity tb is end tb;
architecture t of tb is
  type int_ptr is access integer;
begin
  p : process
    variable p1 : int_ptr;
    variable v : integer;
  begin
    v := p1.all;
    wait;
  end process;
end t;
|});
  let sim = Vhdl_compiler.elaborate c ~top:"tb" () in
  match Vhdl_compiler.run c sim ~max_ns:10 with
  | exception Rt.Simulation_error _ -> ()
  | _ -> Alcotest.fail "null dereference must raise"

let suite =
  [
    Alcotest.test_case "access types: allocators, .all, deallocate" `Quick
      test_access_types;
    Alcotest.test_case "null dereference raises" `Quick test_null_dereference_raises;
    Alcotest.test_case "waveform conditionals, guards, array ordering" `Quick
      test_waveforms_guards_ordering;
    Alcotest.test_case "slice actuals in port maps" `Quick test_slice_port_actuals;
    Alcotest.test_case "based bit strings and character choices" `Quick
      test_literal_corners;
    Alcotest.test_case "concurrent labels and the delta swap" `Quick
      test_labels_and_delta_swap;
    Alcotest.test_case "scalar type attributes, labeled asserts" `Quick
      test_scalar_type_attributes;
    Alcotest.test_case "loop parameters are not assignable" `Quick
      test_loop_parameter_not_assignable;
    Alcotest.test_case "signal initialisers may call functions" `Quick
      test_signal_initialiser_calls_functions;
    Alcotest.test_case "architecture constants may call functions" `Quick
      test_arch_constant_calls_functions;
    Alcotest.test_case "variable subtype constraints checked" `Quick
      test_variable_constraint_checked;
    Alcotest.test_case "package signals are shared" `Quick test_package_signals;
    Alcotest.test_case "partial aliases rejected" `Quick test_partial_alias_rejected;
    Alcotest.test_case "buffer/inout ports and port'event" `Quick
      test_port_modes_and_events;
    Alcotest.test_case "wait inside procedures" `Quick test_wait_inside_procedure;
    Alcotest.test_case "conversion functions in port maps diagnosed" `Quick
      test_conversion_actual_diagnosed;
    Alcotest.test_case "default generics and open ports" `Quick
      test_defaults_and_open_ports;
    Alcotest.test_case "2-D signal element assignment" `Quick
      test_2d_signal_element_assignment;
    Alcotest.test_case "function results index like arrays" `Quick
      test_indexing_function_results;
    Alcotest.test_case "nested records and arrays of records" `Quick
      test_nested_records_and_arrays_of_records;
    Alcotest.test_case "physical arithmetic laws" `Quick test_physical_arithmetic_laws;
    Alcotest.test_case "enum case ranges, others aggregates" `Quick
      test_enum_case_ranges_and_others_aggregate;
    Alcotest.test_case "overloading on the result type alone" `Quick
      test_result_type_overloading;
    Alcotest.test_case "integer / truncates toward zero" `Quick
      test_division_truncates_toward_zero;
    Alcotest.test_case "relational operators do not associate" `Quick
      test_relations_do_not_associate;
    Alcotest.test_case "'SUCC at the bound raises" `Quick test_succ_at_bound_raises;
    Alcotest.test_case "null-range generate produces nothing" `Quick
      test_null_range_generate;
    Alcotest.test_case "null-range loops never run" `Quick test_null_range_loop;
    Alcotest.test_case "record aggregates with named fields" `Quick
      test_record_named_aggregate;
    Alcotest.test_case "attributes of unconstrained formals" `Quick
      test_attributes_of_unconstrained_formal;
    Alcotest.test_case "wait until with timeout" `Quick test_wait_until_with_timeout;
    Alcotest.test_case "function out parameters rejected" `Quick
      test_function_out_param_rejected;
    Alcotest.test_case "target type disambiguates literals" `Quick
      test_result_type_resolution;
    Alcotest.test_case "slice bounds and direction" `Quick test_slice_direction;
  ]
