(* VIF serialization: round-trip properties over generated types, values,
   and KIR expressions, plus design-library behavior. *)

module S = Vhdl_util.Sexp

(* ---- generators ---- *)

let gen_dir = QCheck.Gen.oneofl [ Types.To; Types.Downto ]

let gen_scalar_ty =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Std.integer;
      QCheck.Gen.return Std.boolean;
      QCheck.Gen.return Std.bit;
      QCheck.Gen.return Std.time;
      QCheck.Gen.return Std.real;
      QCheck.Gen.map
        (fun (lo, len) -> Types.subtype Std.integer ~constr:(Types.Crange (lo, Types.To, lo + len)))
        QCheck.Gen.(pair (int_range (-100) 100) (int_range 0 50));
      QCheck.Gen.map
        (fun n ->
          {
            Types.base = Printf.sprintf "WORK.T.E%d" n;
            kind = Types.Kenum (Array.init (max 1 n) (fun i -> Printf.sprintf "L%d" i));
            constr = None;
          })
        QCheck.Gen.(int_range 1 6);
    ]

let rec gen_ty depth st =
  if depth = 0 then gen_scalar_ty st
  else
    QCheck.Gen.frequency
      [
        (3, gen_scalar_ty);
        ( 1,
          QCheck.Gen.map2
            (fun index elem ->
              {
                Types.base = "WORK.T.ARR";
                kind = Types.Karray { index; elem };
                constr = Some (Types.Crange (0, Types.To, 3));
              })
            gen_scalar_ty
            (gen_ty (depth - 1)) );
        ( 1,
          QCheck.Gen.map
            (fun fields ->
              {
                Types.base = "WORK.T.REC";
                kind =
                  Types.Krecord (List.mapi (fun i t -> (Printf.sprintf "F%d" i, t)) fields);
                constr = None;
              })
            (QCheck.Gen.list_size (QCheck.Gen.int_range 1 3) (gen_ty (depth - 1))) );
      ]
      st

let rec gen_value depth st =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun n -> Value.Vint n) (int_range (-1000) 1000);
        map (fun n -> Value.Venum (abs n mod 4)) small_int;
        map (fun n -> Value.Vphys n) (int_range 0 1_000_000);
        map (fun x -> Value.Vfloat (Float.of_int x /. 8.0)) (int_range (-100) 100);
      ]
      st
  else
    frequency
      [
        (3, gen_value 0);
        ( 1,
          map
            (fun elems ->
              Value.Varray
                {
                  bounds = (0, Types.To, List.length elems - 1);
                  elems = Array.of_list elems;
                })
            (list_size (int_range 1 4) (gen_value (depth - 1))) );
        ( 1,
          map
            (fun vs ->
              Value.Vrecord (List.mapi (fun i v -> (Printf.sprintf "F%d" i, v)) vs))
            (list_size (int_range 1 3) (gen_value (depth - 1))) );
      ]
      st

let rec gen_expr depth st =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun v -> Kir.Elit v) (gen_value 1);
        map
          (fun (l, i) -> Kir.Evar { level = l; index = i; name = "V" })
          (pair (int_range 0 3) (int_range (-3) 10));
        map (fun i -> Kir.Egeneric { index = i; name = "G" }) (int_range 0 5);
        map (fun i -> Kir.Esig (Kir.Sig_local i)) (int_range 0 10);
        return (Kir.Esig Kir.Sig_guard);
        return (Kir.Esig_attr (Kir.Sig_local 0, Kir.Sa_event));
      ]
      st
  else
    frequency
      [
        (2, gen_expr 0);
        ( 2,
          map2
            (fun (op, a) b -> Kir.Ebin (op, a, b))
            (pair (oneofl [ Kir.Badd; Kir.Bmul; Kir.Band; Kir.Beq; Kir.Bconcat ])
               (gen_expr (depth - 1)))
            (gen_expr (depth - 1)) );
        (1, map (fun a -> Kir.Eun (Kir.Uneg, a)) (gen_expr (depth - 1)));
        (1, map2 (fun a i -> Kir.Eindex (a, i)) (gen_expr (depth - 1)) (gen_expr 0));
        (1, map (fun a -> Kir.Efield (a, "F1")) (gen_expr (depth - 1)));
        ( 1,
          map
            (fun args -> Kir.Ecall (Kir.F_user "WORK.P:F/INTEGER", args))
            (list_size (int_range 0 3) (gen_expr (depth - 1))) );
        (1, map (fun a -> Kir.Econvert (Kir.To_integer, a)) (gen_expr (depth - 1)));
        (1, map (fun a -> Kir.Earray_attr (a, Kir.At_length)) (gen_expr (depth - 1)));
      ]
      st

let ty_roundtrip =
  QCheck.Test.make ~name:"type descriptors round-trip through VIF" ~count:300
    (QCheck.make (gen_ty 2))
    (fun ty -> Vif.ty_of_sexp (Vif.sexp_of_ty ty) = ty)

let value_roundtrip =
  QCheck.Test.make ~name:"values round-trip through VIF" ~count:300
    (QCheck.make (gen_value 3))
    (fun v -> Value.equal (Vif.value_of_sexp (Vif.sexp_of_value v)) v)

let expr_roundtrip =
  QCheck.Test.make ~name:"KIR expressions round-trip through VIF" ~count:300
    (QCheck.make (gen_expr 3))
    (fun e -> Vif.expr_of_sexp (Vif.sexp_of_expr e) = e)

(* random statements: covers targets, waveforms (incl. null transactions),
   loops with labels, calls with signal args, waits, and asserts *)
let gen_stmt depth0 =
  let open QCheck.Gen in
  let gen_target =
    map
      (fun (l, i) -> Kir.Tvar { level = l; index = i; name = "V" })
      (pair (int_range 0 2) (int_range (-2) 6))
  in
  let gen_sig_target = map (fun i -> Kir.Ts_sig (Kir.Sig_local i)) (int_range 0 6) in
  let gen_wave =
    list_size (int_range 1 3)
      (map2
         (fun v after ->
           { Kir.wv_value = v; wv_after = Option.map (fun n -> Kir.Elit (Value.Vint n)) after })
         (oneof [ return None; map Option.some (gen_expr 1) ])
         (opt (int_range 0 99)))
  in
  let rec go depth st =
    if depth = 0 then
      oneof
        [
          return Kir.Snull;
          map2 (fun t e -> Kir.Sassign (t, e, None)) gen_target (gen_expr 1);
          map3
            (fun target waveform guarded ->
              Kir.Ssig_assign
                { target; mode = Kir.Inertial; waveform; guarded; line = 1 })
            gen_sig_target gen_wave bool;
          map
            (fun c -> Kir.Sexit { cond = c; label = Some "L" })
            (oneof [ return None; map Option.some (gen_expr 0) ]);
          map
            (fun e -> Kir.Sreturn e)
            (oneof [ return None; map Option.some (gen_expr 1) ]);
          map2
            (fun c r ->
              Kir.Sassert { cond = c; report = r; severity = None; line = 2 })
            (gen_expr 1)
            (oneof [ return None; map Option.some (gen_expr 0) ]);
          map3
            (fun on until for_ ->
              Kir.Swait
                {
                  on = List.map (fun i -> Kir.Sig_local i) on;
                  until;
                  for_ = Option.map (fun n -> Kir.Elit (Value.Vint n)) for_;
                  line = 3;
                })
            (list_size (int_range 0 2) (int_range 0 5))
            (oneof [ return None; map Option.some (gen_expr 0) ])
            (opt (int_range 0 50));
        ]
        st
    else
      frequency
        [
          (2, go 0);
          ( 1,
            map3
              (fun c a b -> Kir.Sif ([ (c, a) ], b))
              (gen_expr 1)
              (list_size (int_range 0 2) (go (depth - 1)))
              (list_size (int_range 0 2) (go (depth - 1))) );
          ( 1,
            map2
              (fun body (lo, hi) ->
                Kir.Sfor
                  {
                    var = 0;
                    var_name = "I";
                    range = (Kir.Elit (Value.Vint lo), Types.To, Kir.Elit (Value.Vint hi));
                    body;
                    loop_label = Some "L";
                  })
              (list_size (int_range 1 2) (go (depth - 1)))
              (pair (int_range 0 3) (int_range 4 9)) );
          ( 1,
            map2
              (fun c body -> Kir.Swhile (c, body, None))
              (gen_expr 1)
              (list_size (int_range 1 2) (go (depth - 1))) );
          ( 1,
            map
              (fun args ->
                Kir.Scall
                  ( Kir.P_user "WORK.P:PR/INTEGER",
                    List.map
                      (fun e ->
                        {
                          Kir.ca_mode = Kir.Arg_in;
                          ca_expr = e;
                          ca_target = None;
                          ca_signal = None;
                        })
                      args ))
              (list_size (int_range 0 3) (gen_expr 1)) );
        ]
        st
  in
  go depth0

let stmt_roundtrip =
  QCheck.Test.make ~name:"KIR statements round-trip through VIF" ~count:300
    (QCheck.make (gen_stmt 3))
    (fun st -> Vif.stmt_of_sexp (Vif.sexp_of_stmt st) = st)

let value_roundtrip_via_text =
  QCheck.Test.make ~name:"values survive the textual VIF form" ~count:200
    (QCheck.make (gen_value 3))
    (fun v ->
      let text = S.to_string_indented (Vif.sexp_of_value v) in
      Value.equal (Vif.value_of_sexp (S.of_string text)) v)

(* ---- statements ---- *)

let test_stmt_roundtrip () =
  let stmt =
    Kir.Sif
      ( [
          ( Kir.Ebin (Kir.Blt, Kir.Evar { level = 0; index = 0; name = "X" }, Kir.Elit (Value.Vint 5)),
            [
              Kir.Ssig_assign
                {
                  target = Kir.Ts_index (Kir.Ts_sig (Kir.Sig_local 2), Kir.Elit (Value.Vint 1));
                  mode = Kir.Transport;
                  waveform =
                    [
                      { Kir.wv_value = Some (Kir.Elit (Value.Venum 1)); wv_after = Some (Kir.Elit (Value.Vphys 5)) };
                    ];
                  guarded = true;
                  line = 12;
                };
              Kir.Swait { on = [ Kir.Sig_local 0 ]; until = None; for_ = None; line = 13 };
            ] );
        ],
        [
          Kir.Sfor
            {
              var = 0;
              var_name = "I";
              range = (Kir.Elit (Value.Vint 0), Kir.To, Kir.Elit (Value.Vint 7));
              body = [ Kir.Snext { cond = None; label = Some "OUTER" }; Kir.Snull ];
              loop_label = Some "OUTER";
            };
          Kir.Scall
            ( Kir.P_user "WORK.P:PR/INTEGER",
              [
                {
                  Kir.ca_mode = Kir.Arg_inout;
                  ca_expr = Kir.Evar { level = 0; index = 1; name = "Y" };
                  ca_target = Some (Kir.Tvar { level = 0; index = 1; name = "Y" });
                  ca_signal = None;
                };
              ] );
        ] )
  in
  Alcotest.(check bool) "statement round-trips" true
    (Vif.stmt_of_sexp (Vif.sexp_of_stmt stmt) = stmt)

(* ---- libraries ---- *)

let mk_entity ?(seq = 0) name =
  let info =
    Unit_info.Uentity
      { Unit_info.en_name = name; en_generics = []; en_ports = []; en_context = [] }
  in
  {
    Unit_info.u_library = "WORK";
    u_key = Unit_info.key_of info;
    u_info = info;
    u_deps = [];
    u_source_lines = 3;
    u_sequence = seq;
  }

let mk_arch ?(seq = 0) ~entity name =
  let info =
    Unit_info.Uarch
      {
        Unit_info.ar_name = name;
        ar_entity = entity;
        ar_constants = [];
        ar_signals = [];
        ar_components = [];
        ar_subprograms = [];
        ar_body = [];
        ar_config_specs = [];
      }
  in
  {
    Unit_info.u_library = "WORK";
    u_key = Unit_info.key_of info;
    u_info = info;
    u_deps = [ ("WORK", "entity:" ^ entity) ];
    u_source_lines = 5;
    u_sequence = seq;
  }

let with_temp_dir f =
  let dir = Filename.temp_file "viftest" "" in
  Sys.remove dir;
  f dir

let test_library_disk_roundtrip () =
  with_temp_dir @@ fun dir ->
  let lib = Library.create ~dir ~name:"WORK" () in
  Library.insert lib (mk_entity "E1");
  Library.insert lib (mk_arch ~entity:"E1" "A1");
  (* a second library instance sees the units from disk, with dependencies
     resolved on read *)
  let lib2 = Library.create ~dir ~name:"WORK" () in
  (match Library.find lib2 ~library:"WORK" ~key:"arch:E1(A1)" with
  | Some u -> Alcotest.(check int) "arch deps loaded" 1 (List.length u.Unit_info.u_deps)
  | None -> Alcotest.fail "arch not found from disk");
  Alcotest.(check bool) "entity was pulled in as a dependency" true
    (Library.find lib2 ~library:"WORK" ~key:"entity:E1" <> None);
  Alcotest.(check int) "both units visible" 2 (List.length (Library.all lib2))

let test_library_sequence_order () =
  with_temp_dir @@ fun dir ->
  let lib = Library.create ~dir ~name:"WORK" () in
  Library.insert lib (mk_entity "E");
  Library.insert lib (mk_arch ~entity:"E" "FIRST");
  Library.insert lib (mk_arch ~entity:"E" "SECOND");
  Library.insert lib (mk_arch ~entity:"E" "THIRD");
  let seqs =
    Library.all lib
    |> List.filter_map (fun (u : Unit_info.compiled_unit) ->
           match u.Unit_info.u_info with
           | Unit_info.Uarch ar -> Some (ar.Unit_info.ar_name, u.Unit_info.u_sequence)
           | _ -> None)
  in
  let third = List.assoc "THIRD" seqs in
  Alcotest.(check bool) "latest has the highest sequence" true
    (List.for_all (fun (_, s) -> s <= third) seqs);
  (* recompiling FIRST makes it the latest: the §3.3 nondeterminism *)
  Library.insert lib (mk_arch ~entity:"E" "FIRST");
  let lib2 = Library.create ~dir ~name:"WORK" () in
  let seqs2 =
    Library.all lib2
    |> List.filter_map (fun (u : Unit_info.compiled_unit) ->
           match u.Unit_info.u_info with
           | Unit_info.Uarch ar -> Some (ar.Unit_info.ar_name, u.Unit_info.u_sequence)
           | _ -> None)
  in
  Alcotest.(check bool) "recompiled FIRST is now latest (persisted)" true
    (List.assoc "FIRST" seqs2 > List.assoc "THIRD" seqs2)

let test_reference_library () =
  with_temp_dir @@ fun ref_dir ->
  with_temp_dir @@ fun work_dir ->
  let ref_lib = Library.create ~dir:ref_dir ~name:"GATES" () in
  Library.insert ref_lib (mk_entity "NAND2");
  let work = Library.create ~dir:work_dir ~name:"WORK" () in
  Library.add_reference work ~as_name:"GATES" ref_lib;
  Alcotest.(check bool) "reference library resolves" true
    (Library.find work ~library:"GATES" ~key:"entity:NAND2" <> None);
  Alcotest.(check bool) "work does not leak into reference lookups" true
    (Library.find work ~library:"GATES" ~key:"entity:MISSING" = None)

let test_human_readable_dump () =
  with_temp_dir @@ fun dir ->
  let lib = Library.create ~dir ~name:"WORK" () in
  Library.insert lib (mk_entity "DUMPME");
  match Library.dump lib ~library:"WORK" ~key:"entity:DUMPME" with
  | Some text ->
    Alcotest.(check bool) "mentions the unit" true (Astring_contains.contains text "DUMPME");
    Alcotest.(check bool) "is multi-line (indented)" true (String.contains text '\n')
  | None -> Alcotest.fail "dump failed"

let suite =
  [
    QCheck_alcotest.to_alcotest ty_roundtrip;
    QCheck_alcotest.to_alcotest value_roundtrip;
    QCheck_alcotest.to_alcotest expr_roundtrip;
    QCheck_alcotest.to_alcotest stmt_roundtrip;
    QCheck_alcotest.to_alcotest value_roundtrip_via_text;
    Alcotest.test_case "statements round-trip" `Quick test_stmt_roundtrip;
    Alcotest.test_case "disk library round-trip with dependency fix-up" `Quick
      test_library_disk_roundtrip;
    Alcotest.test_case "compilation-order stamps (latest-arch input)" `Quick
      test_library_sequence_order;
    Alcotest.test_case "reference libraries are consulted" `Quick test_reference_library;
    Alcotest.test_case "human-readable VIF dump" `Quick test_human_readable_dump;
  ]
