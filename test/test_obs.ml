(* The observability battery: event-line round-trips, the lifecycle
   grammar checker, flight-recorder ring semantics, dump documents, the
   JSONL sink, and the rolling SLO windows (including their agreement
   with the process-lifetime telemetry histograms, which the chaos
   campaign's ±20% acceptance check leans on). *)

module E = Obs_event
module Tm = Vhdl_telemetry.Telemetry
module J = Vhdl_perf.Perf.Json_in

(* ------------------------------------------------------------------ *)
(* Events *)

let all_kinds =
  [
    E.Accept; E.Admit; E.Shed; E.Start; E.Finish; E.Reject; E.Recycle; E.Drain;
    E.Breach; E.Dump; E.Flush;
  ]

let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      match E.kind_of_name (E.kind_name k) with
      | Some k' -> Alcotest.(check bool) (E.kind_name k) true (k = k')
      | None -> Alcotest.failf "kind %s does not parse back" (E.kind_name k))
    all_kinds

let test_event_line_roundtrip () =
  let e =
    E.make ~rid:42
      ~fields:
        [ ("verb", E.S "compile"); ("queue_depth", E.I 3); ("service_us", E.F 1234.5) ]
      E.Finish
  in
  match E.of_line (E.to_line e) with
  | Error msg -> Alcotest.fail msg
  | Ok got ->
    Alcotest.(check bool) "kind" true (got.E.e_kind = E.Finish);
    Alcotest.(check (option int)) "rid" (Some 42) got.E.e_rid;
    Alcotest.(check (option string)) "string field" (Some "compile")
      (E.field_str got "verb");
    (match E.field got "queue_depth" with
    | Some (E.I 3) -> ()
    | _ -> Alcotest.fail "int field lost");
    (match E.field got "service_us" with
    | Some (E.F x) -> Alcotest.(check (float 1e-6)) "float field" 1234.5 x
    | _ -> Alcotest.fail "float field lost")

let test_event_line_no_rid () =
  let e = E.make ~fields:[ ("phase", E.S "begin") ] E.Drain in
  match E.of_line (E.to_line e) with
  | Ok got -> Alcotest.(check (option int)) "no rid" None got.E.e_rid
  | Error msg -> Alcotest.fail msg

let test_of_line_rejects_garbage () =
  List.iter
    (fun line ->
      match E.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [ ""; "not json"; "{\"ts\":1.0}"; "{\"ts\":1.0,\"ev\":\"no-such-kind\"}" ]

(* a well-formed request lifecycle passes the checker *)
let test_check_log_accepts_valid () =
  let log =
    [
      E.make ~rid:1 E.Accept;
      E.make ~rid:1 ~fields:[ ("queue_depth", E.I 1) ] E.Admit;
      E.make ~rid:1 ~fields:[ ("verb", E.S "compile") ] E.Start;
      E.make ~rid:1 ~fields:[ ("status", E.S "ok") ] E.Finish;
      E.make ~rid:2 E.Accept;
      E.make ~rid:2 ~fields:[ ("reason", E.S "overload") ] E.Shed;
      E.make ~rid:3 E.Accept;
      E.make ~rid:3 ~fields:[ ("reason", E.S "torn") ] E.Reject;
      E.make ~fields:[ ("phase", E.S "stopped") ] E.Drain;
    ]
  in
  Alcotest.(check (list string)) "no violations" [] (E.check_log log)

let test_check_log_detects_violations () =
  let expect_violation name log =
    Alcotest.(check bool) name true (E.check_log log <> [])
  in
  expect_violation "non-monotone accept rids"
    [ E.make ~rid:2 E.Accept; E.make ~rid:1 E.Accept ];
  expect_violation "start for an unaccepted rid"
    [ E.make ~rid:1 E.Accept; E.make ~rid:7 E.Start ];
  expect_violation "two starts for one rid"
    [
      E.make ~rid:1 E.Accept; E.make ~rid:1 E.Start; E.make ~rid:1 E.Start;
      E.make ~rid:1 E.Finish;
    ];
  expect_violation "finish without start"
    [ E.make ~rid:1 E.Accept; E.make ~rid:1 E.Finish ];
  expect_violation "start without finish"
    [ E.make ~rid:1 E.Accept; E.make ~rid:1 E.Start ]

(* ------------------------------------------------------------------ *)
(* Flight-recorder ring *)

let test_ring_keeps_last_n () =
  let r = Obs_ring.create ~events:4 () in
  for i = 1 to 10 do
    Obs_ring.push r (E.make ~rid:i E.Accept)
  done;
  Alcotest.(check int) "pushed total" 10 (Obs_ring.pushed r);
  let rids = List.filter_map (fun e -> e.E.e_rid) (Obs_ring.events r) in
  Alcotest.(check (list int)) "last four, oldest first" [ 7; 8; 9; 10 ] rids

let test_ring_request_deltas () =
  let r = Obs_ring.create ~requests:2 () in
  Obs_ring.note_request_delta r ~rid:1 [ ("lexer.tokens", 10) ];
  Obs_ring.note_request_delta r ~rid:2 [ ("lexer.tokens", 20) ];
  Obs_ring.note_request_delta r ~rid:3 [ ("lexer.tokens", 30) ];
  let rids = List.map (fun d -> d.Obs_ring.rd_rid) (Obs_ring.request_deltas r) in
  Alcotest.(check (list int)) "last two requests" [ 2; 3 ] rids

let test_dump_json_parses () =
  let r = Obs_ring.create ~events:8 () in
  Obs_ring.push r (E.make ~rid:5 E.Accept);
  Obs_ring.push r (E.make ~rid:5 ~fields:[ ("verb", E.S "compile") ] E.Start);
  Obs_ring.note_request_delta r ~rid:5 [ ("ag.attrs_evaluated", 7) ];
  let doc = Obs_ring.dump_json ~extra:[ ("answer", "42") ] ~reason:"firewall" ~rid:5 r in
  match J.parse doc with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
    Alcotest.(check (option string)) "reason" (Some "firewall")
      (Option.bind (J.mem "reason" j) J.to_str);
    Alcotest.(check (option int)) "rid" (Some 5) (Option.bind (J.mem "rid" j) J.to_int);
    Alcotest.(check (option int)) "extra field" (Some 42)
      (Option.bind (J.mem "answer" j) J.to_int);
    (match J.mem "events" j with
    | Some (J.Arr evs) -> Alcotest.(check int) "both events dumped" 2 (List.length evs)
    | _ -> Alcotest.fail "events array missing");
    match J.mem "request_deltas" j with
    | Some (J.Arr [ d ]) ->
      Alcotest.(check (option int)) "delta rid" (Some 5)
        (Option.bind (J.mem "rid" d) J.to_int)
    | _ -> Alcotest.fail "request_deltas missing"

(* ------------------------------------------------------------------ *)
(* The sink + dump hub *)

let temp_path suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "vhdl-obs-test-%d-%d%s" (Unix.getpid ()) (Random.int 100000) suffix)

let test_log_sink_roundtrip () =
  let path = temp_path ".jsonl" in
  let t =
    Obs_log.create
      { Obs_log.default_config with Obs_log.o_events_out = Some path }
  in
  Obs_log.event t ~rid:1 Obs_event.Accept;
  Obs_log.event t ~rid:1 ~fields:[ ("verb", E.S "ping") ] Obs_event.Start;
  Obs_log.event t ~rid:1 ~fields:[ ("status", E.S "ok") ] Obs_event.Finish;
  Obs_log.close t;
  (match E.read_log path with
  | Error msg -> Alcotest.fail msg
  | Ok (events, warnings) ->
    Alcotest.(check int) "three lines" 3 (List.length events);
    Alcotest.(check (list string)) "no warnings" [] warnings;
    Alcotest.(check (list string)) "grammar holds" [] (E.check_log events));
  Sys.remove path

let test_flight_dump_writes_file () =
  let dir = temp_path ".dumps" in
  let t =
    Obs_log.create { Obs_log.default_config with Obs_log.o_flight_dir = dir }
  in
  Obs_log.event t ~rid:9 Obs_event.Accept;
  (match Obs_log.dump_flight t ~reason:"watchdog" ~rid:9 () with
  | Error msg -> Alcotest.fail msg
  | Ok path ->
    Alcotest.(check bool) "file exists" true (Sys.file_exists path);
    Alcotest.(check bool) "named after the rid" true
      (Astring_contains.contains (Filename.basename path) "-rid9-");
    Alcotest.(check bool) "named after the reason" true
      (Astring_contains.contains (Filename.basename path) "watchdog");
    (match J.parse (Vhdl_util.Unix_compat.read_file path) with
    | Error msg -> Alcotest.fail msg
    | Ok j ->
      Alcotest.(check bool) "metrics snapshot embedded" true (J.mem "metrics" j <> None));
    Sys.remove path);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let observe_each slo ~now latencies =
  List.iter
    (fun l -> Obs_slo.observe slo ~now ~latency_us:l ~shed:false ~internal:false ())
    latencies

(* ------------------------------------------------------------------ *)
(* Tail triage: phase attribution, exemplar thresholds, exemplar dumps,
   retention *)

let finish_with ~rid ~service_us phases =
  E.make ~rid
    ~fields:
      (( "status", E.S "ok" )
      :: ("service_us", E.F service_us)
      :: Obs_attr.fields phases)
    E.Finish

let lifecycle ~rid finish =
  [ E.make ~rid E.Accept; E.make ~rid ~fields:[ ("verb", E.S "compile") ] E.Start; finish ]

(* the tentpole invariant: a finish's ph_* fields must sum to within 10%
   of the service_us they explain *)
let test_check_log_phase_sum () =
  let ok =
    lifecycle ~rid:1
      (finish_with ~rid:1 ~service_us:1000.0
         [ ("parse", 300.0); ("attrs", 650.0); ("other", 50.0) ])
  in
  Alcotest.(check (list string)) "agreeing sum accepted" [] (E.check_log ok);
  let off =
    lifecycle ~rid:1
      (finish_with ~rid:1 ~service_us:1000.0 [ ("parse", 300.0); ("attrs", 400.0) ])
  in
  Alcotest.(check bool) "30% disagreement flagged" true (E.check_log off <> []);
  (* no phases at all is fine: pre-attribution logs still check clean *)
  let bare =
    lifecycle ~rid:1
      (E.make ~rid:1 ~fields:[ ("status", E.S "ok"); ("service_us", E.F 1000.0) ] E.Finish)
  in
  Alcotest.(check (list string)) "phase-free finish accepted" [] (E.check_log bare);
  (* sub-microsecond services never false-positive (1us tolerance floor) *)
  let tiny =
    lifecycle ~rid:1 (finish_with ~rid:1 ~service_us:0.4 [ ("other", 1.1) ])
  in
  Alcotest.(check (list string)) "tiny service tolerated" [] (E.check_log tiny)

let test_with_other_accounts_service () =
  let phases =
    Obs_attr.with_other ~service_us:1000.0
      [ ("parser", 200.0); ("attribute evaluation", 300.0); ("VIF write", 0.0) ]
  in
  let sum = List.fold_left (fun a (_, v) -> a +. v) 0.0 phases in
  Alcotest.(check (float 1e-6)) "phases sum to the service time" 1000.0 sum;
  Alcotest.(check (option (float 1e-6))) "residual is other" (Some 500.0)
    (List.assoc_opt "other" phases);
  Alcotest.(check (option (float 1e-6))) "prose names shortened" (Some 300.0)
    (List.assoc_opt "attrs" phases);
  Alcotest.(check (option (float 1e-6))) "zero phases elided" None
    (List.assoc_opt "vif_write" phases)

(* adaptive exemplar threshold: the p99 objective when configured, else
   k x window p50 once the window holds enough measurements *)
let test_exemplar_threshold_semantics () =
  let slo = Obs_slo.create ~window_s:60.0 () in
  let summary n =
    observe_each slo ~now:1.0 (List.init n (fun _ -> 100.0));
    Obs_slo.summary slo ~now:1.5
  in
  let thin = summary 4 in
  Alcotest.(check (option (float 1e-6))) "too few samples, no objective: off" None
    (Obs_attr.exemplar_threshold_us ~objectives:Obs_slo.no_objectives
       ~summary:thin ~k:4.0 ~min_observed:8);
  (* but an explicit objective arms it immediately *)
  Alcotest.(check (option (float 1e-6))) "objective p99 wins" (Some 50_000.0)
    (Obs_attr.exemplar_threshold_us
       ~objectives:{ Obs_slo.o_p99_ms = Some 50.0; o_shed_pct = None }
       ~summary:thin ~k:4.0 ~min_observed:8);
  let warm = summary 8 in
  Alcotest.(check bool) "window warm" true (warm.Obs_slo.s_observed >= 8);
  (match
     Obs_attr.exemplar_threshold_us ~objectives:Obs_slo.no_objectives
       ~summary:warm ~k:4.0 ~min_observed:8
   with
  | Some th ->
    Alcotest.(check (float 1e-6)) "k x window p50" (4.0 *. warm.Obs_slo.s_p50_us) th
  | None -> Alcotest.fail "warm window should arm the threshold")

(* the window aggregates per-phase time so a breach can say what drove it *)
let test_slo_phase_attribution () =
  let slo = Obs_slo.create ~window_s:60.0 () in
  Obs_slo.observe slo ~now:1.0 ~latency_us:1000.0
    ~phases:[ ("attrs", 600.0); ("other", 400.0) ] ~shed:false ~internal:false ();
  Obs_slo.observe slo ~now:1.1 ~latency_us:2000.0
    ~phases:[ ("attrs", 1400.0); ("cascade", 500.0); ("other", 100.0) ]
    ~shed:false ~internal:false ();
  let s = Obs_slo.summary slo ~now:1.5 in
  Alcotest.(check (option (float 1e-6))) "attrs merged" (Some 2000.0)
    (List.assoc_opt "attrs" s.Obs_slo.s_phase_us);
  (match s.Obs_slo.s_phase_us with
  | (top, _) :: _ -> Alcotest.(check string) "sorted by share" "attrs" top
  | [] -> Alcotest.fail "no phase table");
  let att = Obs_attr.attribution s.Obs_slo.s_phase_us in
  Alcotest.(check bool) "attribution names the top phase"
    true
    (Astring_contains.contains att "attrs 67%")

let exemplar ~rid =
  {
    Obs_log.x_rid = rid;
    x_verb = "compile";
    x_status = "ok";
    x_service_us = 5000.0;
    x_threshold_us = 1000.0;
    x_phases_us = [ ("attrs", 4000.0); ("other", 1000.0) ];
    x_trace = "[]";
    x_spans_dropped = 0;
  }

let test_exemplar_dump_and_rate_limit () =
  let dir = temp_path ".exemplars" in
  let t =
    Obs_log.create { Obs_log.default_config with Obs_log.o_flight_dir = dir }
  in
  (match Obs_log.dump_exemplar ~now:10.0 t (exemplar ~rid:7) with
  | Error msg -> Alcotest.fail msg
  | Ok None -> Alcotest.fail "first exemplar must not be suppressed"
  | Ok (Some path) ->
    Alcotest.(check bool) "file exists" true (Sys.file_exists path);
    Alcotest.(check bool) "named after the rid" true
      (Astring_contains.contains (Filename.basename path) "-rid7.");
    (match J.parse (Vhdl_util.Unix_compat.read_file path) with
    | Error msg -> Alcotest.fail msg
    | Ok j ->
      (match J.mem "trace" j with
      | Some (J.Arr _) -> ()
      | _ -> Alcotest.fail "trace array missing");
      Alcotest.(check (option string)) "reason" (Some "exemplar")
        (Option.bind (J.mem "reason" j) J.to_str)));
  (* inside the min gap: suppressed, not an error *)
  (match Obs_log.dump_exemplar ~now:10.5 t (exemplar ~rid:8) with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "exemplar inside the min gap not suppressed"
  | Error msg -> Alcotest.fail msg);
  (* past the gap: dumping resumes *)
  (match Obs_log.dump_exemplar ~now:12.0 t (exemplar ~rid:9) with
  | Ok (Some _) -> ()
  | Ok None -> Alcotest.fail "exemplar past the gap still suppressed"
  | Error msg -> Alcotest.fail msg);
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let test_dump_retention_cap () =
  let dir = temp_path ".retention" in
  let t =
    Obs_log.create
      {
        Obs_log.default_config with
        Obs_log.o_flight_dir = dir;
        o_max_dumps = 2;
        o_exemplar_min_gap_s = 0.0;
      }
  in
  let paths =
    List.map
      (fun i ->
        match Obs_log.dump_exemplar ~now:(float_of_int i) t (exemplar ~rid:i) with
        | Ok (Some p) -> p
        | Ok None -> Alcotest.failf "exemplar %d suppressed with a zero gap" i
        | Error msg -> Alcotest.fail msg)
      [ 1; 2; 3; 4 ]
  in
  let on_disk =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  Alcotest.(check int) "cap enforced" 2 (List.length on_disk);
  (* the survivors are the newest two (deletion is oldest-first) *)
  let newest =
    List.filteri (fun i _ -> i >= 2) (List.map Filename.basename paths)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "oldest deleted" newest on_disk;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Rolling SLO windows *)

(* the acceptance property the chaos campaign checks end-to-end: a window
   spanning the samples reports the same percentiles as a telemetry
   histogram fed the same values (shared bucketing) *)
let test_slo_agrees_with_histogram () =
  let h = Tm.histogram "test.obs.slo_agreement" in
  let slo = Obs_slo.create ~window_s:60.0 () in
  let latencies =
    List.init 200 (fun i -> float_of_int ((i * 37 mod 997) + 1) *. 10.0)
  in
  List.iter (fun l -> Tm.observe h l) latencies;
  observe_each slo ~now:1.0 latencies;
  let s = Obs_slo.summary slo ~now:2.0 in
  List.iter
    (fun (p, got) ->
      let want = Tm.percentile h p in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "p%.0f matches histogram" (p *. 100.0))
        want got)
    [ (0.50, s.Obs_slo.s_p50_us); (0.95, s.Obs_slo.s_p95_us); (0.99, s.Obs_slo.s_p99_us) ]

let test_slo_window_expires () =
  let slo = Obs_slo.create ~window_s:1.0 ~buckets:4 () in
  observe_each slo ~now:0.1 [ 100.0; 200.0; 300.0 ];
  let live = Obs_slo.summary slo ~now:0.5 in
  Alcotest.(check int) "inside the window" 3 live.Obs_slo.s_requests;
  let later = Obs_slo.summary slo ~now:10.0 in
  Alcotest.(check int) "expired" 0 later.Obs_slo.s_requests;
  Alcotest.(check (float 1e-9)) "empty window has no p99" 0.0 later.Obs_slo.s_p99_us

let test_slo_rates () =
  let slo = Obs_slo.create ~window_s:60.0 () in
  for _ = 1 to 8 do
    Obs_slo.observe slo ~now:1.0 ~latency_us:50.0 ~shed:false ~internal:false ()
  done;
  Obs_slo.observe slo ~now:1.0 ~shed:true ~internal:false ();
  Obs_slo.observe slo ~now:1.0 ~latency_us:70.0 ~shed:false ~internal:true ();
  let s = Obs_slo.summary slo ~now:1.5 in
  Alcotest.(check int) "requests" 10 s.Obs_slo.s_requests;
  Alcotest.(check int) "observed latencies" 9 s.Obs_slo.s_observed;
  Alcotest.(check (float 1e-6)) "shed rate" 10.0 s.Obs_slo.s_shed_pct;
  Alcotest.(check (float 1e-6)) "internal rate" 10.0 s.Obs_slo.s_internal_pct

let test_slo_breaches () =
  let slo = Obs_slo.create ~window_s:60.0 () in
  (* quiet window: objectives cannot breach on no traffic *)
  let empty = Obs_slo.summary slo ~now:0.5 in
  let strict = { Obs_slo.o_p99_ms = Some 0.001; o_shed_pct = Some 1.0 } in
  Alcotest.(check int) "empty window breaches nothing" 0
    (List.length (Obs_slo.breaches strict empty));
  (* slow, shedding window: both objectives blow *)
  observe_each slo ~now:1.0 [ 90_000.0; 95_000.0; 99_000.0 ];
  Obs_slo.observe slo ~now:1.0 ~shed:true ~internal:false ();
  let s = Obs_slo.summary slo ~now:1.5 in
  let brs = Obs_slo.breaches strict s in
  let metrics = List.sort compare (List.map (fun b -> b.Obs_slo.br_metric) brs) in
  Alcotest.(check (list string)) "both objectives breached" [ "p99_ms"; "shed_pct" ]
    metrics;
  List.iter
    (fun b ->
      Alcotest.(check bool) "breach value exceeds objective" true
        (b.Obs_slo.br_value > b.Obs_slo.br_objective))
    brs;
  (* generous objectives: the same window is healthy *)
  let lax = { Obs_slo.o_p99_ms = Some 10_000.0; o_shed_pct = Some 90.0 } in
  Alcotest.(check int) "lax objectives hold" 0 (List.length (Obs_slo.breaches lax s))

let suite =
  [
    Alcotest.test_case "event kind names round-trip" `Quick test_kind_names_roundtrip;
    Alcotest.test_case "event line round-trip" `Quick test_event_line_roundtrip;
    Alcotest.test_case "event without a rid" `Quick test_event_line_no_rid;
    Alcotest.test_case "garbage lines rejected" `Quick test_of_line_rejects_garbage;
    Alcotest.test_case "lifecycle grammar: valid log accepted" `Quick
      test_check_log_accepts_valid;
    Alcotest.test_case "lifecycle grammar: violations detected" `Quick
      test_check_log_detects_violations;
    Alcotest.test_case "ring keeps the last N events" `Quick test_ring_keeps_last_n;
    Alcotest.test_case "ring keeps the last M request deltas" `Quick
      test_ring_request_deltas;
    Alcotest.test_case "flight dump document parses" `Quick test_dump_json_parses;
    Alcotest.test_case "JSONL sink round-trips through read_log" `Quick
      test_log_sink_roundtrip;
    Alcotest.test_case "flight dump lands on disk, named for rid+reason" `Quick
      test_flight_dump_writes_file;
    Alcotest.test_case "phase sum vs service_us invariant" `Quick
      test_check_log_phase_sum;
    Alcotest.test_case "with_other accounts the full service time" `Quick
      test_with_other_accounts_service;
    Alcotest.test_case "adaptive exemplar threshold semantics" `Quick
      test_exemplar_threshold_semantics;
    Alcotest.test_case "slo window phase attribution" `Quick
      test_slo_phase_attribution;
    Alcotest.test_case "exemplar dump + rate limiting" `Quick
      test_exemplar_dump_and_rate_limit;
    Alcotest.test_case "dump retention cap deletes oldest" `Quick
      test_dump_retention_cap;
    Alcotest.test_case "slo window agrees with telemetry histogram" `Quick
      test_slo_agrees_with_histogram;
    Alcotest.test_case "slo window expires" `Quick test_slo_window_expires;
    Alcotest.test_case "slo shed/internal rates" `Quick test_slo_rates;
    Alcotest.test_case "slo breach detection" `Quick test_slo_breaches;
  ]
