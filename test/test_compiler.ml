(* End-to-end tests: compile VHDL through the cascaded AGs, elaborate, and
   simulate; check waveforms, variables, and assert/report output. *)

let compile_all sources =
  let c = Vhdl_compiler.create () in
  List.iter (fun src -> ignore (Vhdl_compiler.compile c src)) sources;
  c

let simulate ?arch ?configuration ?(top = "TB") ?(ns = 1000) sources =
  let c = compile_all sources in
  let sim = Vhdl_compiler.elaborate ?arch ?configuration c ~top () in
  let _ = Vhdl_compiler.run c sim ~max_ns:ns in
  (c, sim)

let check_value sim path expected =
  match Name_server.find_signal (Vhdl_compiler.name_server sim) path with
  | Some s ->
    Alcotest.(check string) (path ^ " value") expected
      (Value.image ~ty:s.Rt.sig_ty s.Rt.current)
  | None -> Alcotest.failf "no signal %s" path

let expect_errors sources =
  let c = Vhdl_compiler.create () in
  match List.iter (fun src -> ignore (Vhdl_compiler.compile c src)) sources with
  | () -> Alcotest.fail "expected compile errors"
  | exception Vhdl_compiler.Compile_error _ -> ()

(* ------------------------------------------------------------------ *)

let test_signal_assignment_and_delay () =
  let _, sim =
    simulate ~ns:100
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal a : bit := '0';
  signal b : bit := '0';
begin
  p : process
  begin
    a <= '1' after 10 ns;
    wait for 30 ns;
    a <= '0';
    wait;
  end process;
  b <= a after 2 ns;
end t;
|};
      ]
  in
  let history = Vhdl_compiler.history sim ":tb:A" in
  Alcotest.(check int) "a changes twice (plus initial)" 3 (List.length history);
  (match history with
  | [ (0, _); (t1, v1); (t2, v2) ] ->
    Alcotest.(check int) "rise at 10 ns" (10 * Rt.ns) t1;
    Alcotest.(check string) "to 1" "'1'" (Value.image ~ty:Std.bit v1);
    Alcotest.(check int) "fall at 30 ns" (30 * Rt.ns) t2;
    Alcotest.(check string) "to 0" "'0'" (Value.image ~ty:Std.bit v2)
  | _ -> Alcotest.fail "unexpected history shape");
  let b_history = Vhdl_compiler.history sim ":tb:B" in
  Alcotest.(check int) "b follows with 2 ns delay" 3 (List.length b_history)

let test_variables_and_arithmetic () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal result : integer := 0;
begin
  p : process
    variable x : integer := 7;
    variable y : integer := 3;
  begin
    x := x * y + 2;      -- 23
    y := x mod 5;        -- 3
    x := x ** 2 - y;     -- 526
    result <= x + y;     -- 529
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:RESULT" "529"

let test_if_case_loops () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal fib10 : integer := 0;
  signal classified : integer := 0;
begin
  p : process
    variable a : integer := 0;
    variable b : integer := 1;
    variable t : integer;
  begin
    for i in 1 to 10 loop
      t := a + b;
      a := b;
      b := t;
    end loop;
    fib10 <= a;                 -- fib(10) = 55
    case a is
      when 0 to 10   => classified <= 1;
      when 11 | 12   => classified <= 2;
      when 55        => classified <= 3;
      when others    => classified <= 4;
    end case;
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:FIB10" "55";
  check_value sim ":tb:CLASSIFIED" "3"

let test_while_exit_next () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal odd_sum : integer := 0;
begin
  p : process
    variable i : integer := 0;
    variable acc : integer := 0;
  begin
    while true loop
      i := i + 1;
      exit when i > 10;
      next when i mod 2 = 0;
      acc := acc + i;          -- 1+3+5+7+9 = 25
    end loop;
    odd_sum <= acc;
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:ODD_SUM" "25"

let test_functions_and_procedures () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal fact5 : integer := 0;
  signal swapped : integer := 0;
begin
  p : process
    -- recursive function
    function fact (n : integer) return integer is
    begin
      if n <= 1 then
        return 1;
      else
        return n * fact(n - 1);
      end if;
    end fact;
    -- procedure with out parameters
    procedure swap (a : inout integer; b : inout integer) is
      variable t : integer;
    begin
      t := a;
      a := b;
      b := t;
    end swap;
    variable x : integer := 3;
    variable y : integer := 40;
  begin
    fact5 <= fact(5);
    swap(x, y);
    swapped <= x;              -- 40 after the swap
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:FACT5" "120";
  check_value sim ":tb:SWAPPED" "40"

let test_types_arrays_records () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  type word is array (0 to 7) of bit;
  type pair is record
    x : integer;
    y : integer;
  end record;
  signal w : word := "00000000";
  signal total : integer := 0;
begin
  p : process
    variable v : word := "10110001";
    variable p : pair := (x => 10, y => 32);
    variable n : integer := 0;
  begin
    v(0) := '0';
    v(7) := '1';
    for i in 0 to 7 loop
      if v(i) = '1' then
        n := n + 1;
      end if;
    end loop;
    w <= v;
    total <= n + p.x + p.y;    -- 3 ones + 42
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:TOTAL" "45"

let test_enumeration_and_attributes () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  type color is (red, green, blue, yellow);
  signal n_colors : integer := 0;
  signal succ_of_red : integer := 0;
begin
  p : process
    variable c : color := red;
  begin
    n_colors <= color'pos(color'high) + 1;
    c := color'succ(c);
    succ_of_red <= color'pos(c);
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:N_COLORS" "4";
  check_value sim ":tb:SUCC_OF_RED" "1"

let test_packages_and_use () =
  let _, sim =
    simulate ~ns:10
      [
        {|
package utils is
  constant width : integer := 8;
  function double (x : integer) return integer;
end utils;

package body utils is
  function double (x : integer) return integer is
  begin
    return x * 2;
  end double;
end utils;
|};
        {|
use work.utils.all;
entity tb is end tb;
architecture t of tb is
  signal r : integer := 0;
begin
  p : process
  begin
    r <= double(width) + 1;   -- 17
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:R" "17"

let test_component_hierarchy_and_generics () =
  let _, sim =
    simulate ~ns:100
      [
        {|
entity delay_inv is
  generic (d : integer := 1);
  port (a : in bit; y : out bit);
end delay_inv;

architecture rtl of delay_inv is
begin
  y <= not a after d * 1 ns;
end rtl;

entity tb is end tb;

architecture t of tb is
  component delay_inv
    generic (d : integer := 1);
    port (a : in bit; y : out bit);
  end component;
  signal src : bit := '0';
  signal fast : bit;
  signal slow : bit;
begin
  u_fast : delay_inv generic map (d => 1) port map (a => src, y => fast);
  u_slow : delay_inv generic map (d => 7) port map (a => src, y => slow);
  src <= '1' after 10 ns;
end t;
|};
      ]
  in
  let fast = Vhdl_compiler.history sim ":tb:FAST" in
  let slow = Vhdl_compiler.history sim ":tb:SLOW" in
  (* both invert '0'->'1' at t=0 (delta+delay), then '1'->'0' after src rises *)
  let final lst = List.nth lst (List.length lst - 1) in
  let tf, _ = final fast and ts, _ = final slow in
  Alcotest.(check int) "fast final edge at 11 ns" (11 * Rt.ns) tf;
  Alcotest.(check int) "slow final edge at 17 ns" (17 * Rt.ns) ts

let test_conditional_and_selected_assignment () =
  let _, sim =
    simulate ~ns:50
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal sel : integer := 0;
  signal cond_out : integer := 0;
  signal sel_out : integer := 0;
begin
  sel <= 2 after 10 ns;
  cond_out <= 100 when sel = 0 else
              200 when sel = 1 else
              300;
  with sel select
    sel_out <= 11 when 0,
               22 when 1,
               33 when 2,
               44 when others;
end t;
|};
      ]
  in
  check_value sim ":tb:COND_OUT" "300";
  check_value sim ":tb:SEL_OUT" "33"

let test_wait_until_and_event () =
  let _, sim =
    simulate ~ns:100
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal clk : bit := '0';
  signal edges : integer := 0;
  signal done_at : integer := 0;
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait for 5 ns;
  end process;
  counter : process (clk)
    variable n : integer := 0;
  begin
    if clk'event and clk = '1' then
      n := n + 1;
      edges <= n;
    end if;
  end process;
  watcher : process
  begin
    wait until edges = 5;
    done_at <= 1;
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:DONE_AT" "1";
  (* rising edges at 5,15,25,...: edge 5 at 45 ns *)
  match
    List.find_opt (fun (_, v) -> Value.equal v (Value.Vint 5)) (Vhdl_compiler.history sim ":tb:EDGES")
  with
  | Some (t, _) -> Alcotest.(check int) "5th edge at 45 ns" (45 * Rt.ns) t
  | None -> Alcotest.fail "edges never reached 5"

let test_assert_report () =
  let c, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
begin
  p : process
  begin
    assert 1 + 1 = 2 report "math is broken" severity failure;
    assert false report "expected note" severity note;
    assert false report "expected warning" severity warning;
    wait;
  end process;
end t;
|};
      ]
  in
  ignore c;
  let msgs = Vhdl_compiler.messages sim in
  Alcotest.(check int) "two messages" 2 (List.length msgs);
  (match msgs with
  | [ (_, sev1, m1); (_, sev2, m2) ] ->
    Alcotest.(check int) "note severity" 0 sev1;
    Alcotest.(check string) "note text" "expected note" m1;
    Alcotest.(check int) "warning severity" 1 sev2;
    Alcotest.(check string) "warning text" "expected warning" m2
  | _ -> Alcotest.fail "unexpected messages")

let test_severity_failure_stops () =
  let _, sim =
    simulate ~ns:100
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal after_stop : integer := 0;
begin
  p : process
  begin
    wait for 5 ns;
    assert false report "fatal" severity failure;
    wait for 5 ns;
    after_stop <= 1;
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:AFTER_STOP" "0";
  let failures = (Kernel.stats (Vhdl_compiler.kernel sim)).Kernel.severities.Kernel.failures in
  Alcotest.(check int) "one failure" 1 failures

let test_transport_vs_inertial () =
  let _, sim =
    simulate ~ns:100
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal pulse : bit := '0';
  signal inert : bit := '0';
  signal trans : bit := '0';
begin
  stimulus : process
  begin
    pulse <= '1' after 10 ns;   -- schedule rise
    pulse <= '0' after 5 ns;    -- inertial overwrite cancels the rise
    wait for 20 ns;
    inert <= '1' after 4 ns;
    inert <= '0' after 2 ns;    -- cancels the 4 ns one (inertial)
    trans <= transport '1' after 4 ns;
    trans <= transport '0' after 2 ns;  -- transport keeps... both? earlier only
    wait;
  end process;
end t;
|};
      ]
  in
  (* inertial: the second assignment cancels the first; pulse never rises *)
  let pulse = Vhdl_compiler.history sim ":tb:PULSE" in
  Alcotest.(check int) "pulse stays 0" 1 (List.length pulse)

let test_latest_architecture_default () =
  (* the paper's §3.3 default rule: the LATEST compiled architecture wins *)
  let c = compile_all [ Workload.multi_arch_library ~archs:3 ] in
  ignore
    (Vhdl_compiler.compile c
       {|
entity tb is end tb;
architecture t of tb is
  component CELL
    port (a : in bit; y : out bit);
  end component;
  signal s : bit := '0';
  signal q : bit;
begin
  u : CELL port map (a => s, y => q);
end t;
|});
  let sim = Vhdl_compiler.elaborate c ~top:"TB" () in
  let _ = Vhdl_compiler.run c sim ~max_ns:50 in
  (* A2 (delay 3 ns) was compiled last: q = not '0' = '1' at 3 ns *)
  match Vhdl_compiler.history sim ":tb:Q" with
  | _ :: (t, v) :: _ ->
    Alcotest.(check int) "latest arch (A2, 3 ns) bound" (3 * Rt.ns) t;
    Alcotest.(check bool) "q is 1" true (Value.equal v (Value.Venum 1))
  | _ -> Alcotest.fail "no q event"

let test_configuration_unit_binding () =
  let netlist, config = Workload.config_workload ~instances:3 () in
  let c = compile_all [ Workload.multi_arch_library ~archs:3; netlist; config ] in
  let sim = Vhdl_compiler.elaborate c ~top:"BOARD" ~configuration:"CFG" () in
  let _ = Vhdl_compiler.run c sim ~max_ns:50 in
  (* instance c1 is bound to A1 (delay 2 ns) by the configuration, not A2 *)
  match Vhdl_compiler.history sim ":board:N1" with
  | _ :: (t, _) :: _ -> Alcotest.(check int) "c1 bound to A1 (2 ns)" (2 * Rt.ns) t
  | _ -> Alcotest.fail "no event on n1"

let test_guarded_block () =
  let _, sim =
    simulate ~ns:100
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal enable : bit := '0';
  signal d : integer := 1;
  signal q : integer := 0;
begin
  b : block (enable = '1')
  begin
    q <= guarded d;
  end block;
  stim : process
  begin
    wait for 10 ns;
    d <= 42;
    wait for 10 ns;
    enable <= '1';      -- now the guarded assignment drives q
    wait for 10 ns;
    d <= 7;
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:Q" "7";
  (* q must not have changed before enable *)
  match Vhdl_compiler.history sim ":tb:Q" with
  | (0, _) :: (t, _) :: _ ->
    Alcotest.(check bool) "first q change after enable (>= 20 ns)" true (t >= 20 * Rt.ns)
  | _ -> Alcotest.fail "expected q changes"

let test_resolution_function () =
  let _, sim =
    simulate ~ns:50
      [
        {|
package rlib is
  function wired_or (v : bit_vector) return bit;
end rlib;

package body rlib is
  function wired_or (v : bit_vector) return bit is
  begin
    for i in 0 to v'length - 1 loop
      if v(i) = '1' then
        return '1';
      end if;
    end loop;
    return '0';
  end wired_or;
end rlib;
|};
        {|
use work.rlib.all;
entity tb is end tb;
architecture t of tb is
  signal bus_line : wired_or bit := '0';
begin
  d1 : process
  begin
    bus_line <= '0';
    wait for 10 ns;
    bus_line <= '1';
    wait;
  end process;
  d2 : process
  begin
    bus_line <= '0';
    wait;
  end process;
end t;
|};
      ]
  in
  (* two drivers; wired-or resolves to '1' once d1 drives '1' *)
  check_value sim ":tb:BUS_LINE" "'1'"

let test_vif_roundtrip_separate_compilation () =
  let dir = Filename.temp_file "vhdlvif" "" in
  Sys.remove dir;
  (* first compiler instance writes the library *)
  let c1 = Vhdl_compiler.create ~work_dir:dir () in
  ignore
    (Vhdl_compiler.compile c1
       {|
package p is
  constant k : integer := 21;
  function twice (x : integer) return integer;
end p;
package body p is
  function twice (x : integer) return integer is
  begin
    return 2 * x;
  end twice;
end p;
|});
  ignore (Vhdl_compiler.compile c1 (Workload.gate_entity ~name:"G1"));
  (* a second compiler instance reads the VIF back (foreign references) *)
  let c2 = Vhdl_compiler.create ~work_dir:dir () in
  ignore
    (Vhdl_compiler.compile c2
       {|
use work.p.all;
entity tb is end tb;
architecture t of tb is
  signal r : integer := 0;
begin
  pr : process
  begin
    r <= twice(k);
    wait;
  end process;
end t;
|});
  let sim = Vhdl_compiler.elaborate c2 ~top:"TB" () in
  let _ = Vhdl_compiler.run c2 sim ~max_ns:10 in
  check_value sim ":tb:R" "42";
  (* the human-readable dump exists and mentions the function *)
  (match Library.dump (Vhdl_compiler.work_library c2) ~library:"WORK" ~key:"body:P" with
  | Some text ->
    Alcotest.(check bool) "dump mentions TWICE" true
      (Astring_contains.contains text "TWICE")
  | None -> Alcotest.fail "no VIF dump for package body P");
  ()

let test_diagnostics () =
  expect_errors [ "entity tb is end tb;\narchitecture t of tb is\nbegin\n  p : process begin\n    undeclared_sig <= 1;\n    wait;\n  end process;\nend t;" ];
  expect_errors [ "entity tb is end tb;\narchitecture t of tb is\n  signal s : bit;\nbegin\n  s <= 42;\nend t;" ];
  expect_errors
    [ "entity tb is end tb;\narchitecture t of tb is\n  signal s : nosuchtype;\nbegin\nend t;" ]

let test_physical_time_arithmetic () =
  let _, sim =
    simulate ~ns:100
      [
        {|
entity tb is end tb;
architecture t of tb is
  constant half_period : time := 5 ns;
  signal s : bit := '0';
begin
  p : process
  begin
    s <= '1' after 2 * half_period + 500 ps;
    wait;
  end process;
end t;
|};
      ]
  in
  match Vhdl_compiler.history sim ":tb:S" with
  | [ _; (t, _) ] -> Alcotest.(check int) "10.5 ns" (10 * Rt.ns + 500_000) t
  | _ -> Alcotest.fail "expected one event on s"

let test_downto_and_slices () =
  let _, sim =
    simulate ~ns:50
      [
        {|
entity tb is end tb;
architecture t of tb is
  type word is array (7 downto 0) of bit;
  signal w : word := "00000000";
  signal ones : integer := 0;
begin
  p : process
    variable v : word := "11000011";
    variable n : integer := 0;
  begin
    -- slice assignment on a downto array
    v(5 downto 2) := "1111";
    w <= v;
    for i in 0 to 7 loop
      if v(i) = '1' then
        n := n + 1;
      end if;
    end loop;
    ones <= n;
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:ONES" "8"

let test_signal_slice_assignment () =
  let _, sim =
    simulate ~ns:50
      [
        {|
entity tb is end tb;
architecture t of tb is
  type nib is array (0 to 3) of bit;
  signal w : nib := "0000";
begin
  p : process
  begin
    w(1 to 2) <= "11" after 5 ns;
    w(0) <= '1' after 10 ns;
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:W" "\"1110\""

let test_multi_element_waveform () =
  let _, sim =
    simulate ~ns:100
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal s : integer := 0;
begin
  p : process
  begin
    s <= 1 after 10 ns, 2 after 20 ns, 3 after 30 ns;
    wait;
  end process;
end t;
|};
      ]
  in
  let h = Vhdl_compiler.history sim ":tb:S" in
  Alcotest.(check int) "three scheduled changes (plus initial)" 4 (List.length h);
  (match List.rev h with
  | (t3, v3) :: (t2, _) :: _ ->
    Alcotest.(check int) "last at 30 ns" (30 * Rt.ns) t3;
    Alcotest.(check bool) "value 3" true (Value.equal v3 (Value.Vint 3));
    Alcotest.(check int) "second at 20 ns" (20 * Rt.ns) t2
  | _ -> Alcotest.fail "bad history")

let test_wait_on_multiple_signals () =
  let _, sim =
    simulate ~ns:100
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal a : bit := '0';
  signal b : bit := '0';
  signal wakeups : integer := 0;
begin
  a <= '1' after 10 ns;
  b <= '1' after 20 ns;
  watcher : process
    variable n : integer := 0;
  begin
    wait on a, b;
    n := n + 1;
    wakeups <= n;
    wait on a, b;
    n := n + 1;
    wakeups <= n;
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:WAKEUPS" "2"

let test_function_default_parameters () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal r1 : integer := 0;
  signal r2 : integer := 0;
begin
  p : process
    function scaled (x : integer; factor : integer := 10) return integer is
    begin
      return x * factor;
    end scaled;
  begin
    r1 <= scaled(5);
    r2 <= scaled(5, 3);
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:R1" "50";
  check_value sim ":tb:R2" "15"

let test_record_signals () =
  let _, sim =
    simulate ~ns:50
      [
        {|
entity tb is end tb;
architecture t of tb is
  type point is record
    x : integer;
    y : integer;
  end record;
  signal p : point := (x => 1, y => 2);
  signal sum : integer := 0;
begin
  driver : process
  begin
    wait for 10 ns;
    p <= (x => 10, y => 20);
    wait;
  end process;
  reader : process (p)
  begin
    sum <= p.x + p.y;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:SUM" "30"

let test_selected_with_range_choices () =
  let _, sim =
    simulate ~ns:50
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal grade : integer := 0;
  signal band : integer := 0;
begin
  grade <= 85 after 10 ns;
  with grade select
    band <= 1 when 0 to 49,
            2 when 50 to 79,
            3 when 80 to 100,
            0 when others;
end t;
|};
      ]
  in
  check_value sim ":tb:BAND" "3"

(* the paper singles this out: "references to up-level variables from
   within nested subprograms is supported in VHDL but not in C, and so the
   code generated by the VHDL compiler must implement this construct" *)
let test_uplevel_references () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal r : integer := 0;
begin
  p : process
    variable counter : integer := 0;
    -- nested subprogram reading AND writing the enclosing frame
    procedure bump (amount : in integer) is
      -- doubly nested: reads bump's parameter and p's variable
      function preview return integer is
      begin
        return counter + amount;
      end preview;
    begin
      counter := preview;
    end bump;
  begin
    bump(5);
    bump(7);
    bump(30);
    r <= counter;
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:R" "42"

let test_fully_selected_names () =
  let _, sim =
    simulate ~ns:10
      [
        {|
package maths is
  constant base : integer := 20;
  function plus2 (x : integer) return integer;
end maths;
package body maths is
  function plus2 (x : integer) return integer is
  begin
    return x + 2;
  end plus2;
end maths;
|};
        {|
entity tb is end tb;
architecture t of tb is
  signal r : integer := 0;
begin
  p : process
  begin
    -- no use clause: fully selected through library and package
    r <= work.maths.plus2(work.maths.base);
    wait;
  end process;
end t;
|};
      ]
  in
  check_value sim ":tb:R" "22"

let test_labeled_loops () =
  let _, sim =
    simulate ~ns:10
      [
        {|
entity tb is end tb;
architecture t of tb is
  signal found_i : integer := 0;
  signal found_j : integer := 0;
begin
  p : process
    variable fi : integer := 0;
    variable fj : integer := 0;
  begin
    -- search a "matrix" for the first pair with i*j = 12, leaving BOTH
    -- loops via a labeled exit
    outer : for i in 1 to 6 loop
      for j in 1 to 6 loop
        next outer when i = 2;       -- skip row 2 entirely
        if i * j = 12 then
          fi := i;
          fj := j;
          exit outer;
        end if;
      end loop;
    end loop outer;
    found_i <= fi;
    found_j <= fj;
    wait;
  end process;
end t;
|};
      ]
  in
  (* row 2 is skipped, so the first hit is i=3, j=4 *)
  check_value sim ":tb:FOUND_I" "3";
  check_value sim ":tb:FOUND_J" "4"

let suite =
  [
    Alcotest.test_case "signal assignment with delay" `Quick test_signal_assignment_and_delay;
    Alcotest.test_case "variables and arithmetic" `Quick test_variables_and_arithmetic;
    Alcotest.test_case "if / case / for" `Quick test_if_case_loops;
    Alcotest.test_case "while / exit / next" `Quick test_while_exit_next;
    Alcotest.test_case "functions and procedures" `Quick test_functions_and_procedures;
    Alcotest.test_case "array and record types" `Quick test_types_arrays_records;
    Alcotest.test_case "enumerations and attributes" `Quick test_enumeration_and_attributes;
    Alcotest.test_case "packages and use clauses" `Quick test_packages_and_use;
    Alcotest.test_case "component hierarchy and generics" `Quick
      test_component_hierarchy_and_generics;
    Alcotest.test_case "conditional and selected assignment" `Quick
      test_conditional_and_selected_assignment;
    Alcotest.test_case "wait until and 'event" `Quick test_wait_until_and_event;
    Alcotest.test_case "assert and report" `Quick test_assert_report;
    Alcotest.test_case "severity failure stops simulation" `Quick test_severity_failure_stops;
    Alcotest.test_case "inertial pulse rejection" `Quick test_transport_vs_inertial;
    Alcotest.test_case "latest-architecture default binding (§3.3)" `Quick
      test_latest_architecture_default;
    Alcotest.test_case "configuration unit binding" `Quick test_configuration_unit_binding;
    Alcotest.test_case "guarded block and disconnect" `Quick test_guarded_block;
    Alcotest.test_case "bus resolution function" `Quick test_resolution_function;
    Alcotest.test_case "VIF round-trip separate compilation" `Quick
      test_vif_roundtrip_separate_compilation;
    Alcotest.test_case "diagnostics on bad programs" `Quick test_diagnostics;
    Alcotest.test_case "physical (time) arithmetic" `Quick test_physical_time_arithmetic;
    Alcotest.test_case "downto arrays and slice assignment" `Quick test_downto_and_slices;
    Alcotest.test_case "signal slice assignment" `Quick test_signal_slice_assignment;
    Alcotest.test_case "multi-element waveforms" `Quick test_multi_element_waveform;
    Alcotest.test_case "wait on multiple signals" `Quick test_wait_on_multiple_signals;
    Alcotest.test_case "default parameters" `Quick test_function_default_parameters;
    Alcotest.test_case "record signals" `Quick test_record_signals;
    Alcotest.test_case "selected assignment with range choices" `Quick
      test_selected_with_range_choices;
    Alcotest.test_case "up-level references in nested subprograms" `Quick
      test_uplevel_references;
    Alcotest.test_case "fully selected names (work.pkg.item)" `Quick
      test_fully_selected_names;
    Alcotest.test_case "labeled loops with exit/next" `Quick test_labeled_loops;
  ]
