(* LALR(1) generator: automaton construction, lookaheads, conflicts,
   and end-to-end parsing through the driver. *)

module Cfg = Vhdl_lalr.Cfg
module Table = Vhdl_lalr.Table
module Driver = Vhdl_lalr.Driver
module First = Vhdl_lalr.First

(* A tiny grammar-building kit for the tests. *)
type spec = {
  terminals : string list;
  nonterminals : string list;
  prods : (string * string list) list;
  start : string;
}

let build_cfg spec =
  let names = Array.of_list (spec.terminals @ [ "$" ] @ spec.nonterminals) in
  let id_of name =
    let rec find i = if names.(i) = name then i else find (i + 1) in
    find 0
  in
  let n = Array.length names in
  let is_terminal = Array.make n false in
  List.iteri (fun i _ -> is_terminal.(i) <- true) spec.terminals;
  is_terminal.(List.length spec.terminals) <- true (* $ *);
  let productions =
    Array.of_list
      (List.mapi
         (fun id (lhs, rhs) ->
           { Cfg.id; lhs = id_of lhs; rhs = Array.of_list (List.map id_of rhs) })
         spec.prods)
  in
  ( Cfg.create ~n_symbols:n ~is_terminal ~productions ~start:(id_of spec.start)
      ~eof:(id_of "$") ~symbol_name:(fun i -> names.(i)),
    id_of )

(* The classic LALR-but-not-SLR expression grammar. *)
let expr_spec =
  {
    terminals = [ "id"; "+"; "*"; "("; ")" ];
    nonterminals = [ "E"; "T"; "F" ];
    prods =
      [
        ("E", [ "E"; "+"; "T" ]);
        ("E", [ "T" ]);
        ("T", [ "T"; "*"; "F" ]);
        ("T", [ "F" ]);
        ("F", [ "("; "E"; ")" ]);
        ("F", [ "id" ]);
      ];
    start = "E";
  }

(* Parse tokens into an arithmetic value: id carries an int. *)
let eval_arith table id_of input =
  let tokens =
    List.map
      (fun (name, v) -> { Driver.t_sym = id_of name; t_value = v; t_line = 1 })
      input
    @ [ { Driver.t_sym = id_of "$"; t_value = 0; t_line = 99 } ]
  in
  let remaining = ref tokens in
  let lexer () =
    match !remaining with
    | t :: rest ->
      remaining := rest;
      t
    | [] -> assert false
  in
  Driver.parse table ~lexer
    ~shift:(fun _ v _ -> v)
    ~reduce:(fun prod children ->
      match (prod, children) with
      | 0, [ a; _; b ] -> a + b
      | 1, [ a ] -> a
      | 2, [ a; _; b ] -> a * b
      | 3, [ a ] -> a
      | 4, [ _; a; _ ] -> a
      | 5, [ a ] -> a
      | _ -> assert false)

let test_expr_parse () =
  let cfg, id_of = build_cfg expr_spec in
  let table = Table.build cfg in
  Alcotest.(check int) "no conflicts" 0 (List.length table.Table.conflicts);
  let v =
    eval_arith table id_of
      [ ("id", 2); ("+", 0); ("id", 3); ("*", 0); ("id", 4) ]
  in
  Alcotest.(check int) "2+3*4" 14 v;
  let v =
    eval_arith table id_of
      [ ("(", 0); ("id", 2); ("+", 0); ("id", 3); (")", 0); ("*", 0); ("id", 4) ]
  in
  Alcotest.(check int) "(2+3)*4" 20 v

let test_syntax_error () =
  let cfg, id_of = build_cfg expr_spec in
  let table = Table.build cfg in
  match eval_arith table id_of [ ("id", 1); ("+", 0); ("+", 0); ("id", 2) ] with
  | _ -> Alcotest.fail "expected syntax error"
  | exception Driver.Syntax_error { found; expected; _ } ->
    Alcotest.(check string) "found" "+" found;
    Alcotest.(check bool) "id expected" true (List.mem "id" expected)

(* Nullable productions: S ::= A a ; A ::= B C ; B ::= b | ε ; C ::= c | ε.
   Exercises the reads relation (nullable nonterminal transitions after a
   goto) while staying LALR(1). *)
let nullable_spec =
  {
    terminals = [ "a"; "b"; "c" ];
    nonterminals = [ "S"; "A"; "B"; "C" ];
    prods =
      [
        ("S", [ "A"; "a" ]);
        ("A", [ "B"; "C" ]);
        ("B", [ "b" ]);
        ("B", []);
        ("C", [ "c" ]);
        ("C", []);
      ];
    start = "S";
  }

let parse_words cfg id_of table words =
  let tokens =
    List.map (fun w -> { Driver.t_sym = id_of w; t_value = (); t_line = 1 }) words
    @ [ { Driver.t_sym = cfg.Cfg.eof; t_value = (); t_line = 1 } ]
  in
  let remaining = ref tokens in
  let lexer () =
    match !remaining with
    | t :: rest ->
      remaining := rest;
      t
    | [] -> assert false
  in
  Driver.parse table ~lexer ~shift:(fun _ _ _ -> ()) ~reduce:(fun _ _ -> ())

let test_nullable () =
  let cfg, id_of = build_cfg nullable_spec in
  let table = Table.build cfg in
  Alcotest.(check int) "no conflicts" 0 (List.length table.Table.conflicts);
  parse_words cfg id_of table [ "a" ];
  parse_words cfg id_of table [ "b"; "a" ];
  parse_words cfg id_of table [ "c"; "a" ];
  parse_words cfg id_of table [ "b"; "c"; "a" ];
  (match parse_words cfg id_of table [ "c"; "b" ] with
  | () -> Alcotest.fail "expected error"
  | exception Driver.Syntax_error _ -> ())

let test_first_sets () =
  let cfg, id_of = build_cfg nullable_spec in
  let fi = First.compute cfg in
  Alcotest.(check bool) "A nullable" true (First.nullable fi (id_of "A"));
  Alcotest.(check bool) "S not nullable" false (First.nullable fi (id_of "S"))

(* The dangling-else shape produces a shift/reduce conflict resolved in
   favor of shift. *)
let dangling_spec =
  {
    terminals = [ "if"; "then"; "else"; "x" ];
    nonterminals = [ "S" ];
    prods =
      [
        ("S", [ "if"; "S"; "then"; "S" ]);
        ("S", [ "if"; "S"; "then"; "S"; "else"; "S" ]);
        ("S", [ "x" ]);
      ];
    start = "S";
  }

let test_conflict_reported () =
  let cfg, id_of = build_cfg dangling_spec in
  let table = Table.build cfg in
  Alcotest.(check bool) "has conflicts" true (table.Table.conflicts <> []);
  List.iter
    (fun c ->
      match c.Table.c_kind with
      | `Shift_reduce _ -> ()
      | `Reduce_reduce _ -> Alcotest.fail "unexpected reduce/reduce")
    table.Table.conflicts;
  (* shift preference associates the else with the inner if *)
  parse_words cfg id_of table
    [ "if"; "x"; "then"; "if"; "x"; "then"; "x"; "else"; "x" ]

(* The canonical LALR-but-not-SLR grammar (assignments with dereference):
   S ::= L = R | R ; L ::= * R | id ; R ::= L.  SLR conflicts on '=' because
   '=' is in FOLLOW(R); the contextual LALR lookaheads stay deterministic. *)
let lalr_not_slr_spec =
  {
    terminals = [ "id"; "="; "*" ];
    nonterminals = [ "S"; "L"; "R" ];
    prods =
      [
        ("S", [ "L"; "="; "R" ]);
        ("S", [ "R" ]);
        ("L", [ "*"; "R" ]);
        ("L", [ "id" ]);
        ("R", [ "L" ]);
      ];
    start = "S";
  }

let test_lalr_power () =
  let cfg, id_of = build_cfg lalr_not_slr_spec in
  let table = Table.build cfg in
  Alcotest.(check int) "no conflicts" 0 (List.length table.Table.conflicts);
  parse_words cfg id_of table [ "id" ];
  parse_words cfg id_of table [ "id"; "="; "id" ];
  parse_words cfg id_of table [ "*"; "id"; "="; "*"; "*"; "id" ]

(* The canonical LR(1)-but-not-LALR grammar: merging the LR(0) states after
   "a c" and "b c" unions the lookaheads of [A ::= c .] and [B ::= c .],
   producing reduce/reduce conflicts the generator must report. *)
let lr1_not_lalr_spec =
  {
    terminals = [ "a"; "b"; "c"; "d"; "e" ];
    nonterminals = [ "S"; "A"; "B" ];
    prods =
      [
        ("S", [ "a"; "A"; "d" ]);
        ("S", [ "b"; "B"; "d" ]);
        ("S", [ "a"; "B"; "e" ]);
        ("S", [ "b"; "A"; "e" ]);
        ("A", [ "c" ]);
        ("B", [ "c" ]);
      ];
    start = "S";
  }

let test_lr1_not_lalr_detected () =
  let cfg, _ = build_cfg lr1_not_lalr_spec in
  let table = Table.build cfg in
  let rr =
    List.filter
      (fun c ->
        match c.Table.c_kind with
        | `Reduce_reduce _ -> true
        | `Shift_reduce _ -> false)
      table.Table.conflicts
  in
  Alcotest.(check int) "two reduce/reduce conflicts" 2 (List.length rr)

(* Property: random arithmetic expressions evaluate identically through the
   parser and through a reference recursive evaluator. *)
let arith_roundtrip =
  let open QCheck in
  (* generate a random expression as (tokens, value) *)
  let rec gen_expr depth st =
    if depth = 0 then
      let n = Gen.int_range 0 9 st in
      ([ ("id", n) ], n)
    else
      match Gen.int_range 0 3 st with
      | 0 ->
        let t1, v1 = gen_expr (depth - 1) st in
        let t2, v2 = gen_expr (depth - 1) st in
        (t1 @ [ ("+", 0) ] @ t2, v1 + v2)
      | 1 ->
        let t1, v1 = gen_expr (depth - 1) st in
        let t2, v2 = gen_expr (depth - 1) st in
        (t1 @ [ ("*", 0) ] @ t2, v1 * v2)
      | 2 ->
        let t, v = gen_expr (depth - 1) st in
        (([ ("(", 0) ] @ t @ [ (")", 0) ]), v)
      | _ ->
        let n = Gen.int_range 0 9 st in
        ([ ("id", n) ], n)
  in
  (* note: generation builds values with standard precedence because we
     produce fully parenthesized-equivalent structure positions; + and * at
     the same depth compose left-to-right in token order, so the reference
     value must come from the parser-independent grammar precedence.  To
     keep the oracle exact we only generate either parenthesized or
     single-operator forms. *)
  let gen = Gen.sized_size (Gen.int_range 0 4) (fun d st -> gen_expr d st) in
  Test.make ~name:"arithmetic parse respects precedence oracle" ~count:200 (make gen)
    (fun (tokens, _) ->
      let cfg, id_of = build_cfg expr_spec in
      let table = Table.build cfg in
      (* oracle: shunting-yard evaluation with * over + *)
      let oracle tokens =
        let out = ref [] and ops = ref [] in
        let prec = function
          | "+" -> 1
          | "*" -> 2
          | _ -> 0
        in
        let apply op =
          match !out with
          | b :: a :: rest ->
            out := (if op = "+" then a + b else a * b) :: rest
          | _ -> assert false
        in
        List.iter
          (fun (name, v) ->
            match name with
            | "id" -> out := v :: !out
            | "(" -> ops := "(" :: !ops
            | ")" ->
              let rec pop () =
                match !ops with
                | "(" :: rest -> ops := rest
                | op :: rest ->
                  ops := rest;
                  apply op;
                  pop ()
                | [] -> assert false
              in
              pop ()
            | op ->
              let rec pop () =
                match !ops with
                | top :: rest when top <> "(" && prec top >= prec op ->
                  ops := rest;
                  apply top;
                  pop ()
                | _ -> ()
              in
              pop ();
              ops := op :: !ops)
          tokens;
        List.iter (fun op -> apply op) !ops;
        match !out with
        | [ v ] -> v
        | _ -> assert false
      in
      eval_arith table id_of tokens = oracle tokens)

let suite =
  [
    Alcotest.test_case "expression grammar parses and evaluates" `Quick test_expr_parse;
    Alcotest.test_case "syntax errors carry expected sets" `Quick test_syntax_error;
    Alcotest.test_case "nullable productions (reads relation)" `Quick test_nullable;
    Alcotest.test_case "first/nullable computation" `Quick test_first_sets;
    Alcotest.test_case "dangling else: shift wins, conflict recorded" `Quick
      test_conflict_reported;
    Alcotest.test_case "LALR-not-SLR grammar is conflict free" `Quick test_lalr_power;
    Alcotest.test_case "LR(1)-not-LALR conflicts are reported" `Quick test_lr1_not_lalr_detected;
    QCheck_alcotest.to_alcotest arith_roundtrip;
  ]
