(* The predefined STANDARD package, value images, type helpers, and the
   small utility modules. *)

let test_standard_types () =
  let env = Std.env () in
  let is_type name =
    match Env.lookup env name with
    | (Denot.Dtype _ | Denot.Dsubtype _) :: _ -> true
    | _ -> false
  in
  List.iter
    (fun n -> Alcotest.(check bool) n true (is_type n))
    [
      "BOOLEAN"; "BIT"; "CHARACTER"; "INTEGER"; "REAL"; "TIME"; "STRING"; "BIT_VECTOR";
      "NATURAL"; "POSITIVE"; "SEVERITY_LEVEL";
    ];
  (* enumeration literals are visible *)
  (match Env.lookup env "TRUE" with
  | [ Denot.Denum_lit { pos = 1; _ } ] -> ()
  | _ -> Alcotest.fail "TRUE should be position 1 of BOOLEAN");
  (match Env.lookup env "'0'" with
  | Denot.Denum_lit _ :: _ -> ()
  | _ -> Alcotest.fail "'0' should be visible");
  (* CHARACTER has the full 128-literal set *)
  match Types.enum_literals Std.character with
  | Some lits -> Alcotest.(check int) "128 characters" 128 (Array.length lits)
  | None -> Alcotest.fail "CHARACTER not an enumeration"

let test_time_units () =
  let env = Std.env () in
  let scale name =
    match Env.lookup env name with
    | Denot.Dphys_unit { scale; _ } :: _ -> scale
    | _ -> Alcotest.failf "no unit %s" name
  in
  Alcotest.(check int) "fs" 1 (scale "FS");
  Alcotest.(check int) "ns" 1_000_000 (scale "NS");
  Alcotest.(check int) "us = 1000 ns" (1000 * scale "NS") (scale "US");
  Alcotest.(check int) "min = 60 sec" (60 * scale "SEC") (scale "MIN")

let test_value_images () =
  Alcotest.(check string) "int" "42" (Value.image (Value.Vint 42));
  Alcotest.(check string) "bit" "'1'" (Value.image ~ty:Std.bit (Value.Venum 1));
  Alcotest.(check string) "boolean" "TRUE" (Value.image ~ty:Std.boolean (Value.Venum 1));
  Alcotest.(check string) "string value" "\"hi\""
    (Value.image ~ty:Std.string_ty (Std.string_value "hi"));
  let bv = Std.bit_vector_value "1010" in
  Alcotest.(check string) "bit_vector" "\"1010\"" (Value.image ~ty:Std.bit_vector bv);
  Alcotest.(check string) "record"
    "(X => 1, Y => 2)"
    (Value.image (Value.Vrecord [ ("X", Value.Vint 1); ("Y", Value.Vint 2) ]))

let test_string_round_trips () =
  Alcotest.(check string) "string_value/value_string" "hello"
    (Std.value_string (Std.string_value "hello"))

let test_type_helpers () =
  Alcotest.(check bool) "INTEGER discrete" true (Types.is_discrete Std.integer);
  Alcotest.(check bool) "REAL not discrete" false (Types.is_discrete Std.real);
  Alcotest.(check bool) "BIT_VECTOR array" true (Types.is_array Std.bit_vector);
  Alcotest.(check bool) "unconstrained" false (Types.is_constrained_array Std.bit_vector);
  let bv4 = Types.subtype Std.bit_vector ~constr:(Types.Crange (0, Types.To, 3)) in
  Alcotest.(check bool) "constrained subtype" true (Types.is_constrained_array bv4);
  Alcotest.(check bool) "subtype compatible with base" true (Types.compatible bv4 Std.bit_vector);
  Alcotest.(check (option (pair int int))) "bounds" (Some (0, 3)) (Types.bounds bv4);
  Alcotest.(check (option int)) "enum pos" (Some 1) (Types.enum_pos Std.boolean "TRUE");
  Alcotest.(check string) "short name" "BIT_VECTOR" (Types.short_name Std.bit_vector)

let test_default_values () =
  (* scalars default to the leftmost value of their subtype *)
  (match Value.default_of Std.positive with
  | Value.Vint 1 -> ()
  | v -> Alcotest.failf "POSITIVE default should be 1, got %s" (Value.image v));
  (match Value.default_of Std.boolean with
  | Value.Venum 0 -> ()
  | _ -> Alcotest.fail "BOOLEAN default should be FALSE");
  let bv4 = Types.subtype Std.bit_vector ~constr:(Types.Crange (3, Types.Downto, 0)) in
  match Value.default_of bv4 with
  | Value.Varray { bounds = (3, Types.Downto, 0); elems } ->
    Alcotest.(check int) "4 elements" 4 (Array.length elems)
  | _ -> Alcotest.fail "bad array default"

let test_range_helpers () =
  Alcotest.(check int) "to length" 4 (Value.range_length (1, Types.To, 4));
  Alcotest.(check int) "downto length" 4 (Value.range_length (4, Types.Downto, 1));
  Alcotest.(check int) "null range" 0 (Value.range_length (4, Types.To, 1));
  Alcotest.(check (list int)) "downto indices" [ 3; 2; 1 ]
    (Value.range_indices (3, Types.Downto, 1));
  Alcotest.(check (option int)) "offset in downto" (Some 0) (Value.array_offset (3, Types.Downto, 1) 3);
  Alcotest.(check (option int)) "out of range" None (Value.array_offset (3, Types.Downto, 1) 4)

let test_stripped_line_count () =
  let module U = Vhdl_util.Unix_compat in
  Alcotest.(check int) "plain" 3 (U.stripped_line_count "a\nb\nc");
  Alcotest.(check int) "blanks and comments" 2
    (U.stripped_line_count ~comment_prefixes:[ "--" ] "a\n\n-- x\n  -- y\nb\n");
  Alcotest.(check int) "empty" 0 (U.stripped_line_count "")

let test_phase_timer () =
  let module T = Vhdl_util.Phase_timer in
  let t = T.create () in
  let spin () =
    (* burn a little CPU time so self-time comparisons have signal *)
    let acc = ref 0 in
    for i = 1 to 200_000 do
      acc := !acc + i
    done;
    ignore !acc
  in
  T.time t "alpha" (fun () ->
      spin ();
      (* a nested ambient frame charges its own phase, not alpha's *)
      T.time_ambient "gamma" spin);
  T.time t "beta" (fun () -> ());
  let report = T.report t in
  Alcotest.(check (list string)) "phases in first-use order" [ "alpha"; "gamma"; "beta" ]
    (List.map fst report);
  Alcotest.(check bool) "self times non-negative" true
    (List.for_all (fun (_, s) -> s >= 0.0) report);
  Alcotest.(check bool) "total is the sum" true
    (abs_float (T.total t -. List.fold_left (fun a (_, s) -> a +. s) 0.0 report) < 1e-9);
  (* outside any time extent, time_ambient is a plain call *)
  Alcotest.(check int) "ambient outside" 7 (T.time_ambient "nowhere" (fun () -> 7));
  Alcotest.(check bool) "no stray phase" true
    (not (List.mem_assoc "nowhere" (T.report t)))

let suite =
  [
    Alcotest.test_case "STANDARD types and literals" `Quick test_standard_types;
    Alcotest.test_case "TIME units" `Quick test_time_units;
    Alcotest.test_case "value images" `Quick test_value_images;
    Alcotest.test_case "string round-trips" `Quick test_string_round_trips;
    Alcotest.test_case "type helpers" `Quick test_type_helpers;
    Alcotest.test_case "default initial values" `Quick test_default_values;
    Alcotest.test_case "range helpers" `Quick test_range_helpers;
    Alcotest.test_case "stripped line counting" `Quick test_stripped_line_count;
    Alcotest.test_case "phase timer" `Quick test_phase_timer;
  ]
